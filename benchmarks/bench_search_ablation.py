"""Search ablation: the paper's pruning rules and spare-policy scope.

Section 4.1 describes two efficiency rules: cost-first rejection after
a feasible design is found, and cost-floor termination of the resource
sweep.  This ablation measures how much work each saves, and what
widening the spare operational-mode space ("cold" -> "all") costs.
"""

import pytest

from repro.core import DesignEvaluator, SearchLimits, TierSearch
from repro.units import Duration

from .conftest import write_bench_json, write_report

CONFIGURATIONS = (
    ("cold spares, redundancy 4",
     SearchLimits(max_redundancy=4, spare_policy="cold")),
    ("all spare levels, redundancy 4",
     SearchLimits(max_redundancy=4, spare_policy="all")),
    ("hot spares, redundancy 4",
     SearchLimits(max_redundancy=4, spare_policy="hot")),
    ("cold spares, redundancy 8",
     SearchLimits(max_redundancy=8, spare_policy="cold")),
)
# The redundancy-8 row multiplies the structure count; smoke keeps the
# three redundancy-4 scopes (enough for every cross-row assertion).
SMOKE_CONFIGURATIONS = CONFIGURATIONS[:3]


def run_search(evaluator, limits, load=1600, minutes=50):
    search = TierSearch(evaluator, limits)
    best = search.best_tier_design("application", load,
                                   Duration.minutes(minutes))
    return best, search.stats


@pytest.fixture(scope="module")
def ablation(paper_infra, app_tier_service, smoke):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    rows = []
    for label, limits in (SMOKE_CONFIGURATIONS if smoke
                          else CONFIGURATIONS):
        best, stats = run_search(evaluator, limits)
        rows.append((label, best, stats))
    return rows


@pytest.fixture(scope="module")
def ablation_report(ablation, smoke):
    lines = ["Search ablation -- design space scope vs work and result",
             ""]
    lines.append("%-32s %10s %8s %8s %12s %10s"
                 % ("configuration", "structures", "solves", "pruned",
                    "best cost", "downtime"))
    results = {}
    for label, best, stats in ablation:
        lines.append("%-32s %10d %8d %8d %12s %8.2f m"
                     % (label, stats.structures_enumerated,
                        stats.availability_evaluations,
                        stats.cost_pruned,
                        "$" + format(round(best.annual_cost), ",d"),
                        best.downtime_minutes))
        results[label] = {
            "structures_enumerated": stats.structures_enumerated,
            "availability_evaluations":
                stats.availability_evaluations,
            "cost_pruned": stats.cost_pruned,
            "best_cost": best.annual_cost,
            "downtime_minutes": best.downtime_minutes,
        }
    write_bench_json("search_ablation", results, smoke=smoke)
    lines.append("")
    lines.append("cost pruning rejects structures without solving their "
                 "Markov chains;")
    lines.append("widening the spare policy multiplies structures by the "
                 "activation levels.")
    return write_report("search_ablation.txt", "\n".join(lines))


class TestAblation:
    def test_report(self, ablation_report):
        assert ablation_report.endswith("search_ablation.txt")

    def test_all_policies_find_feasible(self, ablation):
        for label, best, _ in ablation:
            assert best is not None, label
            assert best.downtime_minutes <= 50

    def test_wider_space_never_costlier(self, ablation):
        by_label = {label: best for label, best, _ in ablation}
        cold = by_label["cold spares, redundancy 4"]
        wide = by_label["all spare levels, redundancy 4"]
        assert wide.annual_cost <= cold.annual_cost + 1e-6

    def test_pruning_happens(self, ablation):
        for label, _, stats in ablation:
            assert stats.cost_pruned > 0, label


def test_benchmark_search_cold(benchmark, paper_infra, app_tier_service,
                               ablation_report):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    limits = SearchLimits(max_redundancy=4, spare_policy="cold")
    best = benchmark(lambda: run_search(evaluator, limits)[0])
    assert best is not None


def test_benchmark_search_all_spare_levels(benchmark, paper_infra,
                                           app_tier_service):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    limits = SearchLimits(max_redundancy=4, spare_policy="all")
    best = benchmark(lambda: run_search(evaluator, limits)[0])
    assert best is not None


def test_benchmark_multi_tier_design(benchmark, paper_infra):
    """Full e-commerce service (3 tiers in series) end to end."""
    from repro import Aved, ServiceRequirements
    from repro.spec.paper import ecommerce_service

    engine = Aved(paper_infra, ecommerce_service(),
                  limits=SearchLimits(max_redundancy=3))

    def run():
        return engine.design(ServiceRequirements(
            1000, Duration.minutes(500)))

    outcome = benchmark(run)
    assert outcome.downtime_minutes <= 500


class TestCombinerAblation:
    """Exact frontier combination vs the paper's greedy refinement."""

    @pytest.fixture(scope="class")
    def targets(self, smoke):
        return (1000, 50) if smoke else (1000, 200, 50)

    @pytest.fixture(scope="class")
    def outcomes(self, paper_infra, targets):
        from repro import Aved, ServiceRequirements
        from repro.spec.paper import ecommerce_service
        results = {}
        for method in ("exact", "greedy"):
            engine = Aved(paper_infra, ecommerce_service(),
                          limits=SearchLimits(max_redundancy=3),
                          combination=method)
            results[method] = {
                minutes: engine.design(ServiceRequirements(
                    1000, Duration.minutes(minutes)))
                for minutes in targets
            }
        return results

    def test_both_feasible(self, outcomes):
        for method, by_target in outcomes.items():
            for minutes, outcome in by_target.items():
                assert outcome.downtime_minutes <= minutes, \
                    (method, minutes)

    def test_greedy_never_cheaper(self, outcomes, targets):
        for minutes in targets:
            exact = outcomes["exact"][minutes].annual_cost
            greedy = outcomes["greedy"][minutes].annual_cost
            assert greedy >= exact - 1e-6

    def test_combiner_report(self, outcomes, targets):
        lines = ["Multi-tier combination: exact vs greedy (e-commerce, "
                 "load 1000)", "",
                 "%10s %14s %14s %10s" % ("downtime", "exact $",
                                          "greedy $", "gap")]
        for minutes in targets:
            exact = outcomes["exact"][minutes].annual_cost
            greedy = outcomes["greedy"][minutes].annual_cost
            gap = (greedy - exact) / exact
            lines.append("%8g m %14s %14s %9.2f%%"
                         % (minutes, "$" + format(round(exact), ",d"),
                            "$" + format(round(greedy), ",d"),
                            100 * gap))
        write_report("combiner_ablation.txt", "\n".join(lines))
