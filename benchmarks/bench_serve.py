"""Design-service throughput and overload behavior.

Three measurements against an in-process :class:`DesignService` on
the loadgen's tiny model (markov engine, fsync off):

* **throughput** -- accepted jobs designed per second end to end
  (journal append, worker dispatch, full Aved design, terminal
  journal line), at 1 and 2 workers;
* **shed latency** -- how fast the admission path refuses work once
  the queue is full (the 429 path must stay cheap under a storm);
* **drain time** -- SIGTERM-equivalent graceful drain with a running
  search (cancel, checkpoint, requeue, flush).

The serve layer's promise is operational, not numerical, so the
assertions are about behavior (everything accepted completes; a
drain parks the running job) with generous wall-clock bounds.
"""

import time

from repro.serve.config import ServeConfig
from repro.serve.loadgen import tiny_specs
from repro.serve.service import DesignService

from .conftest import write_bench_json, write_report

JOBS = 24
SMOKE_JOBS = 6
SHED_PROBES = 2000
SMOKE_SHED_PROBES = 200


def make_service(tmp_path, name, **overrides):
    defaults = dict(
        data_dir=str(tmp_path / name), workers=1, queue_limit=4096,
        wait_budget=1e9, engine="markov", fsync=False,
        allow_test_faults=True, drain_grace=30.0)
    defaults.update(overrides)
    return DesignService(ServeConfig(**defaults))


def payload():
    infrastructure, service = tiny_specs()
    return {
        "infrastructure": infrastructure,
        "service": service,
        "requirements": {
            "kind": "service",
            "throughput": 150.0,
            "max_annual_downtime_minutes": 1000.0,
        },
    }


def measure_throughput(tmp_path, workers, jobs):
    service = make_service(tmp_path, "throughput-%d" % workers,
                           workers=workers)
    body = payload()
    try:
        service.start()
        started = time.perf_counter()
        accepted = []
        for _ in range(jobs):
            job, shed = service.submit(dict(body))
            assert shed is None
            accepted.append(job)
        for job in accepted:
            finished = service.wait(job.id, timeout=300.0)
            assert finished.state == "completed", finished.to_dict()
        elapsed = time.perf_counter() - started
    finally:
        service.drain(grace=30.0)
    return jobs / elapsed, elapsed


def measure_shed_latency(tmp_path, probes):
    # One queued job fills the queue; every probe after that takes
    # the pure admission-refusal path.
    service = make_service(tmp_path, "shed", queue_limit=1)
    body = payload()
    job, shed = service.submit(dict(body))    # workers never started
    assert job is not None and shed is None
    started = time.perf_counter()
    for _ in range(probes):
        job, shed = service.submit(dict(body))
        assert job is None and shed.reason == "queue-full"
    elapsed = time.perf_counter() - started
    service.drain(grace=5.0)
    return elapsed / probes


def measure_drain(tmp_path):
    service = make_service(tmp_path, "drain")
    body = payload()
    body["test_fault"] = {"delay_seconds": 30}
    service.start()
    job, _ = service.submit(body)
    deadline = time.monotonic() + 15.0
    while (service.get(job.id).state != "running"
           and time.monotonic() < deadline):
        time.sleep(0.01)
    started = time.perf_counter()
    clean = service.drain()
    elapsed = time.perf_counter() - started
    assert clean
    assert service.get(job.id).state == "queued"    # parked, not lost
    return elapsed


def test_bench_serve(tmp_path, smoke):
    jobs = SMOKE_JOBS if smoke else JOBS
    probes = SMOKE_SHED_PROBES if smoke else SHED_PROBES
    rate_1, elapsed_1 = measure_throughput(tmp_path, 1, jobs)
    rate_2, elapsed_2 = measure_throughput(tmp_path, 2, jobs)
    shed_seconds = measure_shed_latency(tmp_path, probes)
    drain_seconds = measure_drain(tmp_path)

    lines = [
        "design service on the tiny model (markov, fsync off)",
        "",
        "throughput, 1 worker : %6.1f designs/s (%d jobs in %.2fs)"
        % (rate_1, jobs, elapsed_1),
        "throughput, 2 workers: %6.1f designs/s (%d jobs in %.2fs)"
        % (rate_2, jobs, elapsed_2),
        "shed latency         : %8.1f us per refused request"
        % (shed_seconds * 1e6),
        "graceful drain       : %6.3f s (running search parked)"
        % drain_seconds,
    ]
    write_report("serve.txt", "\n".join(lines))
    write_bench_json(
        "serve",
        {
            "throughput_per_s": {"workers_1": rate_1,
                                 "workers_2": rate_2},
            "shed_latency_us": shed_seconds * 1e6,
            "drain_seconds": drain_seconds,
            "jobs": jobs,
            "shed_probes": probes,
        },
        meta={"engine": "markov", "model": "tiny"},
        smoke=smoke)

    # Behavioral floor, not a performance gate: the shed path must be
    # orders of magnitude cheaper than a design, and drain must not
    # eat the whole grace budget waiting on a cancelled search.
    assert shed_seconds < 0.01
    assert drain_seconds < 10.0
