"""Dynamic redesign study (the paper's utility-computing argument).

Not a numbered figure, but the quantitative version of the paper's
closing claim: an engine like Aved, re-run as load fluctuates, beats
static peak provisioning.  For three canonical workload shapes we run
the redesign controller and report reconfiguration counts and cost
savings; benchmarks time a controller sweep.
"""

import pytest

from repro import Duration, SearchLimits, workload
from repro.core import DesignEvaluator, RedesignController

from .conftest import write_bench_json, write_report

SLO = Duration.minutes(100)
LIMITS = SearchLimits(max_redundancy=4)


def make_controller(paper_infra, app_tier_service, hysteresis=0.05):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    return RedesignController(evaluator, "application", SLO, LIMITS,
                              hysteresis=hysteresis)


@pytest.fixture(scope="module")
def workloads(smoke):
    samples = 8 if smoke else 24
    return {
        "diurnal (x4 peak)": workload.diurnal(
            800, peak_ratio=4.0, samples_per_day=samples),
        "flash crowd (x8)": workload.flash_crowd(
            600, spike_ratio=8.0, total_samples=samples,
            spike_at=samples // 3),
        "growth ramp (x5)": workload.ramp(400, 2000,
                                          total_samples=samples),
        "noisy diurnal": workload.noisy(
            workload.diurnal(800, peak_ratio=4.0,
                             samples_per_day=samples),
            sigma=0.08, seed=11),
    }


@pytest.fixture(scope="module")
def reports(paper_infra, app_tier_service, workloads):
    controller = make_controller(paper_infra, app_tier_service)
    return {label: controller.run(loads)
            for label, loads in workloads.items()}


@pytest.fixture(scope="module")
def redesign_report(reports, smoke):
    lines = ["Dynamic redesign vs static peak provisioning "
             "(app tier, downtime <= 100 min/yr)", ""]
    lines.append("%-22s %9s %12s %14s %14s %8s"
                 % ("workload", "reconfigs", "infeasible",
                    "avg $ (dyn)", "static peak $", "saving"))
    results = {}
    for label, report in reports.items():
        lines.append("%-22s %9d %12d %14s %14s %7.1f%%"
                     % (label, report.reconfigurations,
                        report.infeasible_steps,
                        "$" + format(round(report.average_cost), ",d"),
                        "$" + format(round(report.static_peak_cost),
                                     ",d"),
                        100.0 * report.saving_fraction))
        results[label] = {
            "reconfigurations": report.reconfigurations,
            "infeasible_steps": report.infeasible_steps,
            "average_cost": report.average_cost,
            "static_peak_cost": report.static_peak_cost,
            "saving_fraction": report.saving_fraction,
        }
    write_bench_json("redesign", results, smoke=smoke)
    lines.append("")
    lines.append("hysteresis 5%; each sample re-runs the paper's "
                 "section 4.1 search.")
    return write_report("redesign.txt", "\n".join(lines))


class TestRedesignStudy:
    def test_report(self, redesign_report):
        assert redesign_report.endswith("redesign.txt")

    def test_savings_positive_for_variable_loads(self, reports):
        for label, report in reports.items():
            assert report.saving_fraction > 0.1, label

    def test_no_infeasible_steps(self, reports):
        for label, report in reports.items():
            assert report.infeasible_steps == 0, label

    def test_flash_crowd_reconfigures_less_than_diurnal(self, reports):
        """The flash crowd is flat most of the time."""
        assert reports["flash crowd (x8)"].reconfigurations <= \
            reports["diurnal (x4 peak)"].reconfigurations + 2

    def test_hysteresis_reduces_reconfigurations(self, paper_infra,
                                                 app_tier_service,
                                                 workloads):
        loads = workloads["noisy diurnal"]
        eager = make_controller(paper_infra, app_tier_service,
                                hysteresis=0.0).run(loads)
        lazy = make_controller(paper_infra, app_tier_service,
                               hysteresis=0.15).run(loads)
        assert lazy.reconfigurations <= eager.reconfigurations


def test_benchmark_controller_day(benchmark, paper_infra,
                                  app_tier_service, redesign_report):
    """One day of hourly redesign decisions (cache-warm)."""
    controller = make_controller(paper_infra, app_tier_service)
    loads = workload.diurnal(800, peak_ratio=4.0, samples_per_day=24)
    report = benchmark(lambda: controller.run(loads))
    assert report.reconfigurations >= 1
