"""Observability overhead: disabled instrumentation must be free.

Every engine's ``evaluate_tier`` now opens a trace span when an
observer is installed.  The contract (docs/OBSERVABILITY.md) is that
the *disabled* path -- the default, what every plain ``repro design``
run takes -- costs one module-global read and one attribute check per
call: under 3% next to the CTMC solve itself.  This harness times the
raw markov kernel against the instrumented engine facade with no
observer installed, paired and alternated like the resilience
benchmark, and also records the enabled-mode cost for reference.
"""

import time

import pytest

from repro.availability import MarkovEngine
from repro.availability import markov
from repro.obs import Observer, observing

from .bench_resilience import benchmark_models
from .conftest import write_bench_json, write_report

MAX_DISABLED_OVERHEAD = 0.03
# Smoke timings are too short for a 3% assertion to be stable.
SMOKE_MAX_DISABLED_OVERHEAD = 0.50
LOOPS = 60
REPS = 9
SMOKE_LOOPS = 6
SMOKE_REPS = 3


def time_raw(models, loops):
    """The uninstrumented kernel: no facade, no observer check."""
    started = time.perf_counter()
    for _ in range(loops):
        for model in models:
            markov.evaluate_tier(model)
    return time.perf_counter() - started


def time_engine(engine, models, loops):
    """The instrumented facade (observer check on every call)."""
    started = time.perf_counter()
    for _ in range(loops):
        for model in models:
            engine.evaluate_tier(model)
    return time.perf_counter() - started


def measure_disabled_overhead(loops, reps):
    models = benchmark_models()
    engine = MarkovEngine()
    time_raw(models, loops=2)
    time_engine(engine, models, loops=2)
    pairs = []
    for rep in range(reps):
        if rep % 2 == 0:
            raw = time_raw(models, loops)
            inst = time_engine(engine, models, loops)
        else:
            inst = time_engine(engine, models, loops)
            raw = time_raw(models, loops)
        pairs.append((raw, inst))
    ratios = sorted(inst / raw for raw, inst in pairs)
    overhead = ratios[len(ratios) // 2] - 1.0
    return (min(raw for raw, _ in pairs),
            min(inst for _, inst in pairs), overhead)


def measure_enabled_cost(loops):
    """Informational: what tracing costs when it is switched on."""
    models = benchmark_models()
    engine = MarkovEngine()
    raw = time_raw(models, loops)
    with observing(Observer()):
        enabled = time_engine(engine, models, loops)
    return enabled / raw - 1.0


@pytest.fixture(scope="module")
def obs_overhead(smoke):
    loops, reps = (SMOKE_LOOPS, SMOKE_REPS) if smoke else (LOOPS, REPS)
    budget = SMOKE_MAX_DISABLED_OVERHEAD if smoke \
        else MAX_DISABLED_OVERHEAD
    raw_time, engine_time, disabled = \
        measure_disabled_overhead(loops, reps)
    enabled = measure_enabled_cost(loops)
    calls = loops * len(benchmark_models())
    lines = [
        "observability overhead on the markov solve path",
        "",
        "batch: %d evaluate_tier calls, %d paired reps" % (calls, reps),
        "raw kernel:        %8.1f ms fastest rep (%.3f ms/call)"
        % (raw_time * 1e3, raw_time * 1e3 / calls),
        "engine (disabled): %8.1f ms fastest rep (%.3f ms/call)"
        % (engine_time * 1e3, engine_time * 1e3 / calls),
        "disabled overhead: %+7.2f%% median of paired ratios "
        "(budget %.0f%%)" % (disabled * 100.0, budget * 100.0),
        "enabled overhead:  %+7.2f%% single rep (informational; "
        "span + histogram per solve)" % (enabled * 100.0),
    ]
    write_bench_json("obs",
                     {"raw_seconds": raw_time,
                      "engine_disabled_seconds": engine_time,
                      "disabled_overhead_ratio": disabled,
                      "enabled_overhead_ratio": enabled,
                      "calls": calls},
                     meta={"budget": budget}, smoke=smoke)
    write_report("obs.txt", "\n".join(lines))
    return disabled, budget


def test_disabled_overhead_under_budget(obs_overhead):
    disabled, budget = obs_overhead
    assert disabled < budget, (
        "disabled observability adds %.2f%% per solve (budget %.0f%%)"
        % (disabled * 100.0, budget * 100.0))


def test_disabled_results_identical():
    """The facade must not perturb a single number, observed or not."""
    models = benchmark_models()
    engine = MarkovEngine()
    for model in models:
        bare = markov.evaluate_tier(model).unavailability
        assert engine.evaluate_tier(model).unavailability == bare
        with observing(Observer()):
            assert engine.evaluate_tier(model).unavailability == bare


def test_enabled_records_every_solve():
    """With an observer installed, nothing is sampled away."""
    models = benchmark_models()
    engine = MarkovEngine()
    with observing(Observer()) as obs:
        for model in models:
            engine.evaluate_tier(model)
    assert obs.metrics.counter_value("engine_solves.markov") \
        == len(models)
    assert len(obs.tracer.to_dicts()) == len(models)
