"""Fault-free overhead of the supervised evaluation runtime.

With ``--jobs 1`` the supervised executor sits between the search and
the engine on every availability solve (quarantine lookup, timeout
clock reads, result validation) -- no pool, no pickling.  That
per-solve bookkeeping must be invisible next to the CTMC solve itself:
under 5% versus the pre-existing direct call, measured the same way
the resilience benchmark measures the FallbackEngine wrapper.
"""

import time

import pytest

from repro.availability import MarkovEngine
from repro.parallel import ParallelPolicy, SupervisedExecutor

from .bench_resilience import benchmark_models, budgets
from .conftest import write_bench_json, write_report


def time_direct(engine, models, loops):
    started = time.perf_counter()
    for _ in range(loops):
        for model in models:
            engine.evaluate_tier(model)
    return time.perf_counter() - started


def time_supervised(executor, models, loops):
    started = time.perf_counter()
    for _ in range(loops):
        for index, model in enumerate(models):
            executor.evaluate_inline((model.name, index), model)
    return time.perf_counter() - started


def measure_overhead(loops, reps):
    models = benchmark_models()
    bare = MarkovEngine()
    executor = SupervisedExecutor(
        MarkovEngine(), jobs=1,
        policy=ParallelPolicy(task_timeout=60.0))
    time_direct(bare, models, loops=2)
    time_supervised(executor, models, loops=2)
    # Back-to-back pairs with alternating order (so slow thermal /
    # scheduler drift hits both sides equally); the fastest rep of
    # each side is the least-disturbed measurement of its true cost.
    pairs = []
    for rep in range(reps):
        if rep % 2 == 0:
            b = time_direct(bare, models, loops)
            s = time_supervised(executor, models, loops)
        else:
            s = time_supervised(executor, models, loops)
            b = time_direct(bare, models, loops)
        pairs.append((b, s))
    bare_time = min(b for b, _ in pairs)
    supervised_time = min(s for _, s in pairs)
    overhead = supervised_time / bare_time - 1.0
    return bare_time, supervised_time, overhead


@pytest.fixture(scope="module")
def overhead_report(smoke):
    loops, reps, budget = budgets(smoke)
    bare_time, supervised_time, overhead = measure_overhead(loops, reps)
    calls = loops * len(benchmark_models())
    lines = [
        "fault-free overhead of the supervised (--jobs 1) runtime",
        "",
        "batch: %d evaluate_tier calls, %d paired reps" % (calls, reps),
        "bare markov:       %8.1f ms fastest rep (%.3f ms/call)"
        % (bare_time * 1e3, bare_time * 1e3 / calls),
        "supervised jobs=1: %8.1f ms fastest rep (%.3f ms/call)"
        % (supervised_time * 1e3, supervised_time * 1e3 / calls),
        "overhead:          %+7.2f%% fastest-rep ratio "
        "(budget %.0f%%)" % (overhead * 100.0, budget * 100.0),
    ]
    write_bench_json("parallel",
                     {"bare_seconds": bare_time,
                      "supervised_seconds": supervised_time,
                      "overhead_ratio": overhead,
                      "calls": calls},
                     meta={"budget": budget}, smoke=smoke)
    write_report("parallel.txt", "\n".join(lines))
    return overhead


def test_supervised_serial_overhead_under_budget(overhead_report, smoke):
    budget = budgets(smoke)[2]
    assert overhead_report < budget, (
        "supervised jobs=1 runtime adds %.2f%% per fault-free solve "
        "(budget %.0f%%)"
        % (overhead_report * 100.0, budget * 100.0))


def test_supervised_results_identical():
    """Supervision must not change a single fault-free number."""
    models = benchmark_models()
    bare = MarkovEngine()
    executor = SupervisedExecutor(MarkovEngine(), jobs=1)
    for index, model in enumerate(models):
        assert executor.evaluate_inline((model.name, index), model) == \
            bare.evaluate_tier(model).unavailability
    assert len(executor.log) == 0
