"""Fig. 6: optimal design families over (load, annual downtime).

Regenerates the figure's content: for a sweep of load levels, the
Pareto-optimal design families and the downtime each achieves (the
curves of Fig. 6), plus the optimal-family grid over requirement
points.  Benchmarks the per-load frontier construction -- the kernel
the whole figure is built from.
"""

import pytest

from repro.core import (DesignEvaluator, SearchLimits, TierSearch,
                        build_requirement_map)
from repro.core.families import DesignFamily
from repro.core.report import requirement_grid
from repro.units import Duration

from .conftest import write_bench_json, write_report

LOADS = [400, 800, 1400, 1600, 2400, 3200, 4000, 5000]
SMOKE_LOADS = [400, 1600, 5000]
DOWNTIME_GRID = [10000, 3000, 1000, 300, 100, 30, 10, 3, 1, 0.3, 0.1]
LIMITS = SearchLimits(max_redundancy=4, spare_policy="cold")


@pytest.fixture(scope="module")
def loads(smoke):
    return SMOKE_LOADS if smoke else LOADS


@pytest.fixture(scope="module")
def requirement_map(paper_infra, app_tier_service, loads):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    return build_requirement_map(evaluator, "application", loads=loads,
                                 limits=LIMITS)


@pytest.fixture(scope="module")
def fig6_report(requirement_map, smoke):
    lines = ["Fig. 6 -- optimal design families vs (load, downtime)", ""]
    curves = requirement_map.family_curves()
    ordered = sorted(curves.items(),
                     key=lambda item: -max(d for _, d in item[1]))
    lines.append("family curves (load: achieved downtime in min/yr):")
    results = {"family_curves": {}}
    for family, points in ordered:
        series = "  ".join("%g:%.3g" % (load, downtime)
                           for load, downtime in points)
        lines.append("  %-28s %s" % (family.label(), series))
        results["family_curves"][family.label()] = [
            {"load": load, "downtime_minutes": downtime}
            for load, downtime in points]
    lines.append("")
    lines.append(requirement_grid(requirement_map, DOWNTIME_GRID))
    write_bench_json("fig6", results, smoke=smoke)
    return write_report("fig6.txt", "\n".join(lines))


class TestFig6Shape:
    """The qualitative claims the paper makes about Fig. 6."""

    def test_report_written(self, fig6_report):
        assert fig6_report.endswith("fig6.txt")

    def test_many_distinct_families(self, requirement_map, smoke):
        assert len(requirement_map.family_curves()) >= (6 if smoke
                                                        else 10)

    def test_machineb_never_optimal(self, requirement_map, loads):
        for load in loads:
            for minutes in DOWNTIME_GRID:
                point = requirement_map.optimal_for(
                    load, Duration.minutes(minutes))
                if point is not None:
                    assert point.family.resource in ("rC", "rD")

    def test_family_downtime_rises_with_load(self, requirement_map):
        base = DesignFamily("rC", "bronze", 0, 0)
        curve = dict(requirement_map.family_curves()[base])
        assert curve[400] < curve[1600] < curve[5000]

    def test_gold_beats_spare_only_at_low_load(self, requirement_map):
        gold = DesignFamily("rC", "gold", 0, 0)
        curves = requirement_map.family_curves()
        gold_loads = {load for load, _ in curves.get(gold, [])}
        assert 400 in gold_loads
        assert 5000 not in gold_loads

    def test_anchor_family9_at_load_1000ish(self, requirement_map,
                                            full_sweep):
        """At (load=800, downtime=100): one extra active, bronze."""
        point = requirement_map.optimal_for(800, Duration.minutes(100))
        assert point.family.contract == "bronze"
        assert point.family.n_extra == 1
        assert point.family.n_spare == 0


def test_benchmark_tier_frontier(benchmark, paper_infra,
                                 app_tier_service, fig6_report):
    """One load-level frontier: the unit of work behind Fig. 6."""
    evaluator = DesignEvaluator(paper_infra, app_tier_service)

    def build():
        search = TierSearch(evaluator, LIMITS)
        return search.tier_frontier("application", 1600)

    frontier = benchmark(build)
    assert len(frontier) >= 5


def test_benchmark_optimal_design_query(benchmark, paper_infra,
                                        app_tier_service):
    """A single (load, downtime) -> design query via the full search."""
    evaluator = DesignEvaluator(paper_infra, app_tier_service)

    def query():
        search = TierSearch(evaluator, LIMITS)
        return search.best_tier_design("application", 1000,
                                       Duration.minutes(100))

    best = benchmark(query)
    assert best is not None


def test_benchmark_requirement_map_small(benchmark, paper_infra,
                                         app_tier_service):
    """A reduced 3-load map -- scales linearly to the full figure."""
    evaluator = DesignEvaluator(paper_infra, app_tier_service)

    def build():
        return build_requirement_map(evaluator, "application",
                                     loads=[400, 1600, 5000],
                                     limits=LIMITS)

    result = benchmark(build)
    assert len(result.points) > 20
