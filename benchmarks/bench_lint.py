"""Lint throughput: static analysis must stay negligible next to search.

``repro lint`` runs ahead of every design search (``Aved(lint="warn")``)
so its cost has to be paper-model-trivial: well under 50 ms for the
full e-commerce and scientific pairs, interval analysis of every
Table 1 expression included.
"""

import time

import pytest

from repro.lint import lint_pair
from repro.spec.paper import (ecommerce_service, paper_infrastructure,
                              scientific_service)

from .conftest import write_bench_json, write_report

BUDGET_SECONDS = 0.050


def lint_report_text():
    lines = ["repro lint -- paper models", ""]
    results = {}
    infrastructure = paper_infrastructure()
    for service in (ecommerce_service(), scientific_service()):
        started = time.perf_counter()
        report = lint_pair(infrastructure, service)
        elapsed = time.perf_counter() - started
        lines.append("%s: %s in %.1f ms"
                     % (service.name, report.summary(), elapsed * 1e3))
        count = 0
        for diagnostic in report:
            lines.append("  %s" % diagnostic.format())
            count += 1
        lines.append("")
        results[service.name] = {"lint_seconds": elapsed,
                                 "diagnostics": count}
    return "\n".join(lines), results


@pytest.fixture(scope="module")
def lint_report(smoke):
    text, results = lint_report_text()
    write_bench_json("lint", results,
                     meta={"budget_seconds": BUDGET_SECONDS},
                     smoke=smoke)
    return write_report("lint.txt", text)


def test_paper_models_lint_clean(lint_report):
    infrastructure = paper_infrastructure()
    for service in (ecommerce_service(), scientific_service()):
        report = lint_pair(infrastructure, service)
        assert not report.has_errors
        assert report.warnings == []


def test_lint_under_budget(lint_report):
    infrastructure = paper_infrastructure()
    services = [ecommerce_service(), scientific_service()]
    lint_pair(infrastructure, services[0])  # warm imports and caches
    for service in services:
        started = time.perf_counter()
        lint_pair(infrastructure, service)
        elapsed = time.perf_counter() - started
        assert elapsed < BUDGET_SECONDS, (
            "lint of %r took %.1f ms (budget %.0f ms)"
            % (service.name, elapsed * 1e3, BUDGET_SECONDS * 1e3))


def test_benchmark_lint_ecommerce(benchmark, lint_report):
    infrastructure = paper_infrastructure()
    service = ecommerce_service()
    report = benchmark(lint_pair, infrastructure, service)
    assert not report.has_errors


def test_benchmark_lint_scientific(benchmark, lint_report):
    infrastructure = paper_infrastructure()
    service = scientific_service()
    report = benchmark(lint_pair, infrastructure, service)
    assert not report.has_errors
