"""Transient analysis benchmark: fresh-deployment availability curves.

Extension study (paper section 7 motivates dynamic behavior): how long
does a freshly deployed design take to settle at its steady-state
availability, and what does uniformization cost?  Writes the time curve
for a paper design and benchmarks the kernels.
"""

import pytest

from repro.availability import (ContinuousTimeMarkovChain,
                                interval_availability, point_availability,
                                transient_distribution)

from .conftest import write_bench_json, write_report


def family6_chain(n=5, s=1, mtbf_hours=130 * 24.0, mttr_hours=38.0,
                  failover_hours=6.5 / 60.0):
    """The failover chain for a family-6-like tier (single mode)."""
    lam = 1.0 / mtbf_hours
    mu = 1.0 / mttr_hours
    phi = 1.0 / failover_hours

    def transitions(state):
        r, w = state
        idle = s - r + w
        out = []
        if n - w > 0:
            out.append(((r + 1, w + 1), (n - w) * lam))
        if min(w, idle) > 0:
            out.append(((r, w - 1), min(w, idle) * phi))
        if r > 0:
            out.append(((r - 1, w), r * mu))
        return out

    return ContinuousTimeMarkovChain((0, 0), transitions), \
        (lambda state: n - state[1] >= n)


@pytest.fixture(scope="module")
def transient_report(smoke):
    chain, is_up = family6_chain()
    steady = chain.probability_where(is_up)
    if smoke:
        times = [0.5, 8, 168, 1000]
        horizon, samples = 1000.0, 12
    else:
        times = [0.5, 1, 2, 4, 8, 24, 72, 168, 720, 8760]
        horizon, samples = 8760.0, 48
    lines = ["Fresh-deployment availability (family-6-like tier)", "",
             "%10s %18s" % ("t (hours)", "P(up at t)")]
    curve = {}
    for t in times:
        value = point_availability(chain, (0, 0), is_up, float(t))
        lines.append("%10g %18.9f" % (t, value))
        curve["%g" % t] = value
    lines.append("%10s %18.9f" % ("steady", steady))
    year_avg = interval_availability(chain, (0, 0), is_up, horizon,
                                     samples=samples)
    lines.append("")
    lines.append("interval availability over %gh: %.9f (steady %.9f)"
                 % (horizon, year_avg, steady))
    write_bench_json("transient",
                     {"point_availability": curve,
                      "steady_state": steady,
                      "interval_availability": year_avg,
                      "interval_hours": horizon},
                     smoke=smoke)
    return write_report("transient.txt", "\n".join(lines))


class TestTransientShape:
    def test_report(self, transient_report):
        assert transient_report.endswith("transient.txt")

    def test_curve_decays_to_steady(self, smoke):
        chain, is_up = family6_chain()
        steady = chain.probability_where(is_up)
        # The chain relaxes on the ~40h repair timescale, so 1000h is
        # already deep in the steady regime; 8760h is the full-run
        # stress case for uniformization.
        late_t = 1000.0 if smoke else 8760.0
        early = point_availability(chain, (0, 0), is_up, 1.0)
        late = point_availability(chain, (0, 0), is_up, late_t)
        assert early > late
        assert late == pytest.approx(steady, rel=1e-6)

    def test_first_year_beats_steady_state(self, smoke):
        """A fresh system has banked no wear: its first-year average
        availability exceeds the long-run value."""
        chain, is_up = family6_chain()
        steady = chain.probability_where(is_up)
        first_year = interval_availability(
            chain, (0, 0), is_up, 1000.0 if smoke else 8760.0,
            samples=12 if smoke else 48)
        assert first_year >= steady


def test_benchmark_transient_point(benchmark, transient_report):
    chain, is_up = family6_chain()
    result = benchmark(
        lambda: point_availability(chain, (0, 0), is_up, 24.0))
    assert 0 < result <= 1


def test_benchmark_transient_distribution_long_horizon(benchmark, smoke):
    """qt ~ 80k Poisson terms: the uniformization stress case."""
    chain, _ = family6_chain()
    horizon = 1000.0 if smoke else 8760.0
    result = benchmark(
        lambda: transient_distribution(chain, (0, 0), horizon))
    assert sum(result.values()) == pytest.approx(1.0)


def test_benchmark_steady_state_reference(benchmark):
    chain, is_up = family6_chain()
    result = benchmark(lambda: chain.probability_where(is_up))
    assert 0 < result <= 1
