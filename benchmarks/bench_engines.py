"""Engine ablation: Markov vs analytic vs simulation.

The paper delegates availability evaluation to an external engine and
ships a "simplified Markov model" fallback.  This benchmark quantifies
the speed/fidelity tradeoff across our three engines on tier models
generated from the paper's own designs, and writes a comparison table.
"""

import time

import pytest

from repro.availability import (AnalyticEngine, MarkovEngine,
                                SimulationEngine)
from repro.core import DesignEvaluator, TierDesign
from repro.model import MechanismConfig, ServiceModel

from .conftest import write_bench_json, write_report


@pytest.fixture(scope="module")
def tier_models(paper_infra, app_tier_service, scientific):
    app_eval = DesignEvaluator(paper_infra, app_tier_service)
    sci_eval = DesignEvaluator(paper_infra, scientific)
    bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                             {"level": "bronze"})
    cases = {
        "rC x5 (no redundancy)": app_eval.tier_model(
            TierDesign("application", "rC", 5, 0, (), (bronze,)), 1000),
        "rC x5 +1 cold spare": app_eval.tier_model(
            TierDesign("application", "rC", 5, 1, (), (bronze,)), 1000),
        "rC x6 (1 extra active)": app_eval.tier_model(
            TierDesign("application", "rC", 6, 0, (), (bronze,)), 1000),
        "rH x30 +2 spares (HPC)": sci_eval.tier_model(
            TierDesign("computation", "rH", 30, 2, (), (bronze,))),
    }
    return cases


@pytest.fixture(scope="module")
def comparison(tier_models, smoke):
    engines = {
        "markov": MarkovEngine(),
        "analytic": AnalyticEngine(),
        "simulation": SimulationEngine(years=40 if smoke else 600,
                                       seed=20040628),
    }
    rows = []
    for label, model in tier_models.items():
        for name, engine in engines.items():
            start = time.perf_counter()
            result = engine.evaluate_tier(model)
            elapsed = time.perf_counter() - start
            rows.append((label, name, result.downtime_minutes, elapsed))
    return rows


@pytest.fixture(scope="module")
def engines_report(comparison, smoke):
    lines = ["Engine ablation -- downtime estimates and solve times", ""]
    lines.append("%-26s %-11s %14s %12s"
                 % ("tier model", "engine", "downtime", "solve time"))
    results = {}
    for label, name, downtime, elapsed in comparison:
        lines.append("%-26s %-11s %11.2f m/y %10.1f ms"
                     % (label, name, downtime, elapsed * 1e3))
        results.setdefault(label, {})[name] = {
            "downtime_minutes": downtime, "solve_seconds": elapsed}
    lines.append("")
    lines.append("notes: analytic is exact for in-place repair, first-"
                 "order for failover;")
    lines.append("simulation carries Monte-Carlo noise but makes no "
                 "decomposition assumption.")
    write_bench_json("engines", results, smoke=smoke)
    return write_report("engines.txt", "\n".join(lines))


class TestEngineAgreement:
    def test_report(self, engines_report):
        assert engines_report.endswith("engines.txt")

    def test_markov_vs_simulation_within_noise(self, comparison, smoke):
        by_case = {}
        for label, name, downtime, _ in comparison:
            by_case.setdefault(label, {})[name] = downtime
        # 40 simulated years (smoke) leave much wider Monte-Carlo noise
        # than the full 600-year run.
        rel, abs_tol = (2.0, 20.0) if smoke else (0.5, 2.0)
        for label, values in by_case.items():
            markov, sim = values["markov"], values["simulation"]
            assert sim == pytest.approx(markov, rel=rel,
                                        abs=abs_tol), label


def test_benchmark_markov_small(benchmark, tier_models):
    model = tier_models["rC x5 +1 cold spare"]
    engine = MarkovEngine()
    result = benchmark(lambda: engine.evaluate_tier(model))
    assert result.unavailability > 0


def test_benchmark_markov_large(benchmark, tier_models):
    model = tier_models["rH x30 +2 spares (HPC)"]
    engine = MarkovEngine()
    result = benchmark(lambda: engine.evaluate_tier(model))
    assert result.unavailability > 0


def test_benchmark_analytic(benchmark, tier_models):
    model = tier_models["rC x5 +1 cold spare"]
    engine = AnalyticEngine()
    result = benchmark(lambda: engine.evaluate_tier(model))
    assert result.unavailability >= 0


def test_benchmark_simulation_short(benchmark, tier_models):
    model = tier_models["rC x5 (no redundancy)"]
    engine = SimulationEngine(years=25, seed=7)
    result = benchmark(lambda: engine.evaluate_tier(model))
    assert result.unavailability >= 0


class TestRepairCrewAblation:
    """Extension study: how much does unlimited repair staff flatter
    the paper's designs?  (The paper implicitly assumes repairs never
    queue; a single on-call technician is the common reality.)"""

    @pytest.fixture(scope="class")
    def crew_rows(self, tier_models):
        from repro.availability import TierAvailabilityModel
        engine = MarkovEngine()
        rows = []
        for label, model in tier_models.items():
            for crew in (1, 2, None):
                sized = TierAvailabilityModel(
                    model.name, n=model.n, m=model.m, s=model.s,
                    modes=model.modes, repair_crew=crew)
                result = engine.evaluate_tier(sized)
                rows.append((label, crew, result.downtime_minutes))
        return rows

    def test_crew_report(self, crew_rows):
        lines = ["Repair-crew ablation (Markov engine)", "",
                 "%-26s %8s %14s" % ("tier model", "crew", "downtime")]
        for label, crew, downtime in crew_rows:
            lines.append("%-26s %8s %11.2f m/y"
                         % (label, crew if crew else "inf", downtime))
        write_report("repair_crew.txt", "\n".join(lines))

    def test_unlimited_never_worse(self, crew_rows):
        by_case = {}
        for label, crew, downtime in crew_rows:
            by_case.setdefault(label, {})[crew] = downtime
        for label, values in by_case.items():
            assert values[None] <= values[1] * (1 + 1e-9), label
            assert values[2] <= values[1] * (1 + 1e-9), label


class TestDistributionSensitivity:
    """Extension study: how much does the exponential-repair assumption
    (shared by the Markov engine and the paper's external tools)
    matter?  Deterministic repair durations are the other extreme."""

    @pytest.fixture(scope="class")
    def distribution_rows(self, tier_models, smoke):
        from repro.availability import simulate_tier
        years = 40 if smoke else 400
        rows = []
        for label, model in tier_models.items():
            if model.n > 10:
                continue  # keep the simulation budget modest
            exponential = simulate_tier(model, years=years, seed=99)
            deterministic = simulate_tier(model, years=years, seed=99,
                                          deterministic_repairs=True)
            rows.append((label, exponential.tier.downtime_minutes,
                         deterministic.tier.downtime_minutes))
        return rows

    def test_distribution_report(self, distribution_rows):
        lines = ["Repair-time distribution sensitivity (simulation)",
                 "",
                 "%-26s %14s %14s %8s"
                 % ("tier model", "exponential", "deterministic",
                    "ratio")]
        for label, exponential, deterministic in distribution_rows:
            ratio = deterministic / exponential if exponential else 0.0
            lines.append("%-26s %11.2f m/y %11.2f m/y %8.2f"
                         % (label, exponential, deterministic, ratio))
        lines.append("")
        lines.append("steady-state downtime is driven by mean repair "
                     "times, so the distribution")
        lines.append("choice moves results modestly; redundant designs "
                     "are the most sensitive")
        lines.append("(overlap probabilities depend on the repair-time "
                     "tail).")
        write_report("distributions.txt", "\n".join(lines))

    def test_same_order_of_magnitude(self, distribution_rows, smoke):
        low, high = (0.05, 20.0) if smoke else (0.2, 5.0)
        for label, exponential, deterministic in distribution_rows:
            if exponential > 1.0:
                assert low < deterministic / exponential < high, label
