"""Warm-vs-cold re-search speedup of the watch loop.

The watcher's claim to *incremental* redesign rests on reuse: a
re-search against a spec whose tier solves are already in the shared
tier-evaluation store (``repro.cache``) must answer from the store
instead of re-solving CTMCs.  That is exactly the crash-resume path
(the replayed redesign re-runs a search the killed process already
paid for) and the serve-restart path (a fresh reconciler boots over
the previous run's store).

Measured as back-to-back pairs: a **cold** watcher boots over an
empty store, a **warm** watcher boots over the store the cold one
filled.  Both must reach the identical incumbent; the warm boot must
be at least 2x faster (fastest-rep selection, the same discipline as
``bench_cache``).
"""

import shutil
import tempfile
import time

import pytest

from repro.core import DesignEvaluator, SearchLimits
from repro.spec.paper import ecommerce_service
from repro.units import Duration
from repro.watch import Watcher, WatchSpec

from .conftest import write_bench_json, write_report

SPEC = WatchSpec("application", 800.0, Duration.minutes(100))


def budgets(smoke):
    """(paired reps, warm speedup floor)."""
    if smoke:
        return 2, 1.2            # indicative only under --smoke
    return 5, 2.0


def timed_start(infrastructure, service, cache_dir):
    watcher = Watcher(DesignEvaluator(infrastructure, service), SPEC,
                      limits=SearchLimits(max_redundancy=8),
                      cache_dir=cache_dir)
    started = time.perf_counter()
    watcher.start()
    return time.perf_counter() - started, watcher


def measure_cold_warm(infrastructure, service, reps):
    cold_times, warm_times = [], []
    incumbents = set()
    for _ in range(reps):
        cache_dir = tempfile.mkdtemp(prefix="bench-watch-")
        try:
            cold, first = timed_start(infrastructure, service,
                                      cache_dir)
            warm, second = timed_start(infrastructure, service,
                                       cache_dir)
            assert second.cache_store.snapshot()["hits"] > 0, \
                "warm boot never touched the store"
            incumbents.add(first.incumbent.design)
            incumbents.add(second.incumbent.design)
            cold_times.append(cold)
            warm_times.append(warm)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    assert len(incumbents) == 1, "the store changed the incumbent"
    return min(cold_times), min(warm_times)


@pytest.fixture(scope="module")
def watch_report(smoke, paper_infra):
    service = ecommerce_service()
    reps, speedup_floor = budgets(smoke)
    timed_start(paper_infra, service, None)          # warm the code
    cold, warm = measure_cold_warm(paper_infra, service, reps)
    speedup = cold / warm
    lines = [
        "watch re-search: cold-vs-warm paired boots "
        "(e-commerce application tier, 800 users, 100 min)",
        "",
        "cold (empty store):  %8.1f ms fastest of %d" % (cold * 1e3,
                                                         reps),
        "warm (shared store): %8.1f ms fastest of %d" % (warm * 1e3,
                                                         reps),
        "speedup:             %8.2fx (floor %.1fx)" % (speedup,
                                                       speedup_floor),
    ]
    write_bench_json("watch",
                     {"cold_seconds": cold,
                      "warm_seconds": warm,
                      "warm_speedup": speedup},
                     meta={"speedup_floor": speedup_floor,
                           "reps": reps},
                     smoke=smoke)
    write_report("watch.txt", "\n".join(lines))
    return speedup


def test_warm_research_speedup_meets_floor(watch_report, smoke):
    speedup_floor = budgets(smoke)[1]
    assert watch_report >= speedup_floor, (
        "warm re-search only %.2fx faster than cold (floor %.1fx)"
        % (watch_report, speedup_floor))
