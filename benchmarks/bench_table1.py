"""Table 1: the performance functions used by the paper's examples.

Regenerates Table 1's rows (throughput and mperformance values across
representative points) and benchmarks the expression-evaluation hot
path the design search leans on.
"""

import pytest

from repro.expr import Expression
from repro.spec.paper import TABLE1_OVERHEAD, TABLE1_PERFORMANCE
from repro.units import Duration

from .conftest import write_bench_json, write_report


def table1_values():
    """The machine-readable version of the Table 1 reproduction."""
    throughput = {}
    for ref in ("perfC.dat", "perfD.dat", "perfE.dat", "perfF.dat",
                "perfH.dat", "perfI.dat"):
        expression = Expression(TABLE1_PERFORMANCE[ref])
        throughput[ref] = {"n=%d" % n: expression(n=float(n))
                           for n in (1, 10, 100)}
    overhead = {}
    for ref, expressions in sorted(TABLE1_OVERHEAD.items()):
        for location, source in sorted(expressions.items()):
            expression = Expression(source)
            row = {}
            for cpi in (2, 5, 20, 60):
                env = {"cpi": float(cpi)}
                if "n" in expression.variables:
                    env["n"] = 60.0
                row["cpi=%d" % cpi] = expression.evaluate(env)
            overhead["%s/%s" % (ref, location)] = row
    return {"throughput": throughput, "mperformance": overhead}


def table1_text():
    lines = ["Table 1 -- performance functions (reproduced values)", ""]
    lines.append("%-12s %-28s %8s %8s %8s"
                 % ("tier/res", "function", "n=1", "n=10", "n=100"))
    for ref in ("perfC.dat", "perfD.dat", "perfE.dat", "perfF.dat",
                "perfH.dat", "perfI.dat"):
        expression = Expression(TABLE1_PERFORMANCE[ref])
        values = [expression(n=n) for n in (1, 10, 100)]
        lines.append("%-12s %-28s %8.1f %8.1f %8.1f"
                     % (ref[:-4], TABLE1_PERFORMANCE[ref], *values))
    lines.append("")
    lines.append("mperformance (slowdown factor; cpi in minutes)")
    lines.append("%-10s %-8s %8s %8s %8s %8s"
                 % ("res", "storage", "cpi=2", "cpi=5", "cpi=20",
                    "cpi=60"))
    for ref, expressions in sorted(TABLE1_OVERHEAD.items()):
        for location, source in sorted(expressions.items()):
            expression = Expression(source)
            row = []
            for cpi in (2, 5, 20, 60):
                env = {"cpi": float(cpi)}
                if "n" in expression.variables:
                    env["n"] = 60.0
                row.append(expression.evaluate(env))
            lines.append("%-10s %-8s %8.2f %8.2f %8.2f %8.2f"
                         % (ref[:-4], location, *row))
    lines.append("(n=60 used where the function depends on n)")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def table1_report(smoke):
    write_bench_json("table1", table1_values(), smoke=smoke)
    return write_report("table1.txt", table1_text())


def test_values_match_paper_forms(table1_report):
    rh = Expression(TABLE1_PERFORMANCE["perfH.dat"])
    assert rh(n=100) == pytest.approx(714.2857, rel=1e-4)
    central = Expression(TABLE1_OVERHEAD["mperfH.dat"]["central"])
    assert central(n=60, cpi=5) == 4.0


def test_benchmark_expression_compile(benchmark, table1_report):
    source = TABLE1_OVERHEAD["mperfH.dat"]["central"]
    benchmark(lambda: Expression(source))


def test_benchmark_expression_eval(benchmark):
    expression = Expression(TABLE1_OVERHEAD["mperfH.dat"]["central"])
    benchmark(lambda: expression(n=60.0, cpi=5.0))


def test_benchmark_throughput_sweep(benchmark):
    """The search evaluates performance(n) across n grids constantly."""
    expression = Expression(TABLE1_PERFORMANCE["perfH.dat"])

    def sweep():
        total = 0.0
        for n in range(1, 201):
            total += expression(n=float(n))
        return total

    result = benchmark(sweep)
    assert result > 0


def test_benchmark_overhead_factor(benchmark, scientific):
    option = scientific.tier("computation").option_for("rH")
    overhead = option.mechanism_use("checkpoint").overhead
    settings = {"storage_location": "central",
                "checkpoint_interval": Duration.minutes(5)}
    benchmark(lambda: overhead.factor(settings, 60))
