"""Static space analysis vs the search it accelerates.

Two paired-ratio measurements on the paper's e-commerce example:

* **Analyzer overhead** -- ``analyze_space`` (cardinality, canonical
  keys, certificates; zero engine solves) must cost a small fraction
  of the full design search it front-runs (< 5% wall-clock against
  the simulation engine, the realistically-priced solver; the
  closed-form Markov search on these small models is itself only
  milliseconds, so both ratios are reported).
* **Pruning yield** -- with ``prune="auto"`` the search must skip a
  meaningful share of the candidate space (>= 20% on the application
  tier) while returning a byte-identical design.
"""

import json
import time

import pytest

from repro.core import Aved, SearchLimits
from repro.core.serialize import evaluation_to_dict
from repro.lint import analyze_space
from repro.model import ServiceRequirements
from repro.spec.paper import ecommerce_service
from repro.units import Duration

from .conftest import write_bench_json, write_report

REQUIREMENTS = ServiceRequirements(1000.0, Duration.minutes(100))


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def limits(smoke):
    return SearchLimits(max_redundancy=2 if smoke else 4)


@pytest.fixture(scope="module")
def measurements(paper_infra, app_tier_service, limits):
    ecommerce = ecommerce_service()
    rows = {}
    for label, service in (("app-tier", app_tier_service),
                           ("e-commerce", ecommerce)):
        report, analyze_s = timed(lambda s=service: analyze_space(
            paper_infra, s, limits=limits, load=1000.0,
            max_downtime=REQUIREMENTS.max_annual_downtime))
        full, full_s = timed(lambda s=service: Aved(
            paper_infra, s, limits=limits,
            prune=False).design(REQUIREMENTS))
        pruned, pruned_s = timed(lambda s=service: Aved(
            paper_infra, s, limits=limits,
            prune="auto").design(REQUIREMENTS))
        rows[label] = {
            "structures": report.structures,
            "dominance_covered": report.dominance_covered,
            "analyze_seconds": analyze_s,
            "search_seconds": full_s,
            "pruned_search_seconds": pruned_s,
            "analyzer_ratio": analyze_s / full_s,
            "solves_full": full.stats.availability_evaluations,
            "solves_pruned": pruned.stats.availability_evaluations,
            "dominance_pruned": pruned.stats.dominance_pruned,
            "enumerated": pruned.stats.structures_enumerated,
            "prune_ratio": (pruned.stats.dominance_pruned
                            / pruned.stats.structures_enumerated),
            "identical": (
                json.dumps(evaluation_to_dict(full.evaluation),
                           sort_keys=True)
                == json.dumps(evaluation_to_dict(pruned.evaluation),
                              sort_keys=True)),
        }
    return rows


def test_space_report(measurements, smoke, limits):
    lines = ["Static space analysis vs search "
             "(load 1000, 100 min/yr, max_redundancy=%d)"
             % limits.max_redundancy, ""]
    header = ("%-12s %10s %9s %9s %9s %8s %8s"
              % ("service", "structures", "analyze", "search",
                 "ratio", "pruned", "ident"))
    lines += [header, "-" * len(header)]
    for label, row in measurements.items():
        lines.append("%-12s %10d %8.3fs %8.3fs %8.1f%% %7.1f%% %8s"
                     % (label, row["structures"],
                        row["analyze_seconds"], row["search_seconds"],
                        100.0 * row["analyzer_ratio"],
                        100.0 * row["prune_ratio"],
                        "yes" if row["identical"] else "NO"))
    write_report("space_analysis.txt", "\n".join(lines))
    write_bench_json("space", measurements,
                     meta={"load": 1000.0, "downtime_minutes": 100.0,
                           "max_redundancy": limits.max_redundancy},
                     smoke=smoke)
    for row in measurements.values():
        assert row["identical"]
        assert row["dominance_pruned"] > 0


@pytest.fixture(scope="module")
def sim_baseline(paper_infra, app_tier_service, limits, smoke):
    """Wall-clock of the app-tier search under the simulation engine."""
    from repro.availability import SimulationEngine
    _, seconds = timed(lambda: Aved(
        paper_infra, app_tier_service, limits=limits,
        availability_engine=SimulationEngine(
            years=20 if smoke else 150, seed=20040628),
        prune=False).design(REQUIREMENTS))
    return seconds


def test_analyzer_is_cheap(measurements, sim_baseline, smoke, full_sweep):
    ratio = measurements["app-tier"]["analyze_seconds"] / sim_baseline
    write_bench_json("space_overhead",
                     {"analyze_seconds":
                      measurements["app-tier"]["analyze_seconds"],
                      "simulation_search_seconds": sim_baseline,
                      "ratio": ratio},
                     smoke=smoke)
    assert ratio < 0.05


def test_app_tier_prunes_a_fifth(measurements, full_sweep):
    assert measurements["app-tier"]["prune_ratio"] >= 0.20
