"""Speedup and identity of the vectorized (stacked) tier solves.

Two claims carry the batching story:

* a **batched** cold design run over the paper's e-commerce service
  must beat the **scalar** cold run by at least 3x -- the search's
  cost is dominated by per-candidate CTMC solves, and the batcher
  groups a wavefront's chains by shape and hands each size class to
  LAPACK as one stacked call;
* the speedup must be *free of drift*: the serialized DesignOutcome
  is identical JSON with batching on or off, across serial,
  supervised (``jobs``), and cached runs.

Timings are back-to-back pairs with alternating order, the same
discipline as ``bench_cache``/``bench_parallel``; the headline number
is the **median paired ratio** (each rep contributes scalar/batched
from the same thermal neighborhood).
"""

import json
import statistics
import time

import pytest

from repro.core import Aved
from repro.core.serialize import evaluation_to_dict
from repro.model import ServiceRequirements
from repro.spec.paper import ecommerce_service
from repro.units import Duration

from .conftest import write_bench_json, write_report

REQUIREMENTS = ServiceRequirements(1000.0, Duration.minutes(100))


def budgets(smoke):
    """(paired reps, batched speedup floor)."""
    if smoke:
        return 2, 1.0       # indicative only under --smoke
    return 5, 3.0


def canonical(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


def time_design(infrastructure, service, batch, **kwargs):
    started = time.perf_counter()
    outcome = Aved(infrastructure, service, batch=batch,
                   **kwargs).design(REQUIREMENTS)
    return time.perf_counter() - started, outcome


def measure_paired(infrastructure, service, reps):
    """Paired cold runs, alternating order; per-rep speedup ratios."""
    pairs = []
    serialized = set()
    for rep in range(reps):
        if rep % 2 == 0:
            scalar, outcome = time_design(infrastructure, service,
                                          batch=False)
            serialized.add(canonical(outcome))
            batched, outcome = time_design(infrastructure, service,
                                           batch=True)
            serialized.add(canonical(outcome))
        else:
            batched, outcome = time_design(infrastructure, service,
                                           batch=True)
            serialized.add(canonical(outcome))
            scalar, outcome = time_design(infrastructure, service,
                                          batch=False)
            serialized.add(canonical(outcome))
        pairs.append((scalar, batched))
    assert len(serialized) == 1, "batching changed the designed system"
    return pairs


@pytest.fixture(scope="module")
def batch_report(smoke, paper_infra):
    ecommerce = ecommerce_service()
    reps, speedup_floor = budgets(smoke)
    time_design(paper_infra, ecommerce, batch=False)   # warm the code
    time_design(paper_infra, ecommerce, batch=True)
    pairs = measure_paired(paper_infra, ecommerce, reps)
    ratios = [scalar / batched for scalar, batched in pairs]
    speedup = statistics.median(ratios)
    scalar_best = min(scalar for scalar, _ in pairs)
    batched_best = min(batched for _, batched in pairs)
    lines = [
        "vectorized tier solves: scalar-vs-batched paired cold runs "
        "(e-commerce, 1000 users, 100 min)",
        "",
        "scalar cold:   %8.1f ms fastest of %d" % (scalar_best * 1e3,
                                                   reps),
        "batched cold:  %8.1f ms fastest of %d" % (batched_best * 1e3,
                                                   reps),
        "per-rep ratios: %s" % " ".join("%.2fx" % r for r in ratios),
        "speedup:       %8.2fx median paired ratio (floor %.1fx)"
        % (speedup, speedup_floor),
    ]
    write_bench_json("batch",
                     {"scalar_seconds": scalar_best,
                      "batched_seconds": batched_best,
                      "paired_ratios": ratios,
                      "median_speedup": speedup},
                     meta={"speedup_floor": speedup_floor,
                           "reps": reps},
                     smoke=smoke)
    write_report("batch.txt", "\n".join(lines))
    return speedup


def test_batched_speedup_meets_floor(batch_report, smoke, full_sweep):
    speedup_floor = budgets(smoke)[1]
    assert batch_report >= speedup_floor, (
        "batched cold run only %.2fx faster than scalar (floor %.1fx)"
        % (batch_report, speedup_floor))


def test_batched_outcomes_identical_across_modes(tmp_path, paper_infra):
    """Batched == scalar JSON across jobs 1/2 and cache off/cold/warm."""
    ecommerce = ecommerce_service()
    _, baseline = time_design(paper_infra, ecommerce, batch=False)
    expected = canonical(baseline)
    root = str(tmp_path / "store")
    variants = [
        dict(batch=True),
        dict(batch=True, jobs=1),
        dict(batch=True, jobs=2),
        dict(batch=True, cache=root),   # cold store
        dict(batch=True, cache=root),   # warm store
        dict(batch=False, cache=root),  # batched store serves scalar
    ]
    for kwargs in variants:
        _, outcome = time_design(paper_infra, ecommerce, **kwargs)
        assert canonical(outcome) == expected, (
            "batched outcome drifted from scalar under %r" % (kwargs,))
