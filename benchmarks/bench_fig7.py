"""Fig. 7: optimal scientific-application design vs job-time requirement.

Regenerates the figure's series -- resource type, resource count,
spares, checkpoint interval and storage location across a sweep of
execution-time requirements -- and benchmarks the job search.
"""

import pytest

from repro.core import DesignEvaluator, JobSearch, SearchLimits
from repro.core.families import checkpoint_settings
from repro.model import JobRequirements
from repro.units import Duration

from .conftest import write_bench_json, write_report

REQUIREMENT_HOURS = [2, 5, 10, 20, 50, 100, 200, 500, 1000]
SMOKE_HOURS = [20, 100, 1000]
LIMITS = SearchLimits(
    spare_policy="cold", max_redundancy=12,
    fixed_settings={"maintenanceA": {"level": "bronze"},
                    "maintenanceB": {"level": "bronze"}})


@pytest.fixture(scope="module")
def requirement_hours(smoke):
    return SMOKE_HOURS if smoke else REQUIREMENT_HOURS


@pytest.fixture(scope="module")
def sweep(paper_infra, scientific, requirement_hours):
    evaluator = DesignEvaluator(paper_infra, scientific)
    search = JobSearch(evaluator, LIMITS)
    results = {}
    for hours in requirement_hours:
        best = search.best_design(JobRequirements(Duration.hours(hours)))
        if best is not None:
            results[hours] = best
    return results


@pytest.fixture(scope="module")
def fig7_report(sweep, requirement_hours, smoke):
    lines = ["Fig. 7 -- optimal design vs job execution time requirement",
             "(maintenance fixed at bronze, as in the paper)", ""]
    header = ("%9s %-8s %7s %6s %-10s %-8s %11s %12s"
              % ("deadline", "resource", "active", "spares", "cpi",
                 "storage", "job time", "annual cost"))
    lines.append(header)
    lines.append("-" * len(header))
    points = []
    for hours in requirement_hours:
        if hours not in sweep:
            lines.append("%8dh  infeasible within search limits" % hours)
            continue
        evaluation = sweep[hours]
        tier = evaluation.design.tiers[0]
        config = checkpoint_settings(tier)
        lines.append(
            "%8dh %-8s %7d %6d %-10s %-8s %10.1fh %12s"
            % (hours, tier.resource, tier.n_active, tier.n_spare,
               config.settings["checkpoint_interval"].format(),
               config.settings["storage_location"],
               evaluation.job_time.expected_time.as_hours,
               "$" + format(round(evaluation.annual_cost), ",d")))
        points.append({
            "required_hours": hours,
            "resource": tier.resource,
            "n_active": tier.n_active,
            "n_spare": tier.n_spare,
            "storage_location": config.settings["storage_location"],
            "expected_hours":
                evaluation.job_time.expected_time.as_hours,
            "annual_cost": evaluation.annual_cost,
        })
    write_bench_json("fig7", {"points": points}, smoke=smoke)
    return write_report("fig7.txt", "\n".join(lines))


class TestFig7Shape:
    """The qualitative claims the paper makes about Fig. 7."""

    def test_sweep_mostly_feasible(self, sweep, fig7_report,
                                   requirement_hours):
        assert len(sweep) >= len(requirement_hours) - 2

    def test_machineb_for_tight_machinea_for_loose(self, sweep,
                                                   full_sweep):
        assert sweep[2].design.tiers[0].resource == "rI"
        assert sweep[1000].design.tiers[0].resource == "rH"

    def test_resource_count_monotone_per_type(self, sweep):
        for resource in ("rH", "rI"):
            counts = [(h, e.design.tiers[0].n_active)
                      for h, e in sorted(sweep.items())
                      if e.design.tiers[0].resource == resource]
            values = [n for _, n in counts]
            assert values == sorted(values, reverse=True), resource

    def test_spares_track_cluster_size(self, sweep):
        pairs = sorted((e.design.tiers[0].n_active,
                        e.design.tiers[0].n_spare)
                       for e in sweep.values())
        assert pairs[-1][1] >= pairs[0][1]

    def test_storage_flip(self, sweep):
        for evaluation in sweep.values():
            tier = evaluation.design.tiers[0]
            location = checkpoint_settings(tier) \
                .settings["storage_location"]
            if tier.n_active < 30:
                assert location == "central"
            if tier.resource == "rH" and tier.n_active > 60:
                assert location == "peer"

    def test_every_design_meets_requirement(self, sweep):
        for hours, evaluation in sweep.items():
            assert evaluation.job_time.expected_time <= \
                Duration.hours(hours)


def test_benchmark_job_search_relaxed(benchmark, paper_infra, scientific,
                                      fig7_report):
    """A relaxed-deadline search (small clusters, quick)."""
    evaluator = DesignEvaluator(paper_infra, scientific)

    def run():
        return JobSearch(evaluator, LIMITS).best_design(
            JobRequirements(Duration.hours(500)))

    best = benchmark(run)
    assert best is not None


def test_benchmark_job_search_tight(benchmark, paper_infra, scientific):
    """A tight-deadline search (hundreds of nodes, bigger chains)."""
    evaluator = DesignEvaluator(paper_infra, scientific)

    def run():
        return JobSearch(evaluator, LIMITS).best_design(
            JobRequirements(Duration.hours(20)))

    best = benchmark(run)
    assert best is not None


def test_benchmark_job_time_closed_form(benchmark, paper_infra,
                                        scientific):
    """The Eq. 1 kernel swept 300x per structure by the search."""
    from repro.core import Design, TierDesign
    from repro.model import MechanismConfig
    evaluator = DesignEvaluator(paper_infra, scientific)
    bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                             {"level": "bronze"})
    checkpoint = paper_infra.mechanism("checkpoint")
    grid = checkpoint.parameter("checkpoint_interval").values.values()
    config = MechanismConfig(checkpoint,
                             {"storage_location": "central",
                              "checkpoint_interval": grid[60]})
    design = Design((TierDesign("computation", "rH", 20, 1, (),
                                (bronze, config)),))
    availability = evaluator.availability(design)
    benchmark(lambda: evaluator.job_time(design, availability))
