"""Fig. 8: the cost/availability/performance tradeoff curves.

Regenerates the figure's series: for loads 400/800/1600/3200, the extra
annual cost (over the cheapest load-carrying design) of meeting each
downtime requirement.  Benchmarks the curve extraction given a map and
the end-to-end single-load pipeline.
"""

import pytest

from repro.core import DesignEvaluator, SearchLimits, build_requirement_map

from .conftest import write_bench_json, write_report

LOADS = [400, 800, 1600, 3200]
SMOKE_LOADS = [400, 3200]
DOWNTIME_MINUTES = [1000, 300, 100, 30, 10, 3, 1, 0.3, 0.1]
LIMITS = SearchLimits(max_redundancy=4, spare_policy="cold")


@pytest.fixture(scope="module")
def loads(smoke):
    return SMOKE_LOADS if smoke else LOADS


@pytest.fixture(scope="module")
def requirement_map(paper_infra, app_tier_service, loads):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    return build_requirement_map(evaluator, "application", loads=loads,
                                 limits=LIMITS)


@pytest.fixture(scope="module")
def curves(requirement_map, loads):
    return {load: dict(requirement_map.extra_cost_curve(
                load, DOWNTIME_MINUTES))
            for load in loads}


@pytest.fixture(scope="module")
def fig8_report(requirement_map, curves, loads, smoke):
    lines = ["Fig. 8 -- extra annual cost vs downtime requirement", ""]
    header = "%10s" + "%14s" * len(loads)
    lines.append(header % (("downtime",)
                           + tuple("load %d" % load for load in loads)))
    for minutes in DOWNTIME_MINUTES:
        row = ["%8.4g m" % minutes]
        for load in loads:
            extra = curves[load][minutes]
            row.append("%14s" % ("-" if extra is None
                                 else "$" + format(round(extra), ",d")))
        lines.append("".join(row))
    lines.append("")
    lines.append("baseline (availability-blind) costs:")
    for load in loads:
        lines.append("  load %5d: $%s"
                     % (load,
                        format(round(requirement_map.baseline_cost(load)),
                               ",d")))
    write_bench_json(
        "fig8",
        {"extra_cost_curves": {
            str(load): {"%g" % m: curves[load][m]
                        for m in DOWNTIME_MINUTES}
            for load in loads},
         "baseline_costs": {
            str(load): requirement_map.baseline_cost(load)
            for load in loads}},
        smoke=smoke)
    return write_report("fig8.txt", "\n".join(lines))


class TestFig8Shape:
    def test_report_written(self, fig8_report):
        assert fig8_report.endswith("fig8.txt")

    def test_extra_cost_monotone_per_load(self, curves):
        for load, curve in curves.items():
            values = [curve[m] for m in DOWNTIME_MINUTES
                      if curve[m] is not None]
            assert values == sorted(values), load

    def test_higher_load_pays_more_at_tight_requirements(self, curves):
        assert curves[3200][1] > curves[400][1]

    def test_loose_requirement_is_free(self, curves):
        assert curves[400][1000] is not None
        # At 1000 min/yr the cheapest design usually already complies.
        assert curves[400][1000] <= curves[400][10]

    def test_plateaus_exist(self, curves):
        """Fig. 8's message: some downtime improvements are free --
        the same design covers a range of requirements."""
        for load in curves:
            values = [curves[load][m] for m in DOWNTIME_MINUTES
                      if curves[load][m] is not None]
            repeats = sum(1 for a, b in zip(values, values[1:])
                          if a == b)
            if repeats:
                return
        pytest.fail("no plateau found in any extra-cost curve")


def test_benchmark_extra_cost_curve(benchmark, requirement_map,
                                    fig8_report):
    def extract():
        # 3200 is present in both the full and the --smoke load sets.
        return requirement_map.extra_cost_curve(3200, DOWNTIME_MINUTES)

    curve = benchmark(extract)
    assert len(curve) == len(DOWNTIME_MINUTES)


def test_benchmark_single_load_pipeline(benchmark, paper_infra,
                                        app_tier_service):
    """Frontier + curve for one load: the Fig. 8 unit of work."""
    evaluator = DesignEvaluator(paper_infra, app_tier_service)

    def run():
        one_load = build_requirement_map(evaluator, "application",
                                         loads=[800], limits=LIMITS)
        return one_load.extra_cost_curve(800, DOWNTIME_MINUTES)

    curve = benchmark(run)
    assert any(extra is not None for _, extra in curve)
