"""Fault-free overhead of the resilience runtime.

The FallbackEngine sits between the search and the Markov engine on
every availability solve, so its bookkeeping (circuit-breaker check,
clock reads, result validation, provenance attachment) must be
invisible next to the CTMC solve itself: under 5% on fault-free runs.
This harness times a representative batch of tier models through the
bare MarkovEngine and through a markov-only FallbackEngine, best of
several repetitions, and records the ratio.
"""

import time

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel)
from repro.resilience import FallbackEngine, FallbackPolicy
from repro.units import Duration

from .conftest import write_bench_json, write_report

MAX_OVERHEAD = 0.05
# Smoke runs keep the harness honest but their timings are too noisy
# for the 5% budget; the gate widens accordingly.
SMOKE_MAX_OVERHEAD = 0.50
LOOPS = 60
REPS = 9
SMOKE_LOOPS = 6
SMOKE_REPS = 3


def budgets(smoke):
    """(loops, reps, max_overhead) for the requested mode."""
    if smoke:
        return SMOKE_LOOPS, SMOKE_REPS, SMOKE_MAX_OVERHEAD
    return LOOPS, REPS, MAX_OVERHEAD


def benchmark_models():
    """Tier structures spanning the paper's search space shapes."""
    def modes(mtbf_days, mttr_hours, failover_minutes):
        return (FailureModeEntry("hard", Duration.days(mtbf_days),
                                 Duration.hours(mttr_hours),
                                 Duration.minutes(failover_minutes)),
                FailureModeEntry("soft", Duration.days(mtbf_days / 10),
                                 Duration.ZERO,
                                 Duration.minutes(failover_minutes),
                                 spare_susceptible=False))
    return [
        TierAvailabilityModel("small", n=2, m=2, s=0,
                              modes=modes(200, 24, 5)),
        TierAvailabilityModel("mid", n=6, m=4, s=2,
                              modes=modes(100, 12, 8)),
        TierAvailabilityModel("large", n=12, m=10, s=3,
                              modes=modes(400, 48, 10)),
    ]


def time_once(engine, models, loops=LOOPS):
    """Wall time for ``loops`` passes over ``models``."""
    started = time.perf_counter()
    for _ in range(loops):
        for model in models:
            engine.evaluate_tier(model)
    return time.perf_counter() - started


def measure_overhead(loops=LOOPS, reps=REPS):
    models = benchmark_models()
    bare = MarkovEngine()
    resilient = FallbackEngine(engines=[MarkovEngine()],
                               policy=FallbackPolicy(chain=("markov",)))
    # Warm both paths, then time the engines back-to-back in pairs:
    # adjacent runs see the same machine load, so the per-pair ratio
    # cancels it, and the median of the ratios discards the pairs a
    # scheduler hiccup still disturbed.
    time_once(bare, models, loops=2)
    time_once(resilient, models, loops=2)
    pairs = [(time_once(bare, models, loops=loops),
              time_once(resilient, models, loops=loops))
             for _ in range(reps)]
    ratios = sorted(r / b for b, r in pairs)
    bare_time = min(b for b, _ in pairs)
    resilient_time = min(r for _, r in pairs)
    overhead = ratios[len(ratios) // 2] - 1.0
    return bare_time, resilient_time, overhead


@pytest.fixture(scope="module")
def overhead_report(smoke):
    loops, reps, budget = budgets(smoke)
    bare_time, resilient_time, overhead = measure_overhead(loops, reps)
    calls = loops * len(benchmark_models())
    lines = [
        "fault-free overhead of the resilience runtime",
        "",
        "batch: %d evaluate_tier calls, %d paired reps" % (calls, reps),
        "bare markov:      %8.1f ms fastest rep (%.3f ms/call)"
        % (bare_time * 1e3, bare_time * 1e3 / calls),
        "fallback(markov): %8.1f ms fastest rep (%.3f ms/call)"
        % (resilient_time * 1e3, resilient_time * 1e3 / calls),
        "overhead:         %+7.2f%% median of paired ratios "
        "(budget %.0f%%)" % (overhead * 100.0, budget * 100.0),
    ]
    write_bench_json("resilience",
                     {"bare_seconds": bare_time,
                      "fallback_seconds": resilient_time,
                      "overhead_ratio": overhead,
                      "calls": calls},
                     meta={"budget": budget}, smoke=smoke)
    write_report("resilience.txt", "\n".join(lines))
    return overhead


def test_fault_free_overhead_under_budget(overhead_report, smoke):
    budget = budgets(smoke)[2]
    assert overhead_report < budget, (
        "fallback runtime adds %.2f%% on fault-free solves "
        "(budget %.0f%%)"
        % (overhead_report * 100.0, budget * 100.0))


def test_fault_free_results_identical():
    """The wrapper must not change a single fault-free number."""
    models = benchmark_models()
    bare = MarkovEngine()
    resilient = FallbackEngine(engines=[MarkovEngine()],
                               policy=FallbackPolicy(chain=("markov",)))
    for model in models:
        assert resilient.evaluate_tier(model).unavailability == \
            bare.evaluate_tier(model).unavailability
        assert len(resilient.log) == 0
