"""Sharded map builds over a warm cache, and map-lookup latency.

Two numbers carry the grid's performance story:

* a **sharded build over a warm tier cache** must beat a **cold
  unsharded** ``build_requirement_map`` sweep by at least 2x -- a map
  build is dominated by per-tier availability solves, and a warm
  store answers them instead of re-solving CTMCs, which is what makes
  restarting or re-sharding a big grid build cheap;
* serving the finished map must be a **sub-millisecond p50 lookup**
  -- `GET /v1/map` answers from the in-memory frontier index without
  ever searching.

Byte-identity of the sharded/warm map vs the cold unsharded sweep is
asserted inside the measurement, the same correctness-inside-the-
benchmark discipline as ``bench_cache``.
"""

import shutil
import tempfile
import time

import pytest

from repro.availability import get_engine
from repro.cache import TierEvaluationStore, attach_cache
from repro.core import DesignEvaluator
from repro.core.frontier import build_requirement_map
from repro.core.serialize import requirement_map_to_json
from repro.grid import GridBuilder, GridSpec, MapService
from repro.model import ServiceModel
from repro.spec.paper import ecommerce_service
from repro.units import Duration

from .conftest import write_bench_json, write_report

TIER = "application"


def budgets(smoke):
    """(loads, paired reps, warm speedup floor, lookup p50 budget s)."""
    if smoke:
        return (500.0, 1000.0, 1500.0, 2000.0), 2, 1.2, 0.005
    loads = tuple(500.0 + 250.0 * step for step in range(11))
    return loads, 3, 2.0, 0.001


def app_tier_service():
    return ServiceModel("app-tier",
                        [ecommerce_service().tier(TIER)])


def make_evaluator(paper_infra, store=None):
    evaluator = DesignEvaluator(paper_infra, app_tier_service(),
                                get_engine("markov"))
    if store is not None:
        evaluator.engine = attach_cache(evaluator.engine, store)
    return evaluator


def measure_builds(paper_infra, loads, reps):
    """Fastest cold unsharded sweep vs fastest warm sharded build."""
    cold_times, warm_times = [], []
    serialized = set()
    for _ in range(reps):
        cache_dir = tempfile.mkdtemp(prefix="bench-grid-")
        try:
            started = time.perf_counter()
            cold_map = build_requirement_map(
                make_evaluator(paper_infra), TIER, loads)
            cold_times.append(time.perf_counter() - started)
            serialized.add(requirement_map_to_json(cold_map))

            spec = GridSpec(TIER, loads, shard_size=4)
            GridBuilder(make_evaluator(
                paper_infra, TierEvaluationStore(cache_dir)),
                spec, sleep=lambda _s: None).build()   # fill the store
            started = time.perf_counter()
            warm_map = GridBuilder(make_evaluator(
                paper_infra, TierEvaluationStore(cache_dir)),
                spec, sleep=lambda _s: None).build()
            warm_times.append(time.perf_counter() - started)
            serialized.add(requirement_map_to_json(warm_map))
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    assert len(serialized) == 1, \
        "sharding or the cache changed the map bytes"
    return min(cold_times), min(warm_times)


def measure_lookup_p50(paper_infra, loads, tmp_dir):
    space_map = build_requirement_map(make_evaluator(paper_infra),
                                      TIER, loads)
    path = tmp_dir + "/map.json"
    with open(path, "w") as handle:
        handle.write(requirement_map_to_json(space_map))
    service = MapService(path)
    requirement = Duration.minutes(100)
    service.lookup(loads[0], requirement)             # warm
    samples = []
    for index in range(500):
        load = loads[index % len(loads)] - 10.0
        started = time.perf_counter()
        answer = service.lookup(load, requirement)
        samples.append(time.perf_counter() - started)
        assert answer["answer"] in ("ok", "infeasible")
    samples.sort()
    return samples[len(samples) // 2]


@pytest.fixture(scope="module")
def grid_report(smoke, paper_infra):
    loads, reps, speedup_floor, p50_budget = budgets(smoke)
    cold, warm = measure_builds(paper_infra, loads, reps)
    lookup_dir = tempfile.mkdtemp(prefix="bench-grid-map-")
    try:
        p50 = measure_lookup_p50(paper_infra, loads, lookup_dir)
    finally:
        shutil.rmtree(lookup_dir, ignore_errors=True)
    speedup = cold / warm
    lines = [
        "requirement-space map: sharded warm build vs cold unsharded "
        "sweep (e-commerce %s tier, %d loads)" % (TIER, len(loads)),
        "",
        "cold unsharded sweep: %8.1f ms fastest of %d"
        % (cold * 1e3, reps),
        "warm sharded build:   %8.1f ms fastest of %d"
        % (warm * 1e3, reps),
        "speedup:              %8.2fx (floor %.1fx)"
        % (speedup, speedup_floor),
        "",
        "map lookup p50:       %8.3f ms (budget %.1f ms)"
        % (p50 * 1e3, p50_budget * 1e3),
    ]
    write_bench_json("grid",
                     {"cold_seconds": cold,
                      "warm_seconds": warm,
                      "warm_speedup": speedup,
                      "lookup_p50_seconds": p50},
                     meta={"speedup_floor": speedup_floor,
                           "p50_budget_seconds": p50_budget,
                           "loads": len(loads), "reps": reps},
                     smoke=smoke)
    write_report("grid.txt", "\n".join(lines))
    return speedup, p50


def test_warm_sharded_build_meets_speedup_floor(grid_report, smoke):
    speedup_floor = budgets(smoke)[2]
    speedup = grid_report[0]
    assert speedup >= speedup_floor, (
        "warm sharded build only %.2fx faster than the cold "
        "unsharded sweep (floor %.1fx)" % (speedup, speedup_floor))


def test_map_lookup_p50_is_submillisecond(grid_report, smoke):
    p50_budget = budgets(smoke)[3]
    p50 = grid_report[1]
    assert p50 < p50_budget, (
        "map lookup p50 %.3f ms (budget %.1f ms)"
        % (p50 * 1e3, p50_budget * 1e3))
