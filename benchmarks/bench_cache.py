"""Cold-vs-warm speedup and disabled-overhead of the tier cache.

Two numbers carry the cache's performance story:

* a **warm** design run over the paper's e-commerce service must beat
  a **cold** run by at least 3x -- the search's cost is dominated by
  tier solves, and a warm store answers them from disk/memory instead
  of re-solving CTMCs;
* with no cache attached, the wiring must cost **under 5%** -- the
  cache is opt-in, so runs that never asked for it must not pay for
  it.

Both are measured as back-to-back pairs with alternating order and
fastest-rep selection, the same discipline as ``bench_parallel``.
"""

import shutil
import tempfile
import time

import pytest

from repro.core import Aved
from repro.model import ServiceRequirements
from repro.spec.paper import ecommerce_service
from repro.units import Duration

from .conftest import write_bench_json, write_report

REQUIREMENTS = ServiceRequirements(1000.0, Duration.minutes(100))


def budgets(smoke):
    """(paired reps, warm speedup floor, disabled-overhead ceiling)."""
    if smoke:
        return 2, 1.2, 0.30      # indicative only under --smoke
    return 5, 3.0, 0.05


def time_design(infrastructure, service, cache=None):
    started = time.perf_counter()
    outcome = Aved(infrastructure, service,
                   cache=cache).design(REQUIREMENTS)
    return time.perf_counter() - started, outcome


def measure_cold_warm(infrastructure, service, reps):
    """Fastest cold run vs fastest warm run over a shared store."""
    cold_times, warm_times = [], []
    evaluations = set()
    for _ in range(reps):
        cache_dir = tempfile.mkdtemp(prefix="bench-cache-")
        try:
            cold, outcome = time_design(infrastructure, service,
                                        cache=cache_dir)
            evaluations.add(outcome.design.describe())
            warm, outcome = time_design(infrastructure, service,
                                        cache=cache_dir)
            evaluations.add(outcome.design.describe())
            cold_times.append(cold)
            warm_times.append(warm)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    assert len(evaluations) == 1, "cache changed the designed system"
    return min(cold_times), min(warm_times)


def measure_disabled_overhead(infrastructure, service, reps):
    """Cache-off runs before/after the cache code existed cost alike."""
    baseline_times, wired_times = [], []
    for rep in range(reps):
        if rep % 2 == 0:
            baseline, _ = time_design(infrastructure, service)
            wired, _ = time_design(infrastructure, service, cache=None)
        else:
            wired, _ = time_design(infrastructure, service, cache=None)
            baseline, _ = time_design(infrastructure, service)
        baseline_times.append(baseline)
        wired_times.append(wired)
    return min(baseline_times), min(wired_times)


@pytest.fixture(scope="module")
def cache_report(smoke, paper_infra):
    ecommerce = ecommerce_service()
    reps, speedup_floor, overhead_budget = budgets(smoke)
    time_design(paper_infra, ecommerce)              # warm the code
    cold, warm = measure_cold_warm(paper_infra, ecommerce, reps)
    baseline, wired = measure_disabled_overhead(paper_infra, ecommerce,
                                                reps)
    speedup = cold / warm
    overhead = wired / baseline - 1.0
    lines = [
        "tier-evaluation cache: cold-vs-warm paired runs "
        "(e-commerce, 1000 users, 100 min)",
        "",
        "cold (empty store):  %8.1f ms fastest of %d" % (cold * 1e3,
                                                         reps),
        "warm (shared store): %8.1f ms fastest of %d" % (warm * 1e3,
                                                         reps),
        "speedup:             %8.2fx (floor %.1fx)" % (speedup,
                                                       speedup_floor),
        "",
        "cache-off run:       %8.1f ms fastest of %d" % (baseline * 1e3,
                                                         reps),
        "cache=None wiring:   %8.1f ms fastest of %d" % (wired * 1e3,
                                                         reps),
        "disabled overhead:   %+7.2f%% (budget %.0f%%)"
        % (overhead * 100.0, overhead_budget * 100.0),
    ]
    write_bench_json("cache",
                     {"cold_seconds": cold,
                      "warm_seconds": warm,
                      "warm_speedup": speedup,
                      "baseline_seconds": baseline,
                      "disabled_seconds": wired,
                      "disabled_overhead_ratio": overhead},
                     meta={"speedup_floor": speedup_floor,
                           "overhead_budget": overhead_budget,
                           "reps": reps},
                     smoke=smoke)
    write_report("cache.txt", "\n".join(lines))
    return speedup, overhead


def test_warm_cache_speedup_meets_floor(cache_report, smoke):
    speedup_floor = budgets(smoke)[1]
    speedup = cache_report[0]
    assert speedup >= speedup_floor, (
        "warm cache only %.2fx faster than cold (floor %.1fx)"
        % (speedup, speedup_floor))


def test_disabled_cache_overhead_under_budget(cache_report, smoke):
    overhead_budget = budgets(smoke)[2]
    overhead = cache_report[1]
    assert overhead < overhead_budget, (
        "cache-off runs pay %.2f%% for the cache wiring "
        "(budget %.0f%%)" % (overhead * 100.0,
                             overhead_budget * 100.0))
