"""Shared fixtures and report output for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures.
Numeric series are printed and also written to ``benchmarks/out/`` so
the reproduction can be diffed against the paper's reported shapes
without re-running.
"""

from __future__ import annotations

import os

import pytest

from repro.model import ServiceModel
from repro.spec.paper import (ecommerce_service, paper_infrastructure,
                              scientific_service)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_report(name: str, text: str) -> str:
    """Write a figure/table report under benchmarks/out/ and echo it."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    print()
    print("--- %s ---" % name)
    print(text)
    return path


@pytest.fixture(scope="session")
def paper_infra():
    return paper_infrastructure()


@pytest.fixture(scope="session")
def app_tier_service():
    return ServiceModel("app-tier",
                        [ecommerce_service().tier("application")])


@pytest.fixture(scope="session")
def scientific():
    return scientific_service()
