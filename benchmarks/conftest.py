"""Shared fixtures and report output for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures.
Numeric series are printed and also written to ``benchmarks/out/`` so
the reproduction can be diffed against the paper's reported shapes
without re-running.

``pytest benchmarks --smoke`` runs every benchmark with shrunken
budgets (short simulations, few loads, low redundancy) -- minutes
become seconds, so CI can exercise the full harness on every push.
Smoke numbers are NOT comparable to full-run numbers; artifacts
written during a smoke run carry ``"smoke": true`` in their meta.

Machine-readable results go to ``benchmarks/out/BENCH_<name>.json``
via :func:`write_bench_json`, using the shared
:func:`repro.obs.bench_record` envelope.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

import pytest

from repro.model import ServiceModel
from repro.obs import bench_record, write_bench_record
from repro.spec.paper import (ecommerce_service, paper_infrastructure,
                              scientific_service)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run benchmarks with tiny budgets (CI smoke mode); "
             "results are indicative only")


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture
def full_sweep(smoke):
    """Skip assertions that only hold for the full (non-smoke) sweep."""
    if smoke:
        pytest.skip("needs the full sweep; not run under --smoke")


def write_report(name: str, text: str) -> str:
    """Write a figure/table report under benchmarks/out/ and echo it."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    print()
    print("--- %s ---" % name)
    print(text)
    return path


def write_bench_json(name: str, results: Dict[str, Any],
                     meta: Optional[Dict[str, Any]] = None,
                     smoke: bool = False) -> str:
    """Write ``benchmarks/out/BENCH_<name>.json`` (shared envelope)."""
    os.makedirs(OUT_DIR, exist_ok=True)
    merged = dict(meta or {})
    merged["smoke"] = smoke
    record = bench_record(name, results, meta=merged)
    return write_bench_record(
        os.path.join(OUT_DIR, "BENCH_%s.json" % name), record)


@pytest.fixture(scope="session")
def paper_infra():
    return paper_infrastructure()


@pytest.fixture(scope="session")
def app_tier_service():
    return ServiceModel("app-tier",
                        [ecommerce_service().tier("application")])


@pytest.fixture(scope="session")
def scientific():
    return scientific_service()
