"""A small continuous-time Markov chain solver.

This is the reproduction's stand-in for the external availability
evaluation engines the paper interfaces to (Avanto, Mobius, SHARPE);
the paper notes Aved also ships "our own simplified Markov Model",
which is what this module provides.  Failures are independent with
exponentially distributed inter-arrival and repair times.

Chains are described by arbitrary hashable states and a transition
function; steady-state probabilities come from solving the global
balance equations ``pi Q = 0`` with ``sum(pi) = 1``.  Chains produced
by the tier models are small (tens to a few thousand states), so a
dense solve is used below a size threshold and a sparse least-squares
solve above it.
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterable, List, Mapping,
                    Optional, Tuple)

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from ..errors import EvaluationError

State = Hashable
#: Transition function: state -> iterable of (successor, rate) pairs.
TransitionFn = Callable[[State], Iterable[Tuple[State, float]]]

_DENSE_LIMIT = 1500


class ContinuousTimeMarkovChain:
    """A CTMC built by exploring reachable states from an initial state."""

    def __init__(self, initial: State, transitions: TransitionFn,
                 max_states: int = 200_000):
        self._index: Dict[State, int] = {}
        self._states: List[State] = []
        self._edges: List[Tuple[int, int, float]] = []
        #: Human-readable annotations of degraded solves (e.g. a dense
        #: solve that fell back to least squares), appended by the
        #: solver so callers can attribute them in provenance records.
        self.solve_notes: List[str] = []
        self._explore(initial, transitions, max_states)

    def _explore(self, initial: State, transitions: TransitionFn,
                 max_states: int) -> None:
        self._index[initial] = 0
        self._states.append(initial)
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            origin = self._index[state]
            for successor, rate in transitions(state):
                if rate < 0:
                    raise EvaluationError(
                        "negative transition rate %g from state %r"
                        % (rate, state))
                if rate == 0 or successor == state:
                    continue
                if successor not in self._index:
                    if len(self._states) >= max_states:
                        raise EvaluationError(
                            "CTMC exceeds %d states; the model is too "
                            "large for exact solution" % max_states)
                    self._index[successor] = len(self._states)
                    self._states.append(successor)
                    frontier.append(successor)
                self._edges.append((origin, self._index[successor], rate))

    # -- accessors -------------------------------------------------------

    @property
    def states(self) -> List[State]:
        return list(self._states)

    @property
    def edges(self) -> List[Tuple[int, int, float]]:
        """Transitions as (origin index, target index, rate) triples."""
        return list(self._edges)

    @property
    def size(self) -> int:
        return len(self._states)

    # -- solving ----------------------------------------------------------

    def steady_state(self) -> Mapping[State, float]:
        """Steady-state probability of each state.

        Solves ``pi Q = 0`` with the normalization constraint replacing
        one balance equation (dense) or appended as an extra row
        (sparse least squares).
        """
        size = self.size
        if size == 1:
            return {self._states[0]: 1.0}
        if size <= _DENSE_LIMIT:
            probabilities = self._solve_dense()
        else:
            probabilities = self._solve_sparse()
        # Clip tiny negative round-off and renormalize.
        probabilities = np.clip(probabilities, 0.0, None)
        total = probabilities.sum()
        if total <= 0:
            raise EvaluationError("steady-state solve produced a zero "
                                  "vector; the chain may be degenerate")
        probabilities /= total
        return {state: float(probabilities[index])
                for state, index in self._index.items()}

    def _generator_dense(self) -> np.ndarray:
        size = self.size
        matrix = np.zeros((size, size))
        for origin, target, rate in self._edges:
            matrix[origin, target] += rate
            matrix[origin, origin] -= rate
        return matrix

    def _solve_dense(self) -> np.ndarray:
        generator = self._generator_dense()
        size = self.size
        # pi Q = 0  <=>  Q^T pi^T = 0; replace last equation with sum=1.
        system = generator.T.copy()
        system[-1, :] = 1.0
        rhs = np.zeros(size)
        rhs[-1] = 1.0
        try:
            return np.linalg.solve(system, rhs)
        except np.linalg.LinAlgError as exc:
            # Fall back to least squares for singular corner cases.
            # Chain the original error so a failing lstsq is still
            # attributable to the singular direct solve, and note the
            # degradation for provenance.
            try:
                solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
            except np.linalg.LinAlgError as lstsq_exc:
                raise lstsq_exc from exc
            self.solve_notes.append(
                "dense solve degraded to least squares (%s)" % exc)
            return solution

    def _solve_sparse(self) -> np.ndarray:
        """Exact sparse LU solve of ``Q^T pi = 0`` with one balance
        equation replaced by the normalization ``sum(pi) = 1``."""
        size = self.size
        rows, cols, data = [], [], []
        diag = np.zeros(size)
        for origin, target, rate in self._edges:
            if target != size - 1:
                rows.append(target)
                cols.append(origin)
                data.append(rate)
            diag[origin] -= rate
        for index in range(size - 1):
            rows.append(index)
            cols.append(index)
            data.append(diag[index])
        # Final row: normalization sum(pi) = 1.
        rows.extend([size - 1] * size)
        cols.extend(range(size))
        data.extend([1.0] * size)
        matrix = scipy.sparse.csc_matrix(
            (data, (rows, cols)), shape=(size, size))
        rhs = np.zeros(size)
        rhs[size - 1] = 1.0
        return scipy.sparse.linalg.spsolve(matrix, rhs)

    def to_dot(self, label: Optional[Callable[[State], str]] = None,
               highlight: Optional[Callable[[State], bool]] = None) \
            -> str:
        """Render the chain as Graphviz DOT (debugging/documentation).

        ``label`` formats state names; ``highlight`` marks states (e.g.
        down states) with a filled style.  Rates label the edges.
        """
        label = label or (lambda state: str(state))
        lines = ["digraph ctmc {", "  rankdir=LR;",
                 "  node [shape=ellipse];"]
        for index, state in enumerate(self._states):
            attributes = ["label=\"%s\"" % label(state)]
            if highlight is not None and highlight(state):
                attributes.append("style=filled")
                attributes.append("fillcolor=\"#f4cccc\"")
            lines.append("  s%d [%s];" % (index, ", ".join(attributes)))
        for origin, target, rate in self._edges:
            lines.append("  s%d -> s%d [label=\"%.4g\"];"
                         % (origin, target, rate))
        lines.append("}")
        return "\n".join(lines)

    def expected_value(self, value_of: Callable[[State], float]) -> float:
        """Steady-state expectation of a state function."""
        probabilities = self.steady_state()
        return sum(probability * value_of(state)
                   for state, probability in probabilities.items())

    def probability_where(self,
                          predicate: Callable[[State], bool]) -> float:
        """Steady-state probability mass of states satisfying a predicate."""
        probabilities = self.steady_state()
        return sum(probability
                   for state, probability in probabilities.items()
                   if predicate(state))
