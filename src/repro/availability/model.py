"""The tier availability model: the paper's section 4.2 parameter set.

For each tier, the generated availability model consists of

1. ``n``      -- number of active resources,
2. ``m``      -- minimum active resources for the tier to be up,
3. ``s``      -- number of spare resources,
4. ``MTBF_i`` -- per failure mode, from the design space model,
5. ``MTTR_i`` -- detection time + component repair time + startup times
   of the components affected by the failure,
6. ``FailoverTime_i`` -- detection time + reconfiguration time + startup
   latencies of components inactive in the spare.

Failover is considered only for modes whose MTTR exceeds their failover
time (the paper's rule); other modes repair in place.  The model is a
pure numeric object: no references back to infrastructure or service
models, so any evaluation engine (Markov, simulation, closed form) can
consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ModelError
from ..units import Duration


@dataclass(frozen=True)
class FailureModeEntry:
    """One failure mode of the tier's resource type, fully resolved.

    ``spare_susceptible`` is True when the failing component is kept
    active in spare resources (hot spares age; cold spares do not).
    """

    name: str                    # e.g. "machineA.hard"
    mtbf: Duration
    mttr: Duration               # detection + repair + dependent restarts
    failover_time: Duration      # detection + reconfig + spare activation
    spare_susceptible: bool = False

    def __post_init__(self):
        if self.mtbf.as_seconds <= 0:
            raise ModelError("mode %r: MTBF must be positive" % self.name)
        if self.mttr.as_seconds < 0:
            raise ModelError("mode %r: MTTR cannot be negative" % self.name)
        if self.failover_time.as_seconds < 0:
            raise ModelError("mode %r: failover time cannot be negative"
                             % self.name)

    @property
    def uses_failover(self) -> bool:
        """The paper's rule: fail over only when repair is slower."""
        return self.mttr > self.failover_time

    @property
    def failure_rate_per_hour(self) -> float:
        return 1.0 / self.mtbf.as_hours

    def canonical_fragment(self, spares: bool) -> dict:
        """Normalized, JSON-stable description of this mode.

        ``spares`` says whether the owning tier has ``s > 0``.  Without
        spares no engine ever consults ``failover_time`` or
        ``spare_susceptible`` (the failover rule is gated on ``s > 0``
        in every engine, and a spare pool of size zero cannot age), so
        both fields are dropped from the canonical form -- designs that
        differ only in the activation prefix of spares they do not have
        collapse to the same key.
        """
        from ..units import canonical_scalar
        fragment = {
            "name": self.name,
            "mtbf": canonical_scalar(self.mtbf),
            "mttr": canonical_scalar(self.mttr),
        }
        if spares:
            fragment["failover"] = canonical_scalar(self.failover_time)
            fragment["spare_susceptible"] = self.spare_susceptible
        return fragment


@dataclass(frozen=True)
class TierAvailabilityModel:
    """Numeric availability model of one tier (paper section 4.2).

    ``repair_crew`` bounds how many resources can be under repair
    concurrently (None = unlimited staff, the paper's implicit
    assumption); with ``repair_crew=k``, at most ``k`` repairs progress
    and the rest queue.
    """

    name: str
    n: int                                   # active resources
    m: int                                   # minimum active to be "up"
    s: int                                   # spare resources
    modes: Tuple[FailureModeEntry, ...]
    repair_crew: Optional[int] = None

    def __post_init__(self):
        if self.n < 1:
            raise ModelError("tier %r: n must be >= 1" % self.name)
        if not 1 <= self.m <= self.n:
            raise ModelError("tier %r: m must satisfy 1 <= m <= n (m=%d, "
                             "n=%d)" % (self.name, self.m, self.n))
        if self.s < 0:
            raise ModelError("tier %r: s cannot be negative" % self.name)
        if self.repair_crew is not None and self.repair_crew < 1:
            raise ModelError("tier %r: repair crew must be >= 1"
                             % self.name)
        if not self.modes:
            raise ModelError("tier %r: needs at least one failure mode"
                             % self.name)
        seen = set()
        for mode in self.modes:
            if mode.name in seen:
                raise ModelError("tier %r: duplicate mode %r"
                                 % (self.name, mode.name))
            seen.add(mode.name)

    @property
    def total_resources(self) -> int:
        return self.n + self.s

    @property
    def slack(self) -> int:
        """Active resources beyond the minimum (the paper's n_extra)."""
        return self.n - self.m

    def active_failure_rate_per_hour(self) -> float:
        """Combined failure rate of one active resource, per hour."""
        return sum(mode.failure_rate_per_hour for mode in self.modes)

    def tier_event_rate_per_hour(self) -> float:
        """Rate of *any* active-resource failure in the tier.

        For failure-scope=tier applications this is the rate of
        work-loss events (used by the job completion model).
        """
        return self.n * self.active_failure_rate_per_hour()

    def tier_mtbf(self) -> Duration:
        """Mean time between work-loss events across the whole tier."""
        rate = self.tier_event_rate_per_hour()
        if rate <= 0:
            raise ModelError("tier %r has zero failure rate" % self.name)
        return Duration.hours(1.0 / rate)

    def canonical_form(self) -> dict:
        """Normalized plain-data form of this model.

        Two models with equal canonical forms produce bit-identical
        :class:`TierResult` objects under every engine (the soundness
        property :mod:`repro.lint.canonical` hashes and the
        differential suite in ``tests/properties`` verifies).  Mode
        order is preserved -- engines report ``mode_results`` in model
        order, so reordering is *not* availability-neutral -- but
        failover attributes of spare-less tiers are dropped (see
        :meth:`FailureModeEntry.canonical_fragment`).
        """
        spares = self.s > 0
        return {
            "kind": "tier-availability-model",
            "tier": self.name,
            "n": self.n,
            "m": self.m,
            "s": self.s,
            "repair_crew": self.repair_crew,
            "modes": [mode.canonical_fragment(spares)
                      for mode in self.modes],
        }


@dataclass(frozen=True)
class ModeResult:
    """Evaluation outcome for one failure mode of one tier."""

    mode: str
    unavailability: float            # steady-state probability tier is down
    failures_per_year: float         # expected failure events per year
    used_failover: bool

    @property
    def downtime_minutes(self) -> float:
        from ..units import MINUTES_PER_YEAR
        return self.unavailability * MINUTES_PER_YEAR


@dataclass(frozen=True)
class EngineProvenance:
    """Which engine produced a result, and why any fallback happened.

    Attached to :class:`TierResult` by the resilience runtime
    (:class:`repro.resilience.FallbackEngine`); plain engines leave it
    None.  ``fallback_from`` lists the engines that were tried (or
    skipped by an open circuit breaker) before ``engine`` answered, in
    order; ``cause`` summarizes why the last of them gave way.
    """

    engine: str
    attempts: int = 1
    fallback_from: Tuple[str, ...] = ()
    cause: str = ""

    @property
    def degraded(self) -> bool:
        """True when the result did not come from the primary engine."""
        return bool(self.fallback_from)

    def describe(self) -> str:
        text = self.engine
        if self.attempts > 1:
            text += " (attempt %d)" % self.attempts
        if self.fallback_from:
            text += " after %s" % " -> ".join(self.fallback_from)
            if self.cause:
                text += ": %s" % self.cause
        return text


@dataclass(frozen=True)
class TierResult:
    """Evaluation outcome for one tier."""

    name: str
    unavailability: float
    mode_results: Tuple[ModeResult, ...] = ()
    #: Filled in by the resilience runtime; None from bare engines.
    provenance: Optional[EngineProvenance] = None

    def __post_init__(self):
        if not -1e-12 <= self.unavailability <= 1.0 + 1e-12:
            raise ModelError("tier %r: unavailability %g out of [0,1]"
                             % (self.name, self.unavailability))

    @property
    def availability(self) -> float:
        return 1.0 - self.unavailability

    @property
    def downtime_minutes(self) -> float:
        from ..units import MINUTES_PER_YEAR
        return self.unavailability * MINUTES_PER_YEAR

    @property
    def annual_downtime(self) -> Duration:
        return Duration.minutes(self.downtime_minutes)


@dataclass(frozen=True)
class AvailabilityResult:
    """Evaluation outcome for a whole design (tiers in series)."""

    tiers: Tuple[TierResult, ...]
    unavailability: float

    @property
    def availability(self) -> float:
        return 1.0 - self.unavailability

    @property
    def downtime_minutes(self) -> float:
        from ..units import MINUTES_PER_YEAR
        return self.unavailability * MINUTES_PER_YEAR

    @property
    def annual_downtime(self) -> Duration:
        return Duration.minutes(self.downtime_minutes)

    @property
    def annual_uptime(self) -> Duration:
        from ..units import MINUTES_PER_YEAR
        return Duration.minutes((1.0 - self.unavailability)
                                * MINUTES_PER_YEAR)

    def tier(self, name: str) -> TierResult:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise ModelError("no tier result named %r" % name)
