"""Markov evaluation of tier availability models.

Each failure mode is evaluated on its own continuous-time Markov chain
(failure-mode decomposition): the chain for mode *i* assumes the other
modes are quiescent, and per-mode unavailabilities are composed as if
independent.  This mirrors the structure of classical availability
tools in the rare-failure regime the paper operates in; the
discrete-event simulator (:mod:`repro.availability.simulation`)
quantifies the decomposition error in the test suite.

Two chain shapes are used, following the paper's failover rule:

* **Failover chain** (``MTTR_i > FailoverTime_i`` and spares exist):
  state ``(r, w)`` where ``r`` resources are in repair and ``w`` active
  slots are unmanned.  Unmanned slots grab idle spares at rate
  ``min(w, idle)/FailoverTime``; repaired resources rejoin as spares.
  The tier is down while ``n - w < m``.
* **In-place repair chain** (otherwise): state ``r`` = failed active
  resources; each repairs at ``1/MTTR`` and resumes its slot.  The tier
  is down while ``n - r < m``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import numpy as np

from ..errors import NumericalError
from ..units import HOURS_PER_YEAR
from .ctmc import ContinuousTimeMarkovChain
from .model import (EngineProvenance, FailureModeEntry, ModeResult,
                    TierAvailabilityModel, TierResult)

#: Durations below this (in hours) are treated as instantaneous
#: transitions to keep rates finite (3.6 ms).
_MIN_HOURS = 1e-6


def evaluate_tier(model: TierAvailabilityModel) -> TierResult:
    """Evaluate one tier by failure-mode decomposition.

    Raises :class:`~repro.errors.NumericalError` -- carrying the tier
    name and its ``(n, m, s)`` structure -- when a mode's chain solve
    hits a singular generator matrix or yields non-finite/out-of-range
    probabilities, so callers can attribute the failure (and the
    resilience runtime can classify it as transient) without digging
    through a linear-algebra traceback.
    """
    notes: List[str] = []
    return compose_tier_result(
        model, lambda mode: evaluate_mode(model, mode, notes), notes)


def compose_tier_result(model: TierAvailabilityModel, solve_mode,
                        notes: List[str] = None) -> TierResult:
    """Validate and compose per-mode results into a :class:`TierResult`.

    ``solve_mode`` maps a :class:`FailureModeEntry` to its
    :class:`ModeResult` (or raises).  Factored out of
    :func:`evaluate_tier` so the batched path
    (:mod:`repro.batch`) runs the *same* validation and series
    composition, float op for float op -- part of the batched ==
    scalar bit-identity contract.

    ``notes`` are degraded-solve annotations (least-squares fallbacks)
    collected while solving; when present they are attached as a
    non-degraded :class:`EngineProvenance` so the fallback is
    attributable in the outcome.
    """
    mode_results: List[ModeResult] = []
    up_product = 1.0
    structure = (model.n, model.m, model.s)
    for mode in model.modes:
        try:
            result = solve_mode(mode)
        except np.linalg.LinAlgError as exc:
            raise NumericalError(
                "mode %r: linear solve failed (%s)" % (mode.name, exc),
                tier=model.name, structure=structure) from exc
        except FloatingPointError as exc:
            raise NumericalError(
                "mode %r: floating-point fault (%s)" % (mode.name, exc),
                tier=model.name, structure=structure) from exc
        if not math.isfinite(result.unavailability) \
                or not 0.0 <= result.unavailability <= 1.0:
            raise NumericalError(
                "mode %r: solve produced unavailability %r outside [0, 1]"
                % (mode.name, result.unavailability),
                tier=model.name, structure=structure)
        if not math.isfinite(result.failures_per_year):
            raise NumericalError(
                "mode %r: solve produced non-finite failure rate %r"
                % (mode.name, result.failures_per_year),
                tier=model.name, structure=structure)
        mode_results.append(result)
        up_product *= 1.0 - result.unavailability
    provenance = None
    if notes:
        provenance = EngineProvenance(engine="markov",
                                      cause="; ".join(notes))
    return TierResult(model.name, 1.0 - up_product, tuple(mode_results),
                      provenance)


def evaluate_mode(model: TierAvailabilityModel, mode: FailureModeEntry,
                  notes: List[str] = None) -> ModeResult:
    """Evaluate a single failure mode's chain for a tier.

    ``notes`` (optional) collects degraded-solve annotations from the
    chain solver, e.g. a dense solve that fell back to least squares.
    """
    uses_failover = mode.uses_failover and model.s > 0
    if mode.mttr.as_seconds == 0 and not uses_failover:
        # Instant repair: no downtime, but failures still occur.
        failures = model.n / mode.mtbf.as_hours * HOURS_PER_YEAR
        return ModeResult(mode.name, 0.0, failures, False)
    if uses_failover:
        unavailability, failures = _solve_failover_chain(model, mode,
                                                         notes)
    else:
        unavailability, failures = _solve_inplace_chain(model, mode,
                                                        notes)
    return ModeResult(mode.name, unavailability, failures, uses_failover)


def _note_degraded_solves(chain: ContinuousTimeMarkovChain,
                          mode: FailureModeEntry,
                          notes: List[str]) -> None:
    if notes is not None:
        for note in chain.solve_notes:
            notes.append("mode %r: %s" % (mode.name, note))


# ----------------------------------------------------------------------
# Failover chain: state (r, w)
# ----------------------------------------------------------------------


#: Extra unmanned-slot states kept beyond the first down state.  The
#: chain is truncated at ``w <= (n - m + 1) + _TRUNCATION_MARGIN``:
#: states deeper than that refine *how far down* the tier is, not
#: whether it is down, and carry negligible probability in any regime
#: where the design is worth considering.  The simulation engine (no
#: truncation) bounds the error in the test suite.
_TRUNCATION_MARGIN = 12


def _solve_failover_chain(model: TierAvailabilityModel,
                          mode: FailureModeEntry,
                          notes: List[str] = None) -> Tuple[float, float]:
    n, s = model.n, model.s
    total = n + s
    failure_rate = 1.0 / mode.mtbf.as_hours
    repair_rate = 1.0 / max(mode.mttr.as_hours, _MIN_HOURS)
    failover_rate = 1.0 / max(mode.failover_time.as_hours, _MIN_HOURS)
    spare_rate = failure_rate if mode.spare_susceptible else 0.0
    w_cap = min(n, (n - model.m + 1) + s + _TRUNCATION_MARGIN)
    crew = model.repair_crew if model.repair_crew is not None else total

    def transitions(state) -> Iterable[Tuple[Tuple[int, int], float]]:
        r, w = state
        idle = s - r + w
        out = []
        manned = n - w
        if manned > 0 and r < total and w < w_cap:
            out.append(((r + 1, w + 1), manned * failure_rate))
        if spare_rate > 0.0 and idle > 0:
            out.append(((r + 1, w), idle * spare_rate))
        in_failover = min(w, idle)
        if in_failover > 0:
            out.append(((r, w - 1), in_failover * failover_rate))
        if r > 0:
            out.append(((r - 1, w), min(r, crew) * repair_rate))
        return out

    chain = ContinuousTimeMarkovChain((0, 0), transitions)
    probabilities = chain.steady_state()
    _note_degraded_solves(chain, mode, notes)
    unavailability = 0.0
    failure_flux = 0.0
    for (r, w), probability in probabilities.items():
        if n - w < model.m:
            unavailability += probability
        idle = s - r + w
        failure_flux += probability * ((n - w) * failure_rate
                                       + idle * spare_rate)
    return unavailability, failure_flux * HOURS_PER_YEAR


# ----------------------------------------------------------------------
# In-place repair chain: state r
# ----------------------------------------------------------------------


def _solve_inplace_chain(model: TierAvailabilityModel,
                         mode: FailureModeEntry,
                         notes: List[str] = None) -> Tuple[float, float]:
    n = model.n
    failure_rate = 1.0 / mode.mtbf.as_hours
    repair_rate = 1.0 / max(mode.mttr.as_hours, _MIN_HOURS)
    crew = model.repair_crew if model.repair_crew is not None else n

    def transitions(r) -> Iterable[Tuple[int, float]]:
        out = []
        if r < n:
            out.append((r + 1, (n - r) * failure_rate))
        if r > 0:
            out.append((r - 1, min(r, crew) * repair_rate))
        return out

    chain = ContinuousTimeMarkovChain(0, transitions)
    probabilities = chain.steady_state()
    _note_degraded_solves(chain, mode, notes)
    unavailability = 0.0
    failure_flux = 0.0
    for r, probability in probabilities.items():
        if n - r < model.m:
            unavailability += probability
        failure_flux += probability * (n - r) * failure_rate
    return unavailability, failure_flux * HOURS_PER_YEAR
