"""Expected job completion time for finite applications (paper Eq. 1).

For applications with a loss window ``lw`` (the maximum work lost per
failure event -- e.g. one checkpoint interval), the paper derives the
mean computation time needed to bank ``lw`` of useful work:

    P_f  = 1 - exp(-lw / MTBF)
    T_lw = MTBF * P_f / (1 - P_f)

which simplifies to the numerically friendly form used here::

    T_lw = MTBF * (exp(lw / MTBF) - 1)

As ``lw -> 0``, ``T_lw -> lw`` (no re-execution); as ``lw`` approaches
MTBF, the re-execution penalty explodes.  The useful fraction of
computation time is ``lw / T_lw``; combined with the uptime fraction
from the availability engine and the checkpoint mechanism's normal-
operation overhead factor, it gives the expected job execution time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import EvaluationError
from ..units import Duration


def failure_probability(loss_window: Duration, mtbf: Duration) -> float:
    """``P_f``: probability of >= 1 failure within one loss window."""
    if mtbf.as_seconds <= 0:
        raise EvaluationError("MTBF must be positive")
    if loss_window.as_seconds < 0:
        raise EvaluationError("loss window cannot be negative")
    return -math.expm1(-loss_window / mtbf)


def mean_time_per_loss_window(loss_window: Duration,
                              mtbf: Duration) -> Duration:
    """``T_lw``: mean computation time to complete ``lw`` of useful work."""
    if mtbf.as_seconds <= 0:
        raise EvaluationError("MTBF must be positive")
    if loss_window.as_seconds < 0:
        raise EvaluationError("loss window cannot be negative")
    if loss_window.is_zero():
        return Duration.ZERO
    ratio = loss_window / mtbf
    if ratio > 700.0:  # exp overflow guard: effectively never completes
        return Duration(math.inf)
    return Duration(mtbf.as_seconds * math.expm1(ratio))


def useful_fraction(loss_window: Duration, mtbf: Duration) -> float:
    """``lw / T_lw``: fraction of computation time that is useful work."""
    if loss_window.is_zero():
        return 1.0
    t_lw = mean_time_per_loss_window(loss_window, mtbf)
    if not t_lw.is_finite():
        return 0.0
    return loss_window / t_lw


@dataclass(frozen=True)
class JobTimeEstimate:
    """Breakdown of an expected-job-time computation."""

    expected_time: Duration      # wall-clock expectation (may be inf)
    useful_fraction: float       # lw / T_lw (re-execution losses)
    overhead_factor: float       # checkpoint overhead in normal operation
    uptime_fraction: float       # from the availability engine
    effective_rate: float        # useful work units per wall-clock hour

    @property
    def feasible(self) -> bool:
        return self.expected_time.is_finite()


def estimate_job_time(job_size: float,
                      throughput_per_hour: float,
                      overhead_factor: float,
                      loss_window: Duration,
                      tier_mtbf: Duration,
                      uptime_fraction: float) -> JobTimeEstimate:
    """Expected wall-clock time to finish ``job_size`` units of work.

    ``throughput_per_hour`` is the tier's failure-free throughput;
    ``overhead_factor`` (>= 1) stretches execution for the availability
    mechanism's normal-operation cost (Table 1's ``mperformance``);
    ``loss_window`` and ``tier_mtbf`` feed Eq. 1; ``uptime_fraction``
    accounts for time lost to repairs.
    """
    if job_size <= 0:
        raise EvaluationError("job size must be positive")
    if throughput_per_hour <= 0:
        raise EvaluationError("throughput must be positive")
    if overhead_factor < 1.0:
        raise EvaluationError("overhead factor must be >= 1")
    if not 0.0 <= uptime_fraction <= 1.0:
        raise EvaluationError("uptime fraction must be in [0, 1]")

    fraction = useful_fraction(loss_window, tier_mtbf)
    effective = (throughput_per_hour / overhead_factor
                 * fraction * uptime_fraction)
    if effective <= 0.0:
        return JobTimeEstimate(Duration(math.inf), fraction,
                               overhead_factor, uptime_fraction, 0.0)
    hours = job_size / effective
    return JobTimeEstimate(Duration.hours(hours), fraction,
                           overhead_factor, uptime_fraction, effective)
