"""Availability evaluation engines and the series composition of tiers.

The paper's architecture (Fig. 1) feeds generated availability models
to an external "Availability Evaluation Engine".  This module defines
that interface and three interchangeable implementations:

* :class:`MarkovEngine` -- per-mode CTMCs (the default; the paper's
  "our own simplified Markov Model");
* :class:`AnalyticEngine` -- closed forms, fastest, first-order for
  failover modes;
* :class:`SimulationEngine` -- discrete-event Monte Carlo, slowest,
  fewest assumptions (used for validation).

``get_engine("markov" | "analytic" | "simulation")`` selects one by
name, which the benchmarks use for engine-ablation runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from ..errors import EvaluationError
from ..obs import current as _obs_current
from . import analytic, markov
from .model import AvailabilityResult, TierAvailabilityModel, TierResult
from .rbd import series_unavailability
from .simulation import simulate_tier


class AvailabilityEngine:
    """Evaluates tier availability models (paper Fig. 1, right side)."""

    #: Registry name; subclasses set it.
    name = "abstract"

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        raise NotImplementedError

    def evaluate(self, models: Sequence[TierAvailabilityModel]) \
            -> AvailabilityResult:
        """Evaluate a whole design: tiers composed in series."""
        if not models:
            raise EvaluationError("design has no tier models")
        tier_results = tuple(self.evaluate_tier(model) for model in models)
        unavailability = series_unavailability(
            result.unavailability for result in tier_results)
        return AvailabilityResult(tier_results, unavailability)


class MarkovEngine(AvailabilityEngine):
    """Exact per-mode CTMC solution with failure-mode decomposition."""

    name = "markov"

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        obs = _obs_current()
        if obs.enabled:
            with obs.engine_span(self.name, model):
                return markov.evaluate_tier(model)
        return markov.evaluate_tier(model)


class AnalyticEngine(AvailabilityEngine):
    """Closed-form approximation (exact for in-place repair modes)."""

    name = "analytic"

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        obs = _obs_current()
        if obs.enabled:
            with obs.engine_span(self.name, model):
                return analytic.evaluate_tier(model)
        return analytic.evaluate_tier(model)


class SimulationEngine(AvailabilityEngine):
    """Discrete-event Monte Carlo (no decomposition assumption).

    ``years`` controls the horizon per tier; pair it with the rarity of
    the events of interest (2,000 simulated years resolves downtime of
    roughly a minute per year to ~10%).
    """

    name = "simulation"

    def __init__(self, years: float = 2000.0, seed: Optional[int] = None,
                 deterministic_repairs: bool = False):
        self.years = years
        self.seed = seed
        self.deterministic_repairs = deterministic_repairs

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        obs = _obs_current()
        if obs.enabled:
            with obs.engine_span(self.name, model):
                result = simulate_tier(
                    model, years=self.years, seed=self.seed,
                    deterministic_repairs=self.deterministic_repairs)
                return result.tier
        result = simulate_tier(model, years=self.years, seed=self.seed,
                               deterministic_repairs=self
                               .deterministic_repairs)
        return result.tier


_ENGINES: Dict[str, Type[AvailabilityEngine]] = {
    MarkovEngine.name: MarkovEngine,
    AnalyticEngine.name: AnalyticEngine,
    SimulationEngine.name: SimulationEngine,
}


def get_engine(name: str, **kwargs) -> AvailabilityEngine:
    """Instantiate an engine by registry name."""
    try:
        engine_cls = _ENGINES[name]
    except KeyError:
        raise EvaluationError("unknown availability engine %r (have: %s)"
                              % (name, sorted(_ENGINES)))
    return engine_cls(**kwargs)


def register_engine(engine_cls: Type[AvailabilityEngine]) -> None:
    """Register a custom engine class under its ``name`` attribute."""
    if not issubclass(engine_cls, AvailabilityEngine):
        raise EvaluationError("engine must subclass AvailabilityEngine")
    _ENGINES[engine_cls.name] = engine_cls
