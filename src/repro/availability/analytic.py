"""Closed-form availability approximations (fast path / ablation).

The Markov engine solves an exact chain per failure mode.  This module
provides closed forms that are

* **exact** for in-place repair modes: the birth-death chain with rates
  ``(n-r) * lambda`` down and ``r * mu`` up is precisely ``n``
  independent two-state (up/down) processes, so the number of failed
  resources is Binomial(n, MTTR/(MTBF+MTTR));
* **first-order** for failover modes: each active slot is treated as
  independently unmanned for one failover time per failure, ignoring
  spare exhaustion.  This underestimates unavailability when spares are
  scarce relative to failure traffic -- the ablation benchmark
  quantifies the gap against the Markov engine.

These forms are what a designer would scribble on a whiteboard; keeping
them executable documents exactly where the Markov model's extra
fidelity matters.
"""

from __future__ import annotations

from typing import Tuple

from ..units import HOURS_PER_YEAR
from .model import (FailureModeEntry, ModeResult, TierAvailabilityModel,
                    TierResult)
from .rbd import k_of_n_identical


def evaluate_tier(model: TierAvailabilityModel) -> TierResult:
    """Closed-form evaluation of a tier, mode by mode."""
    mode_results = []
    up_product = 1.0
    for mode in model.modes:
        unavailability, failures = _evaluate_mode(model, mode)
        uses_failover = mode.uses_failover and model.s > 0
        mode_results.append(ModeResult(mode.name, unavailability,
                                       failures, uses_failover))
        up_product *= 1.0 - unavailability
    return TierResult(model.name, 1.0 - up_product, tuple(mode_results))


def _evaluate_mode(model: TierAvailabilityModel,
                   mode: FailureModeEntry) -> Tuple[float, float]:
    n, m = model.n, model.m
    failures = n / mode.mtbf.as_hours * HOURS_PER_YEAR
    uses_failover = mode.uses_failover and model.s > 0
    if uses_failover:
        outage_hours = mode.failover_time.as_hours
    else:
        outage_hours = mode.mttr.as_hours
    if outage_hours <= 0.0:
        return 0.0, failures
    # Probability one resource's slot is unmanned at a random instant.
    per_slot_down = outage_hours / (mode.mtbf.as_hours + outage_hours)
    availability = k_of_n_identical(m, n, 1.0 - per_slot_down)
    return 1.0 - availability, failures


def single_resource_unavailability(mode: FailureModeEntry) -> float:
    """Steady-state down probability of one resource for one mode."""
    mttr_hours = mode.mttr.as_hours
    return mttr_hours / (mode.mtbf.as_hours + mttr_hours)


def expected_annual_outages(model: TierAvailabilityModel) -> float:
    """First-order count of tier-down events per year (slack = 0 case).

    With no slack every active-resource failure is an outage; with
    slack the count is reduced by the probability that enough peers are
    already down, which this first-order form neglects.
    """
    return model.tier_event_rate_per_hour() * HOURS_PER_YEAR
