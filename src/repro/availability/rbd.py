"""Reliability-block-diagram composition helpers.

The paper composes tiers in series: "Multiple tiers in a design are
modeled as an association in series, where the whole design is
considered up only when each tier is up" (section 4.2).  Series
composition is all the Aved examples need, but parallel and k-of-n
blocks are provided for model extensions and are exercised in tests.

All functions take and return *availabilities* (probabilities of being
up) or *unavailabilities* as documented; independence between blocks is
assumed throughout, consistent with the paper's assumptions.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..errors import EvaluationError


def _check_probability(value: float, label: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise EvaluationError("%s %g is not a probability" % (label, value))
    return value


def series_availability(availabilities: Iterable[float]) -> float:
    """Availability of independent blocks in series (all must be up)."""
    product = 1.0
    for availability in availabilities:
        product *= _check_probability(availability, "availability")
    return product


def series_unavailability(unavailabilities: Iterable[float]) -> float:
    """Unavailability of independent blocks in series."""
    up = 1.0
    for unavailability in unavailabilities:
        up *= 1.0 - _check_probability(unavailability, "unavailability")
    return 1.0 - up


def parallel_availability(availabilities: Iterable[float]) -> float:
    """Availability of independent blocks in parallel (any one suffices)."""
    down = 1.0
    empty = True
    for availability in availabilities:
        down *= 1.0 - _check_probability(availability, "availability")
        empty = False
    if empty:
        raise EvaluationError("parallel block needs at least one member")
    return 1.0 - down


def k_of_n_availability(k: int, availabilities: Sequence[float]) -> float:
    """Probability that at least ``k`` of the blocks are up.

    Blocks may have different availabilities; computed by dynamic
    programming over the Poisson-binomial distribution in O(n^2).
    """
    n = len(availabilities)
    if not 0 <= k <= n:
        raise EvaluationError("k-of-n: k=%d outside [0, %d]" % (k, n))
    for availability in availabilities:
        _check_probability(availability, "availability")
    # distribution[j] = P(exactly j of the first i blocks are up)
    distribution = [1.0] + [0.0] * n
    for i, availability in enumerate(availabilities, start=1):
        for j in range(i, 0, -1):
            distribution[j] = (distribution[j] * (1.0 - availability)
                               + distribution[j - 1] * availability)
        distribution[0] *= 1.0 - availability
    return math.fsum(distribution[k:])


def k_of_n_identical(k: int, n: int, availability: float) -> float:
    """At-least-k-of-n with identical block availability (binomial)."""
    if not 0 <= k <= n:
        raise EvaluationError("k-of-n: k=%d outside [0, %d]" % (k, n))
    _check_probability(availability, "availability")
    total = 0.0
    for j in range(k, n + 1):
        total += (math.comb(n, j) * availability ** j
                  * (1.0 - availability) ** (n - j))
    return min(total, 1.0)
