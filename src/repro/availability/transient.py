"""Transient CTMC analysis by uniformization (Jensen's method).

The paper's steady-state downtime answers "what fraction of a year is
the service down, in the long run?".  For the utility-computing vision
in the paper's introduction -- continuously re-designing a service --
two *time-dependent* questions also matter and are answered here:

* :func:`transient_distribution`: the state distribution at time ``t``
  starting from a known state (e.g. everything freshly repaired);
* :func:`point_availability`: P(system up at time t);
* :func:`interval_availability`: expected fraction of ``[0, t]`` spent
  up, which converges to the steady-state availability and shows how
  long a fresh deployment takes to reach its long-run behavior.

Uniformization: with ``q >= max_i |Q_ii|`` and ``P = I + Q/q``,

    pi(t) = sum_k  Poisson(k; q t) * pi(0) P^k

truncated when the Poisson tail drops below a tolerance.  All vectors
are computed iteratively, so only matrix-vector products are needed.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np
import scipy.sparse

from ..errors import EvaluationError
from .ctmc import ContinuousTimeMarkovChain, State


#: Chains below this size use a dense uniformized matrix: per-call
#: overhead of sparse matvec dwarfs the arithmetic for small chains.
_DENSE_TRANSIENT_LIMIT = 600


def _uniformized_matrix(chain: ContinuousTimeMarkovChain):
    """Build (P, q, states) where P = I + Q/q is a stochastic matrix."""
    states = chain.states
    index = {state: i for i, state in enumerate(states)}
    size = len(states)
    rows, cols, data = [], [], []
    diagonal = np.zeros(size)
    for origin, target, rate in chain.edges:
        rows.append(origin)
        cols.append(target)
        data.append(rate)
        diagonal[origin] += rate
    q = float(diagonal.max()) if size else 0.0
    if q <= 0.0:
        q = 1.0  # absorbing-everywhere chain: P = I
    if size <= _DENSE_TRANSIENT_LIMIT:
        matrix = np.zeros((size, size))
        for origin, target, rate in zip(rows, cols, data):
            matrix[origin, target] += rate / q
        matrix[np.diag_indices(size)] += 1.0 - diagonal / q
        return matrix, q, states, index
    matrix = scipy.sparse.csr_matrix(
        (np.array(data) / q, (rows, cols)), shape=(size, size))
    matrix = matrix + scipy.sparse.diags(1.0 - diagonal / q)
    return matrix, q, states, index


def transient_distributions(chain: ContinuousTimeMarkovChain,
                            initial: State,
                            times_hours: Sequence[float],
                            tolerance: float = 1e-12) \
        -> List[Mapping[State, float]]:
    """State distributions at several times, sharing one power series.

    The matrix-vector products ``pi0 P^k`` are identical for every
    time; only the Poisson weights differ.  Computing all requested
    times in one sweep makes availability curves and interval
    integrals cheap.
    """
    for t in times_hours:
        if t < 0:
            raise EvaluationError("time must be non-negative")
    matrix, q, states, index = _uniformized_matrix(chain)
    if initial not in index:
        raise EvaluationError("unknown initial state %r" % (initial,))
    size = len(states)
    vector = np.zeros(size)
    vector[index[initial]] = 1.0
    count = len(times_hours)
    if count == 0:
        return []

    qts = np.array([q * t for t in times_hours])
    max_qt = float(qts.max())
    accumulated = np.zeros((count, size))
    positive = qts > 0.0
    log_qts = np.where(positive, np.log(np.where(positive, qts, 1.0)),
                       0.0)
    log_weights = np.where(positive, -qts, 0.0)
    totals = np.zeros(count)
    done = ~positive  # t == 0 handled by the k == 0 term below
    accumulated[~positive] = vector
    totals[~positive] = 1.0
    max_terms = int(max_qt + 12.0 * math.sqrt(max_qt + 1.0) + 50)
    check_interval = 64
    previous_vector = vector.copy()
    for k in range(max_terms + 1):
        active = ~done
        if not active.any():
            break
        weights = np.exp(log_weights[active])
        accumulated[active] += np.outer(weights, vector)
        totals[active] += weights
        # A time is converged once its Poisson mass is exhausted and
        # the mode (k ~ qt) has passed.
        newly_done = active.copy()
        newly_done[active] = (totals[active] >= 1.0 - tolerance) \
            & (k > qts[active])
        done |= newly_done
        if done.all():
            break
        vector = vector @ matrix
        log_weights = log_weights + log_qts - math.log(k + 1)
        if k % check_interval == check_interval - 1:
            # Stationarity shortcut: once P^k pi0 stops moving, every
            # remaining Poisson term contributes the same vector, so
            # the tail sums to (1 - total) * vector exactly.
            if np.abs(vector - previous_vector).max() < tolerance / 10:
                active = ~done
                accumulated[active] += np.outer(
                    np.clip(1.0 - totals[active], 0.0, None), vector)
                totals[active] = 1.0
                done[:] = True
                break
            previous_vector = vector.copy()
    results = []
    for i in range(count):
        row = accumulated[i] / max(totals[i], tolerance)
        results.append(dict(zip(states, row)))
    return results


def transient_distribution(chain: ContinuousTimeMarkovChain,
                           initial: State, t_hours: float,
                           tolerance: float = 1e-12) \
        -> Mapping[State, float]:
    """State distribution at time ``t_hours`` from ``initial``."""
    return transient_distributions(chain, initial, [t_hours],
                                   tolerance)[0]


def point_availability(chain: ContinuousTimeMarkovChain, initial: State,
                       is_up: Callable[[State], bool],
                       t_hours: float) -> float:
    """P(system is in an up state at time ``t_hours``)."""
    distribution = transient_distribution(chain, initial, t_hours)
    return sum(probability for state, probability
               in distribution.items() if is_up(state))


def availability_curve(chain: ContinuousTimeMarkovChain, initial: State,
                       is_up: Callable[[State], bool],
                       times_hours: Sequence[float]) -> List[float]:
    """Point availability sampled at each time (one shared sweep)."""
    distributions = transient_distributions(chain, initial, times_hours)
    return [sum(probability for state, probability
                in distribution.items() if is_up(state))
            for distribution in distributions]


def interval_availability(chain: ContinuousTimeMarkovChain,
                          initial: State,
                          is_up: Callable[[State], bool],
                          t_hours: float, samples: int = 64) -> float:
    """Expected fraction of ``[0, t]`` spent up (trapezoidal estimate).

    ``samples`` grid points trade accuracy for time; the curve is
    smooth, so modest grids suffice.
    """
    if t_hours <= 0:
        raise EvaluationError("interval length must be positive")
    if samples < 2:
        raise EvaluationError("need at least 2 samples")
    times = [t_hours * i / (samples - 1) for i in range(samples)]
    values = availability_curve(chain, initial, is_up, times)
    total = 0.0
    for (t0, a0), (t1, a1) in zip(zip(times, values),
                                  zip(times[1:], values[1:])):
        total += 0.5 * (a0 + a1) * (t1 - t0)
    return total / t_hours


def time_to_steady_state(chain: ContinuousTimeMarkovChain, initial: State,
                         is_up: Callable[[State], bool],
                         tolerance: float = 0.01,
                         max_hours: float = 24.0 * 365.0) -> float:
    """Hours until point availability is within ``tolerance`` (relative)
    of its steady-state value, by doubling search.  Returns
    ``max_hours`` if not converged by then."""
    steady = chain.probability_where(is_up)
    if steady <= 0.0:
        raise EvaluationError("system is never up in steady state")
    t = 1.0
    while t < max_hours:
        value = point_availability(chain, initial, is_up, t)
        if abs(value - steady) <= tolerance * steady:
            return t
        t *= 2.0
    return max_hours
