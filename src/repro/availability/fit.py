"""Estimating failure-model parameters from observed operation.

The paper's future work (section 7) proposes "online mechanisms to
continuously monitor service performance and other infrastructure
attributes to dynamically refine Aved's models".  The statistical core
of that loop is here: given observed failure counts and resource-hours
of exposure (from monitoring -- or from our simulator, which reports
both), produce MTBF estimates with confidence intervals and updated
failure-mode objects.

For exponential failures, the MLE of the rate is ``count / exposure``
and a two-sided confidence interval comes from the chi-square
distribution on ``2 * count`` (lower) and ``2 * count + 2`` (upper)
degrees of freedom -- the standard reliability-engineering interval,
valid for time-terminated observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import scipy.stats

from ..errors import EvaluationError
from ..units import Duration
from .model import FailureModeEntry, TierAvailabilityModel
from .simulation import SimulationResult


@dataclass(frozen=True)
class MtbfEstimate:
    """An estimated MTBF with a two-sided confidence interval."""

    mode: str
    failures: int
    exposure_hours: float
    mtbf: Optional[Duration]          # None when no failures observed
    lower: Duration                   # CI lower bound on MTBF
    upper: Optional[Duration]         # None = unbounded (no failures)
    confidence: float

    def contains(self, true_mtbf: Duration) -> bool:
        if true_mtbf < self.lower:
            return False
        return self.upper is None or true_mtbf <= self.upper


def estimate_mtbf(mode: str, failures: int, exposure_hours: float,
                  confidence: float = 0.95) -> MtbfEstimate:
    """MTBF point estimate + chi-square CI from count and exposure."""
    if exposure_hours <= 0:
        raise EvaluationError("exposure must be positive")
    if failures < 0:
        raise EvaluationError("failure count cannot be negative")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    # Rate CI: [chi2(alpha/2; 2k) / (2T), chi2(1-alpha/2; 2k+2) / (2T)]
    upper_rate = scipy.stats.chi2.ppf(1.0 - alpha / 2.0,
                                      2 * failures + 2) \
        / (2.0 * exposure_hours)
    mtbf_lower = Duration.hours(1.0 / upper_rate)
    if failures == 0:
        return MtbfEstimate(mode, 0, exposure_hours, None, mtbf_lower,
                            None, confidence)
    lower_rate = scipy.stats.chi2.ppf(alpha / 2.0, 2 * failures) \
        / (2.0 * exposure_hours)
    point = Duration.hours(exposure_hours / failures)
    mtbf_upper = Duration.hours(1.0 / lower_rate) if lower_rate > 0 \
        else None
    return MtbfEstimate(mode, failures, exposure_hours, point,
                        mtbf_lower, mtbf_upper, confidence)


@dataclass(frozen=True)
class MttrEstimate:
    """An estimated MTTR with a two-sided confidence interval.

    For exponential repairs the total repair time over ``k`` completed
    repairs is Gamma(k, MTTR), so ``2 * total / MTTR`` is chi-square on
    ``2k`` degrees of freedom -- the interval dual to the MTBF one (the
    observation here is *failure-terminated*: we stop at the k-th
    completed repair, not at a fixed clock time).
    """

    mode: str
    repairs: int
    repair_hours: float
    mttr: Optional[Duration]          # None when no repairs observed
    lower: Optional[Duration]         # None = no repairs observed
    upper: Optional[Duration]
    confidence: float

    def contains(self, true_mttr: Duration) -> bool:
        if self.mttr is None:
            return True                # no data contradicts nothing
        assert self.lower is not None and self.upper is not None
        return self.lower <= true_mttr <= self.upper


def estimate_mttr(mode: str, repairs: int, repair_hours: float,
                  confidence: float = 0.95) -> MttrEstimate:
    """MTTR point estimate + chi-square CI from count and total time."""
    if repairs < 0:
        raise EvaluationError("repair count cannot be negative")
    if repair_hours < 0:
        raise EvaluationError("total repair time cannot be negative")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError("confidence must be in (0, 1)")
    if repairs == 0:
        return MttrEstimate(mode, 0, repair_hours, None, None, None,
                            confidence)
    if repair_hours == 0:
        raise EvaluationError("observed repairs with zero total time")
    alpha = 1.0 - confidence
    # MTTR CI: [2T / chi2(1-a/2; 2k), 2T / chi2(a/2; 2k)]
    high = scipy.stats.chi2.ppf(1.0 - alpha / 2.0, 2 * repairs)
    low = scipy.stats.chi2.ppf(alpha / 2.0, 2 * repairs)
    point = Duration.hours(repair_hours / repairs)
    lower = Duration.hours(2.0 * repair_hours / high)
    upper = (Duration.hours(2.0 * repair_hours / low) if low > 0
             else Duration.hours(float("inf")))
    return MttrEstimate(mode, repairs, repair_hours, point, lower, upper,
                        confidence)


def estimates_from_simulation(model: TierAvailabilityModel,
                              result: SimulationResult,
                              confidence: float = 0.95) \
        -> Dict[str, MtbfEstimate]:
    """Per-mode MTBF estimates from a simulation's observed history.

    Exposure per mode: manned resource-hours, plus idle-spare hours for
    spare-susceptible modes -- mirroring which populations each mode's
    clock runs against in the simulator.
    """
    if result.mode_failures is None:
        raise EvaluationError("simulation result carries no per-mode "
                              "failure counts")
    estimates: Dict[str, MtbfEstimate] = {}
    for mode in model.modes:
        exposure = result.manned_hours
        if mode.spare_susceptible:
            exposure += result.idle_hours
        estimates[mode.name] = estimate_mtbf(
            mode.name, result.mode_failures.get(mode.name, 0), exposure,
            confidence)
    return estimates


def refine_modes(model: TierAvailabilityModel,
                 estimates: Mapping[str, MtbfEstimate],
                 min_failures: int = 10) -> TierAvailabilityModel:
    """A refined tier model with observed MTBFs substituted.

    Modes with fewer than ``min_failures`` observations keep their
    declared MTBF (the data cannot overrule the prior yet) -- the
    pragmatic version of the paper's model-refinement loop.
    """
    refined = []
    for mode in model.modes:
        estimate = estimates.get(mode.name)
        if estimate is None or estimate.mtbf is None \
                or estimate.failures < min_failures:
            refined.append(mode)
            continue
        refined.append(FailureModeEntry(
            mode.name, estimate.mtbf, mode.mttr, mode.failover_time,
            mode.spare_susceptible))
    return TierAvailabilityModel(model.name, n=model.n, m=model.m,
                                 s=model.s, modes=tuple(refined))
