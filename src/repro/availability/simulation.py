"""Discrete-event Monte-Carlo simulation of tier availability models.

The paper evaluates designs with an external availability engine; since
Avanto is proprietary, this simulator is our executable substitute and
the ground truth against which the Markov engine's failure-mode
decomposition is validated (they agree in the rare-failure regime; the
tests assert it).

Unlike the Markov engine, the simulator makes **no decomposition
approximation**: all failure modes compete simultaneously for the same
pool of spares and repair capacity.  It can also draw repair and
failover durations deterministically instead of exponentially
(``deterministic_repairs=True``) to probe sensitivity to the
exponential assumption the analytic engines make.

Semantics (matching :mod:`repro.availability.markov`):

* active resources fail per mode at rate ``1/MTBF_i``; idle spares fail
  only in modes whose component is kept active in the spare;
* a failover-mode failure sends the resource to repair and queues its
  slot for failover; the slot grabs an idle spare (FIFO) and is manned
  again after the mode's failover time;
* an in-place-mode failure repairs in ``MTTR_i`` and resumes its slot;
* repaired failover-mode/spare resources rejoin the idle spare pool;
* the tier is down while fewer than ``m`` slots are manned.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import EvaluationError
from ..units import HOURS_PER_YEAR
from .model import ModeResult, TierAvailabilityModel, TierResult

_FAIL_ACTIVE = 0
_FAIL_SPARE = 1
_REPAIR_DONE = 2
_FAILOVER_DONE = 3


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a tier simulation, with batch-means error bars."""

    tier: TierResult
    simulated_years: float
    downtime_hours: float
    failure_events: int
    failover_events: int
    #: Half-width of a ~95% confidence interval on unavailability,
    #: from batch means (0.0 when batches were disabled).
    ci_halfwidth: float
    #: Failure count per mode name (actives and spares combined).
    mode_failures: "dict[str, int]" = None
    #: Integrated manned-resource exposure (resource-hours at risk).
    manned_hours: float = 0.0
    #: Integrated idle-spare exposure (resource-hours).
    idle_hours: float = 0.0
    #: Per-batch unavailability samples (the distribution behind the
    #: mean; batches are contiguous, equal-length spans).
    batch_unavailabilities: Tuple[float, ...] = ()

    @property
    def unavailability(self) -> float:
        return self.tier.unavailability

    def downtime_percentile(self, percentile: float) -> float:
        """Downtime (minutes per batch-length-year-equivalent) at a
        percentile of the batch distribution.

        Interprets each batch as an observation of "a period's"
        downtime rate and rescales to minutes/year -- useful for "how
        bad is a bad year" questions the mean hides.
        """
        if not self.batch_unavailabilities:
            raise EvaluationError("no batch samples recorded")
        if not 0.0 <= percentile <= 100.0:
            raise EvaluationError("percentile must be in [0, 100]")
        import numpy
        from ..units import MINUTES_PER_YEAR
        value = float(numpy.percentile(self.batch_unavailabilities,
                                       percentile))
        return value * MINUTES_PER_YEAR


class TierSimulator:
    """Simulates one :class:`TierAvailabilityModel`."""

    def __init__(self, model: TierAvailabilityModel,
                 seed: Optional[int] = None,
                 deterministic_repairs: bool = False):
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.deterministic_repairs = deterministic_repairs
        self._mode_rates = np.array(
            [mode.failure_rate_per_hour for mode in model.modes])
        self._spare_rates = np.array(
            [mode.failure_rate_per_hour if mode.spare_susceptible else 0.0
             for mode in model.modes])
        self._mode_failures = {mode.name: 0 for mode in model.modes}
        self._manned_hours = 0.0
        self._idle_hours = 0.0

    # -- public API -----------------------------------------------------

    def run(self, years: float, batches: int = 10) -> SimulationResult:
        """Simulate ``years`` of operation (split into ``batches`` for
        confidence-interval estimation) and return aggregate results."""
        if years <= 0:
            raise EvaluationError("simulation horizon must be positive")
        if batches < 1:
            raise EvaluationError("need at least one batch")
        horizon_hours = years * HOURS_PER_YEAR
        batch_hours = horizon_hours / batches
        batch_unavailabilities: List[float] = []
        total_down = 0.0
        total_failures = 0
        total_failovers = 0
        state = _State(self.model)
        self._mode_failures = {mode.name: 0 for mode in self.model.modes}
        self._manned_hours = 0.0
        self._idle_hours = 0.0
        clock = 0.0
        for _ in range(batches):
            down, failures, failovers, state, clock = self._run_span(
                state, clock, clock + batch_hours)
            batch_unavailabilities.append(down / batch_hours)
            total_down += down
            total_failures += failures
            total_failovers += failovers

        unavailability = total_down / horizon_hours
        ci = self._ci_halfwidth(batch_unavailabilities)
        tier = TierResult(self.model.name, min(unavailability, 1.0),
                          self._mode_placeholder(total_failures, years))
        return SimulationResult(tier, years, total_down, total_failures,
                                total_failovers, ci,
                                mode_failures=dict(self._mode_failures),
                                manned_hours=self._manned_hours,
                                idle_hours=self._idle_hours,
                                batch_unavailabilities=tuple(
                                    batch_unavailabilities))

    # -- internals ----------------------------------------------------------

    def _mode_placeholder(self, failures: int,
                          years: float) -> Tuple[ModeResult, ...]:
        # The simulator reports tier-level results; per-mode splits are
        # available from the Markov engine.  A single aggregate entry
        # records the observed failure rate.
        return (ModeResult("all-modes", 0.0, failures / years, False),)

    @staticmethod
    def _ci_halfwidth(samples: List[float]) -> float:
        if len(samples) < 2:
            return 0.0
        mean = sum(samples) / len(samples)
        variance = (sum((value - mean) ** 2 for value in samples)
                    / (len(samples) - 1))
        return 1.96 * math.sqrt(variance / len(samples))

    def _sample(self, mean_hours: float) -> float:
        if mean_hours <= 0.0:
            return 0.0
        if self.deterministic_repairs:
            return mean_hours
        return float(self.rng.exponential(mean_hours))

    def _run_span(self, state: "_State", start: float, end: float):
        model = self.model
        rng = self.rng
        clock = start
        down_time = 0.0
        failures = 0
        failovers = 0
        active_total_rate = float(self._mode_rates.sum())
        spare_total_rate = float(self._spare_rates.sum())

        while True:
            # Aggregate exponential race between the next active failure
            # and the next spare failure (memoryless: resample each step).
            rate_active = state.manned * active_total_rate
            rate_spare = state.idle * spare_total_rate
            next_fail = math.inf
            fail_kind = None
            if rate_active > 0.0:
                next_fail = clock + rng.exponential(1.0 / rate_active)
                fail_kind = _FAIL_ACTIVE
            if rate_spare > 0.0:
                candidate = clock + rng.exponential(1.0 / rate_spare)
                if candidate < next_fail:
                    next_fail = candidate
                    fail_kind = _FAIL_SPARE

            next_event = state.peek_time()
            event_time = min(next_fail, next_event, end)

            elapsed = event_time - clock
            if state.manned < model.m:
                down_time += elapsed
            self._manned_hours += state.manned * elapsed
            self._idle_hours += state.idle * elapsed
            clock = event_time
            if clock >= end:
                break

            if event_time == next_event and next_event <= next_fail:
                kind, payload = state.pop()
                if kind == _REPAIR_DONE:
                    self._handle_repair(state, clock, payload)
                else:
                    state.finish_failover()
            else:
                failures += 1
                if fail_kind == _FAIL_ACTIVE:
                    started = self._handle_active_failure(state, clock)
                    failovers += started
                else:
                    self._handle_spare_failure(state, clock)
        return down_time, failures, failovers, state, clock

    def _pick_mode(self, rates: np.ndarray) -> int:
        total = rates.sum()
        return int(self.rng.choice(len(rates), p=rates / total))

    def _handle_active_failure(self, state: "_State", clock: float) -> int:
        model = self.model
        index = self._pick_mode(self._mode_rates)
        mode = model.modes[index]
        self._mode_failures[mode.name] += 1
        state.manned -= 1
        uses_failover = mode.uses_failover and model.s > 0
        if uses_failover:
            state.start_or_queue_repair(clock, mode.mttr.as_hours,
                                        "spare", self._sample)
            state.queue_failover(mode.failover_time.as_hours)
            return state.start_failovers(clock, self._sample)
        state.start_or_queue_repair(clock, mode.mttr.as_hours,
                                    "inplace", self._sample)
        return 0

    def _handle_spare_failure(self, state: "_State", clock: float) -> None:
        index = self._pick_mode(self._spare_rates)
        mode = self.model.modes[index]
        self._mode_failures[mode.name] += 1
        state.idle -= 1
        state.start_or_queue_repair(clock, mode.mttr.as_hours, "spare",
                                    self._sample)

    def _handle_repair(self, state: "_State", clock: float,
                       semantics: str) -> None:
        state.finish_repair(clock, self._sample)
        if semantics == "inplace":
            state.manned += 1
        else:
            state.idle += 1
            state.start_failovers(clock, self._sample)


class _State:
    """Mutable simulation state: counters plus the event heap."""

    def __init__(self, model: TierAvailabilityModel):
        self.manned = model.n          # manned active slots
        self.idle = model.s            # idle spares
        self.pending = deque()         # failover times (hours) per slot
        self.crew = (model.repair_crew if model.repair_crew is not None
                     else math.inf)
        self.crew_busy = 0
        self.repair_queue = deque()    # (mean repair hours, semantics)
        self._heap: List[Tuple[float, int, int, object]] = []
        self._sequence = 0

    def start_or_queue_repair(self, clock: float, mean_hours: float,
                              semantics: str, sample) -> None:
        """Begin a repair now if crew is free, else queue it (FIFO)."""
        if self.crew_busy < self.crew:
            self.crew_busy += 1
            self.push(clock + sample(mean_hours), _REPAIR_DONE,
                      semantics)
        else:
            self.repair_queue.append((mean_hours, semantics))

    def finish_repair(self, clock: float, sample) -> None:
        """Free one crew member and start the next queued repair."""
        self.crew_busy -= 1
        if self.repair_queue and self.crew_busy < self.crew:
            mean_hours, semantics = self.repair_queue.popleft()
            self.crew_busy += 1
            self.push(clock + sample(mean_hours), _REPAIR_DONE,
                      semantics)

    def push(self, time: float, kind: int, payload: object) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, kind, payload))

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else math.inf

    def pop(self) -> Tuple[int, object]:
        _, _, kind, payload = heapq.heappop(self._heap)
        return kind, payload

    def queue_failover(self, failover_hours: float) -> None:
        self.pending.append(failover_hours)

    def start_failovers(self, clock: float, sample) -> int:
        started = 0
        while self.pending and self.idle > 0:
            failover_hours = self.pending.popleft()
            self.idle -= 1
            self.push(clock + sample(failover_hours), _FAILOVER_DONE, None)
            started += 1
        return started

    def finish_failover(self) -> None:
        self.manned += 1


def simulate_tier(model: TierAvailabilityModel, years: float = 2000.0,
                  seed: Optional[int] = None, batches: int = 10,
                  deterministic_repairs: bool = False) -> SimulationResult:
    """Convenience wrapper: simulate one tier model."""
    simulator = TierSimulator(model, seed=seed,
                              deterministic_repairs=deterministic_repairs)
    return simulator.run(years, batches=batches)
