"""Search checkpointing: snapshot progress, resume after a crash.

A :class:`SearchCheckpoint` captures the expensive state of a design
search -- the availability cache (structure key -> unavailability),
completed per-tier Pareto frontiers, and search counters -- as JSON on
disk.  A search that dies mid-run (engine fault, kill, power cut)
resumes by reloading the file: every structure evaluated before the
crash becomes a cache hit, and tiers whose frontiers completed are
skipped outright, so the resumed search reaches the same minimum-cost
design as an uninterrupted run without re-paying for solves.

The file is written atomically (temp file + fsync + ``os.replace``)
every ``interval`` newly recorded evaluations and at every frontier
completion, so a crash never leaves a torn checkpoint.  Each save
holds a sidecar lock file (``<path>.lock``, pid-stamped) so two
writers can never interleave renames on the same path; a lock left
behind by a killed writer is detected (dead pid) and broken.  Both
disciplines live in :mod:`repro.fsio`, shared with the persistent
tier-evaluation store (:mod:`repro.cache`).

Autosaves are *best effort*: an unwritable disk (``ENOSPC``,
``EACCES``, a live competing writer) degrades the checkpoint -- the
failure is recorded as an ``AVD309`` diagnostic on :attr:`log` and the
search continues without persistence -- while an explicit
:meth:`save` still raises :class:`~repro.errors.CheckpointError`.

Wired in via ``TierSearch``/``JobSearch`` (``checkpoint=`` argument),
``Aved(checkpoint=...)``, and ``repro design --checkpoint PATH
[--resume]``.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..errors import AvedError, CheckpointError
from ..fsio import LockContention, acquire_lock, release_lock
from ..model import InfrastructureModel
from .events import CHECKPOINT_FAULT, DegradationLog

_VERSION = 1


def _acquire_lock(target: str) -> str:
    """Acquire the pid-stamped sidecar lock (see :mod:`repro.fsio`).

    A lock held by a *live* process raises :class:`CheckpointError`
    (single-writer assertion); stale locks are broken by the shared
    helper.
    """
    try:
        return acquire_lock(target)
    except LockContention as exc:
        raise CheckpointError("checkpoint %s" % exc) from exc.__cause__


_release_lock = release_lock


def _key_to_json(value: Any) -> Any:
    """Structure keys are nested tuples; JSON stores them as lists."""
    if isinstance(value, tuple):
        return [_key_to_json(item) for item in value]
    return value


def _key_from_json(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_key_from_json(item) for item in value)
    return value


class SearchCheckpoint:
    """Persistent snapshot of design-search progress.

    Create one with a ``path`` for a fresh checkpointed run, or load
    an existing file with :meth:`load` to resume.  Pass it to
    :class:`~repro.core.Aved` (or directly to a search); recording and
    reuse then happen automatically.
    """

    def __init__(self, path: Optional[str] = None, interval: int = 25):
        if interval < 1:
            raise CheckpointError("autosave interval must be >= 1")
        self.path = path
        self.interval = interval
        #: True when this checkpoint was loaded from disk.
        self.resumed = False
        #: Evaluations carried over from a previous run.
        self.resumed_evaluations = 0
        #: Degradations (failed autosaves) as AVD309-renderable events;
        #: drained into the run's report by ``Aved._degradation_report``.
        self.log = DegradationLog()
        #: Autosave attempts that failed with an OS-level error.
        self.save_failures = 0
        self._cache: Dict[tuple, float] = {}
        self._frontiers: Dict[str, Dict[str, Any]] = {}
        self._pending = 0
        #: After a failed autosave, wait until this many entries are
        #: pending before trying the disk again (backs off linearly).
        self._retry_at = 0

    # -- recording ------------------------------------------------------

    def record_evaluation(self, key: tuple, unavailability: float) \
            -> None:
        """Record one availability solve; autosaves periodically."""
        if key in self._cache:
            return
        self._cache[key] = unavailability
        self._pending += 1
        if self.path is not None and self._pending >= self.interval \
                and self._pending >= self._retry_at:
            self._autosave()

    def record_batch(self, pairs) -> None:
        """Record a merged prefetch batch, then save once.

        The parallel runtime evaluates candidates in batches; saving
        per batch (rather than per ``interval`` entries) means a crash
        mid-search loses at most the batch in flight, and a resumed
        run -- under *any* ``--jobs`` value -- replays every completed
        batch as cache hits.
        """
        recorded = 0
        for key, unavailability in pairs:
            if key in self._cache:
                continue
            self._cache[key] = unavailability
            recorded += 1
        if recorded:
            self._pending += recorded
            if self.path is not None:
                self._autosave()

    def store_frontier(self, tier: str, load: float,
                       frontier: List[Any]) -> None:
        """Record a completed tier frontier (and save immediately)."""
        from ..core.serialize import evaluated_tier_design_to_dict
        self._frontiers[tier] = {
            "load": load,
            "frontier": [evaluated_tier_design_to_dict(candidate)
                         for candidate in frontier],
        }
        self._pending += 1
        if self.path is not None:
            self._autosave()

    # -- reuse ----------------------------------------------------------

    def seed_cache(self, cache: Dict[tuple, float]) -> int:
        """Copy recorded evaluations into a search's availability cache.

        Returns how many entries were contributed.
        """
        before = len(cache)
        cache.update(self._cache)
        return len(cache) - before

    def frontier_for(self, tier: str, load: float,
                     infrastructure: InfrastructureModel) \
            -> Optional[List[Any]]:
        """A previously completed frontier for ``tier`` at ``load``.

        Returns None when the checkpoint has no frontier for this tier
        or it was computed at a different load (stale -- ignored).
        """
        from ..core.serialize import evaluated_tier_design_from_dict
        entry = self._frontiers.get(tier)
        if entry is None or entry["load"] != load:
            return None
        try:
            return [evaluated_tier_design_from_dict(item,
                                                    infrastructure)
                    for item in entry["frontier"]]
        except AvedError as exc:
            raise CheckpointError(
                "checkpoint frontier for tier %r does not fit this "
                "infrastructure model: %s" % (tier, exc)) from exc

    @property
    def evaluations(self) -> int:
        """Recorded availability evaluations (including carried-over)."""
        return len(self._cache)

    @property
    def completed_tiers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._frontiers))

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _VERSION,
            "availability_cache": [
                [_key_to_json(key), value]
                for key, value in self._cache.items()],
            "tier_frontiers": self._frontiers,
        }

    def save(self, path: Optional[str] = None) -> str:
        """Atomically write the checkpoint; returns the path used.

        The temp file is fsynced before the rename (a crash right
        after :meth:`save` returns can never resurrect a stale or
        torn file), and the rename happens under the sidecar lock so
        concurrent writers to the same path fail loudly instead of
        interleaving.
        """
        target = path or self.path
        if target is None:
            raise CheckpointError("checkpoint has no path to save to")
        directory = os.path.dirname(os.path.abspath(target))
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError("cannot save checkpoint to %r: %s"
                                  % (target, exc)) from exc
        lock_path = _acquire_lock(target)
        try:
            handle = tempfile.NamedTemporaryFile(
                "w", dir=directory, prefix=".checkpoint-",
                suffix=".tmp", delete=False)
            try:
                with handle:
                    json.dump(self.to_dict(), handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(handle.name, target)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise CheckpointError("cannot save checkpoint to %r: %s"
                                  % (target, exc)) from exc
        finally:
            _release_lock(lock_path)
        self._pending = 0
        self._retry_at = 0
        return target

    def _autosave(self) -> None:
        """Best-effort save: disk faults degrade instead of aborting.

        ``ENOSPC``, ``EACCES``, a vanished directory, or a live
        competing writer must not kill a search that can finish
        without persistence: the failure becomes an ``AVD309`` event
        on :attr:`log`, recorded progress is kept pending, and the
        next attempt waits for another ``interval`` of new entries.
        """
        try:
            self.save()
        except CheckpointError as exc:
            if not isinstance(exc.__cause__, OSError):
                raise
            self.save_failures += 1
            self._retry_at = self._pending + self.interval
            self.log.add(
                CHECKPOINT_FAULT,
                detail="checkpoint autosave to %r failed (%s); search "
                       "continues without persistence (failure %d, %d "
                       "entr%s unsaved)"
                % (self.path, exc.__cause__, self.save_failures,
                   self._pending,
                   "y" if self._pending == 1 else "ies"))

    def drain_log(self) -> DegradationLog:
        """Hand over (and reset) the accumulated AVD309 events."""
        drained = self.log
        self.log = DegradationLog()
        return drained

    def flush(self) -> None:
        """Save any unsaved progress, best effort (no-op without a path).

        Like the periodic autosaves, a flush on a broken disk records
        an ``AVD309`` diagnostic instead of raising -- ``Aved`` calls
        this from the ``finally`` of every design run, where an
        exception would mask the search's own result.
        """
        if self.path is not None and self._pending > 0:
            self._autosave()

    @classmethod
    def load(cls, path: str, interval: int = 25) -> "SearchCheckpoint":
        """Load a checkpoint file for a resumed run.

        The loaded object keeps ``path``, so the resumed search
        continues to autosave to the same file.
        """
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as exc:
            raise CheckpointError("cannot read checkpoint %r: %s"
                                  % (path, exc)) from exc
        except ValueError as exc:
            raise CheckpointError("checkpoint %r is not valid JSON: %s"
                                  % (path, exc)) from exc
        if not isinstance(data, dict) \
                or data.get("version") != _VERSION:
            raise CheckpointError(
                "checkpoint %r has unsupported version %r (expected %d)"
                % (path, data.get("version")
                   if isinstance(data, dict) else None, _VERSION))
        checkpoint = cls(path=path, interval=interval)
        try:
            for key, value in data.get("availability_cache", []):
                checkpoint._cache[_key_from_json(key)] = float(value)
            frontiers = data.get("tier_frontiers", {})
            if not isinstance(frontiers, dict):
                raise TypeError("tier_frontiers must be an object")
            checkpoint._frontiers = frontiers
        except (TypeError, ValueError) as exc:
            raise CheckpointError("checkpoint %r is malformed: %s"
                                  % (path, exc)) from exc
        checkpoint.resumed = True
        checkpoint.resumed_evaluations = len(checkpoint._cache)
        return checkpoint
