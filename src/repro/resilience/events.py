"""Degradation events and their rendering as AVD diagnostics.

Every decision the fault-tolerant runtime makes -- a retry, a
fallback, a breaker trip, a discarded garbage result -- is recorded as
a :class:`DegradationEvent` in a :class:`DegradationLog`.  The log
renders into the existing static-analysis machinery
(:class:`repro.lint.LintReport`) under the ``AVD3xx`` code family, so
degraded runs surface through the same text/JSON channels CI already
gates on, and in :meth:`repro.core.DesignOutcome.summary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..lint import Diagnostic, LintReport
from ..obs import current as _obs_current

#: Event kinds, with their diagnostic codes.
FALLBACK = "fallback"
RETRY = "retry"
BREAKER_OPEN = "breaker-open"
BREAKER_CLOSE = "breaker-close"
TIMEOUT = "timeout"
GARBAGE = "garbage-result"
DEADLINE = "deadline-exhausted"
RESUME = "checkpoint-resume"
CHECKPOINT_FAULT = "checkpoint-fault"
#: Supervised parallel runtime (:mod:`repro.parallel`) event kinds.
POOL_DEGRADED = "pool-degraded"
QUARANTINE = "quarantine"
WORKER_CRASH = "worker-crash"
TASK_TIMEOUT = "task-timeout"
POOL_RESTART = "pool-restart"
#: Tier-evaluation store (:mod:`repro.cache`) event kinds.
CACHE_CORRUPT = "cache-corrupt"
CACHE_WRITE_FAILED = "cache-write-failed"
CACHE_DISABLED = "cache-disabled"
CACHE_VERIFY_MISMATCH = "cache-verify-mismatch"
CACHE_STALE = "cache-stale"
#: Continuous redesign watcher (:mod:`repro.watch`) event kinds.
TELEMETRY_MALFORMED = "telemetry-malformed"
TELEMETRY_CONFLICT = "telemetry-conflict"
TELEMETRY_GAP = "telemetry-gap"
TELEMETRY_SKEW = "telemetry-skew"
DRIFT_DETECTED = "drift-detected"
WATCH_WARM_START = "watch-warm-start"
WATCH_COLD_SEARCH = "watch-cold-search"
WATCH_RESUMED = "watch-resumed"
WATCH_JOURNAL_FAULT = "watch-journal-fault"

BATCH_UNSUPPORTED = "batch-unsupported"
BATCH_GROUP_FALLBACK = "batch-group-fallback"
BATCH_MEMBER_DEGRADED = "batch-member-degraded"
#: Sharded requirement-space map builder (:mod:`repro.grid`) kinds.
GRID_SHARD_FAULT = "grid-shard-fault"
GRID_SHARD_ISOLATED = "grid-shard-isolated"
GRID_CELL_CONVICTED = "grid-cell-convicted"
GRID_RESUMED = "grid-resumed"
GRID_JOURNAL_FAULT = "grid-journal-fault"
GRID_LEASE_RECLAIMED = "grid-lease-reclaimed"
GRID_MAP_PARTIAL = "grid-map-partial"

EVENT_CODES: Dict[str, str] = {
    FALLBACK: "AVD301",
    BREAKER_OPEN: "AVD302",
    RETRY: "AVD303",
    TIMEOUT: "AVD304",
    GARBAGE: "AVD305",
    DEADLINE: "AVD306",
    BREAKER_CLOSE: "AVD307",
    RESUME: "AVD308",
    CHECKPOINT_FAULT: "AVD309",
    POOL_DEGRADED: "AVD401",
    QUARANTINE: "AVD402",
    WORKER_CRASH: "AVD403",
    TASK_TIMEOUT: "AVD404",
    POOL_RESTART: "AVD405",
    CACHE_CORRUPT: "AVD601",
    CACHE_WRITE_FAILED: "AVD602",
    CACHE_DISABLED: "AVD603",
    CACHE_VERIFY_MISMATCH: "AVD604",
    CACHE_STALE: "AVD605",
    TELEMETRY_MALFORMED: "AVD701",
    TELEMETRY_CONFLICT: "AVD702",
    TELEMETRY_GAP: "AVD703",
    TELEMETRY_SKEW: "AVD704",
    DRIFT_DETECTED: "AVD705",
    WATCH_WARM_START: "AVD706",
    WATCH_COLD_SEARCH: "AVD707",
    WATCH_RESUMED: "AVD708",
    WATCH_JOURNAL_FAULT: "AVD709",
    BATCH_UNSUPPORTED: "AVD801",
    BATCH_GROUP_FALLBACK: "AVD802",
    BATCH_MEMBER_DEGRADED: "AVD803",
    GRID_SHARD_FAULT: "AVD901",
    GRID_SHARD_ISOLATED: "AVD902",
    GRID_CELL_CONVICTED: "AVD903",
    GRID_RESUMED: "AVD904",
    GRID_JOURNAL_FAULT: "AVD905",
    GRID_LEASE_RECLAIMED: "AVD906",
    GRID_MAP_PARTIAL: "AVD907",
}


@dataclass(frozen=True)
class DegradationEvent:
    """One observed degradation of the evaluation runtime."""

    kind: str                   # one of the module-level kind constants
    engine: str = ""            # engine the event concerns
    tier: str = ""              # tier being evaluated, when known
    detail: str = ""            # human-readable cause/summary
    attempt: int = 0            # 1-based attempt number, when relevant

    def describe(self) -> str:
        parts: List[str] = [self.kind]
        if self.engine:
            parts.append("engine=%s" % self.engine)
        if self.tier:
            parts.append("tier=%s" % self.tier)
        if self.attempt:
            parts.append("attempt=%d" % self.attempt)
        text = " ".join(parts)
        if self.detail:
            text += ": %s" % self.detail
        return text

    def to_diagnostic(self) -> Diagnostic:
        code = EVENT_CODES.get(self.kind, "AVD301")
        context_parts: List[str] = []
        if self.tier:
            context_parts.append("tier %r" % self.tier)
        if self.engine:
            context_parts.append("engine %r" % self.engine)
        message = self.detail or self.kind
        if self.attempt:
            message += " (attempt %d)" % self.attempt
        return Diagnostic.new(code, message,
                              context=", ".join(context_parts))


class DegradationLog:
    """An ordered record of degradation events with report rendering."""

    def __init__(self) -> None:
        self.events: List[DegradationEvent] = []

    def add(self, kind: str, engine: str = "", tier: str = "",
            detail: str = "", attempt: int = 0) -> DegradationEvent:
        event = DegradationEvent(kind, engine, tier, detail, attempt)
        self.events.append(event)
        # Every degradation decision (retry, fallback, breaker trip,
        # crash, quarantine, ...) doubles as a metric: one counter per
        # event kind, plus a per-engine one when the engine is known.
        obs = _obs_current()
        if obs.enabled:
            obs.inc("degradation_events.%s" % kind)
            if engine:
                obs.inc("degradation_events.%s.%s" % (kind, engine))
        return event

    def extend(self, other: "DegradationLog") -> None:
        self.events.extend(other.events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DegradationEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[DegradationEvent]:
        return [event for event in self.events if event.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (only kinds that occurred)."""
        tally: Dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    def summary(self) -> str:
        if not self.events:
            return "no degradation"
        counts = self.counts()
        return ", ".join("%d %s" % (counts[kind], kind)
                         for kind in sorted(counts))

    def to_lint_report(self,
                       extra: Optional[Tuple[Diagnostic, ...]] = None) \
            -> LintReport:
        """Render the log as a :class:`repro.lint.LintReport`."""
        report = LintReport(event.to_diagnostic()
                            for event in self.events)
        if extra:
            report.extend(extra)
        return report
