"""The fault-tolerant availability engine (policy-driven degradation).

:class:`FallbackEngine` wraps a chain of
:class:`~repro.availability.AvailabilityEngine` instances, highest
fidelity first (default: markov -> analytic -> simulation), and
evaluates each tier through the first engine that produces a valid
result:

* *transient* faults (singular matrices, non-finite probabilities --
  anything in ``policy.transient_errors``) are retried on the same
  engine with seeded, jittered exponential backoff;
* other faults, timeouts, and garbage results (NaN/inf/out-of-range
  unavailability) trigger fallback to the next engine in the chain;
* a per-engine circuit breaker opens after ``breaker_threshold``
  consecutive faults, skipping that engine entirely for
  ``breaker_cooldown`` calls before a half-open probe;
* every :class:`~repro.availability.TierResult` carries an
  :class:`~repro.availability.EngineProvenance` naming the engine that
  produced it and why any fallback happened;
* everything the runtime does is recorded in a
  :class:`~repro.resilience.DegradationLog`, rendered on demand as a
  :class:`repro.lint.LintReport` (codes ``AVD301``-``AVD307``).

Time budgets are cooperative (a running solve is never preempted):
overruns are detected after the fact, the result is discarded, and the
overrun is treated as a fault.  ``clock``/``sleep`` are injectable so
the chaos tests can drive a virtual clock deterministically.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..availability import (AvailabilityEngine, AvailabilityResult,
                            EngineProvenance, TierAvailabilityModel,
                            TierResult, get_engine)
from ..availability.rbd import series_unavailability
from ..errors import EvaluationError
from ..lint import LintReport
from ..obs import current as _obs_current
from .events import (BREAKER_CLOSE, BREAKER_OPEN, DEADLINE, FALLBACK,
                     GARBAGE, RETRY, TIMEOUT, DegradationLog)
from .policy import FallbackPolicy, RetrySchedule

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-engine breaker: trip after repeated faults, probe to close.

    States follow the classic pattern: CLOSED (normal), OPEN (engine
    skipped; :meth:`allows` returns False for ``cooldown`` calls),
    HALF_OPEN (one probe call allowed; its outcome decides).
    """

    def __init__(self, threshold: int, cooldown: int):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_faults = 0
        self.skips_remaining = 0
        self.trips = 0

    def allows(self) -> bool:
        """May the next call use this engine?  Counts down OPEN skips."""
        if self.state == OPEN:
            if self.skips_remaining > 0:
                self.skips_remaining -= 1
                return False
            self.state = HALF_OPEN
        return True

    def record_success(self) -> bool:
        """Note a successful call; True when a probe closed the breaker."""
        probed = self.state == HALF_OPEN
        self.state = CLOSED
        self.consecutive_faults = 0
        return probed

    def record_fault(self) -> bool:
        """Note a faulted call; True when this fault opened the breaker."""
        self.consecutive_faults += 1
        if self.state == HALF_OPEN \
                or self.consecutive_faults >= self.threshold:
            already_open = self.state == OPEN
            self.state = OPEN
            self.skips_remaining = self.cooldown
            if not already_open:
                self.trips += 1
                return True
        return False


class _Fault:
    """Internal record of one failed attempt (for the error message)."""

    def __init__(self, engine: str, kind: str, detail: str):
        self.engine = engine
        self.kind = kind
        self.detail = detail

    def describe(self) -> str:
        return "%s: %s (%s)" % (self.engine, self.detail, self.kind)


class FallbackEngine(AvailabilityEngine):
    """Policy-driven degradation chain over availability engines.

    ``engines`` supplies ready-made engine instances (their ``name``
    attributes key the breakers and provenance); when omitted, the
    chain is built from ``policy.chain`` via
    :func:`~repro.availability.get_engine`, passing ``seed`` (and a
    reduced horizon) to the simulation engine so degraded runs stay
    reproducible and bounded.
    """

    name = "fallback"

    def __init__(self, engines: Optional[Sequence[AvailabilityEngine]]
                 = None,
                 policy: Optional[FallbackPolicy] = None,
                 seed: Optional[int] = 1,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.policy = policy if policy is not None else FallbackPolicy()
        if engines is None:
            engines = [self._build_engine(name, seed)
                       for name in self.policy.chain]
        if not engines:
            raise EvaluationError("fallback engine needs a non-empty "
                                  "engine chain")
        self.engines: List[AvailabilityEngine] = list(engines)
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._schedule = RetrySchedule(self.policy, rng=self._rng,
                                       sleep=sleep)
        self.log = DegradationLog()
        self.breakers: Dict[str, CircuitBreaker] = {
            engine.name: CircuitBreaker(self.policy.breaker_threshold,
                                        self.policy.breaker_cooldown)
            for engine in self.engines}
        self.calls = 0
        # Pre-built provenance for the common clean first-try case, so
        # the fault-free hot path allocates nothing per solve.
        self._clean_provenance: Dict[str, EngineProvenance] = {
            engine.name: EngineProvenance(engine=engine.name)
            for engine in self.engines}

    @staticmethod
    def _build_engine(name: str, seed: Optional[int]) \
            -> AvailabilityEngine:
        if name == "simulation":
            return get_engine("simulation", years=500,
                              seed=seed if seed is not None else 1)
        return get_engine(name)

    # ------------------------------------------------------------------

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        deadline = None
        if self.policy.deadline is not None:
            deadline = self._clock() + self.policy.deadline
        return self._evaluate_tier(model, deadline)

    def evaluate(self, models: Sequence[TierAvailabilityModel]) \
            -> AvailabilityResult:
        """Evaluate a design; the deadline budget spans all its tiers."""
        if not models:
            raise EvaluationError("design has no tier models")
        deadline = None
        if self.policy.deadline is not None:
            deadline = self._clock() + self.policy.deadline
        tier_results = tuple(self._evaluate_tier(model, deadline)
                             for model in models)
        unavailability = series_unavailability(
            result.unavailability for result in tier_results)
        return AvailabilityResult(tier_results, unavailability)

    # ------------------------------------------------------------------

    def _evaluate_tier(self, model: TierAvailabilityModel,
                       deadline: Optional[float]) -> TierResult:
        obs = _obs_current()
        if obs.enabled:
            with obs.span("fallback-solve", tier=model.name,
                          n=model.n, m=model.m, s=model.s):
                return self._evaluate_tier_inner(model, deadline)
        return self._evaluate_tier_inner(model, deadline)

    def _evaluate_tier_inner(self, model: TierAvailabilityModel,
                             deadline: Optional[float]) -> TierResult:
        self.calls += 1
        faults: List[_Fault] = []
        tried: List[str] = []

        for engine in self.engines:
            breaker = self.breakers[engine.name]
            if not breaker.allows():
                faults.append(_Fault(engine.name, "breaker",
                                     "skipped, circuit open"))
                tried.append(engine.name)
                continue
            result = self._try_engine(engine, breaker, model, deadline,
                                      faults)
            if result is not None:
                return self._with_provenance(result, engine.name,
                                             tuple(tried), faults)
            tried.append(engine.name)

        raise EvaluationError(
            "all availability engines failed for tier %r: %s"
            % (model.name,
               "; ".join(fault.describe() for fault in faults)))

    def _try_engine(self, engine: AvailabilityEngine,
                    breaker: CircuitBreaker,
                    model: TierAvailabilityModel,
                    deadline: Optional[float],
                    faults: List[_Fault]) -> Optional[TierResult]:
        """Run one engine with retries; None means fall through."""
        policy = self.policy
        attempt = 0
        while attempt <= policy.max_retries:
            attempt += 1
            if deadline is not None and self._clock() >= deadline:
                self.log.add(DEADLINE, engine=engine.name,
                             tier=model.name,
                             detail="deadline budget exhausted before "
                                    "attempt %d" % attempt)
                raise EvaluationError(
                    "evaluation deadline exhausted while evaluating "
                    "tier %r (tried: %s)"
                    % (model.name,
                       "; ".join(f.describe() for f in faults)
                       or "nothing yet"))
            started = (self._clock()
                       if policy.call_timeout is not None else 0.0)
            try:
                result = engine.evaluate_tier(model)
            except policy.transient_errors as exc:
                fault = _Fault(engine.name, "transient", str(exc))
                if not self._note_fault(engine, model, fault, faults,
                                        breaker):
                    return None
                if attempt > policy.max_retries:
                    return None
                self._backoff(attempt)
                continue
            except EvaluationError as exc:
                fault = _Fault(engine.name, "error", str(exc))
                self._note_fault(engine, model, fault, faults, breaker)
                return None
            except Exception as exc:  # a broken engine, not bad input
                fault = _Fault(engine.name, "unexpected",
                               "%s: %s" % (type(exc).__name__, exc))
                self._note_fault(engine, model, fault, faults, breaker)
                return None
            if policy.call_timeout is not None:
                elapsed = self._clock() - started
                if elapsed > policy.call_timeout:
                    fault = _Fault(engine.name, "timeout",
                                   "call took %.3fs (timeout %.3fs)"
                                   % (elapsed, policy.call_timeout))
                    self.log.add(TIMEOUT, engine=engine.name,
                                 tier=model.name, detail=fault.detail)
                    self._note_fault(engine, model, fault, faults,
                                     breaker)
                    return None
            garbage = self._garbage_reason(result)
            if garbage is not None:
                fault = _Fault(engine.name, "garbage", garbage)
                self.log.add(GARBAGE, engine=engine.name,
                             tier=model.name, detail=garbage,
                             attempt=attempt)
                if not self._note_fault(engine, model, fault, faults,
                                        breaker):
                    return None
                if attempt > policy.max_retries:
                    return None
                self._backoff(attempt)
                continue
            if breaker.record_success():
                self.log.add(BREAKER_CLOSE, engine=engine.name,
                             tier=model.name,
                             detail="half-open probe succeeded")
            if attempt > 1:
                self.log.add(RETRY, engine=engine.name, tier=model.name,
                             detail="transient fault recovered",
                             attempt=attempt)
            return result
        return None

    def _note_fault(self, engine: AvailabilityEngine,
                    model: TierAvailabilityModel, fault: _Fault,
                    faults: List[_Fault],
                    breaker: CircuitBreaker) -> bool:
        """Record a fault; False when it just opened the breaker."""
        faults.append(fault)
        if breaker.record_fault():
            self.log.add(BREAKER_OPEN, engine=engine.name,
                         tier=model.name,
                         detail="opened after %d consecutive fault(s); "
                                "last: %s"
                         % (breaker.consecutive_faults, fault.detail))
            return False
        return True

    def _backoff(self, attempt: int) -> None:
        self._schedule.pause(attempt)

    def _garbage_reason(self, result: TierResult) -> Optional[str]:
        if not self.policy.validate_results:
            return None
        value = result.unavailability
        if not isinstance(value, float) and not isinstance(value, int):
            return "unavailability has non-numeric type %s" \
                % type(value).__name__
        if value != value:  # NaN
            return "unavailability is NaN"
        if not -1e-12 <= value <= 1.0 + 1e-12:
            return "unavailability %r outside [0, 1]" % value
        return None

    def _with_provenance(self, result: TierResult, engine_name: str,
                         tried: Tuple[str, ...],
                         faults: List[_Fault]) -> TierResult:
        if not tried and not faults:
            # Clean first-try success: the pre-built record applies.
            provenance = self._clean_provenance[engine_name]
        else:
            cause = ""
            attempts = 1 + sum(1 for fault in faults
                               if fault.engine == engine_name)
            if tried:
                cause = "; ".join(fault.describe() for fault in faults
                                  if fault.engine in tried)
                self.log.add(FALLBACK, engine=engine_name,
                             tier=result.name,
                             detail="fell back from %s: %s"
                             % (" -> ".join(tried), cause or "unknown"))
            provenance = EngineProvenance(engine=engine_name,
                                          attempts=attempts,
                                          fallback_from=tried,
                                          cause=cause)
        # The wrapped engine built this result solely for us, so
        # annotate it in place rather than via dataclasses.replace():
        # replace() re-runs the full TierResult validator per solve
        # (measurable in the fault-free overhead budget) and rejects
        # the unvalidated results a validate_results=False policy
        # deliberately passes through.
        object.__setattr__(result, "provenance", provenance)
        return result

    # ------------------------------------------------------------------

    def degradation_report(self) -> LintReport:
        """The log so far as a lint report (codes AVD301-AVD307)."""
        return self.log.to_lint_report()

    def drain_log(self) -> DegradationLog:
        """Return the current log and start a fresh one."""
        log = self.log
        self.log = DegradationLog()
        return log

    def reset(self) -> None:
        """Clear the log and all breaker state (e.g. between searches)."""
        self.log.clear()
        self.calls = 0
        self.breakers = {
            engine.name: CircuitBreaker(self.policy.breaker_threshold,
                                        self.policy.breaker_cooldown)
            for engine in self.engines}
