"""Deterministic fault injection for availability engines.

:class:`ChaosEngine` wraps any
:class:`~repro.availability.AvailabilityEngine` and injects faults by
a seeded schedule (:class:`FaultPlan`): exceptions, artificial delays,
and NaN/garbage results.  The same seed always yields the same
injection pattern, so chaos tests are reproducible -- the suite uses
it to *prove* that :class:`~repro.resilience.FallbackEngine` degrades
gracefully end-to-end through ``Aved.design()``.

Garbage injection deliberately bypasses the
:class:`~repro.availability.TierResult` validator (which would refuse
to construct a NaN result) -- the point is to simulate an engine whose
*output* is broken, which is exactly what the fallback runtime's
result validation must catch.

:class:`VirtualClock` pairs with the injectable ``clock``/``sleep``
hooks of :class:`FallbackEngine` so delay injection and timeout
detection can be tested without real sleeping.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from ..availability import (AvailabilityEngine, TierAvailabilityModel,
                            TierResult)
from ..errors import NumericalError, SearchError


class VirtualClock:
    """A manually advanced monotonic clock for deterministic tests."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds

    #: Alias so a VirtualClock can stand in for ``time.sleep``.
    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def __call__(self) -> float:
        return self.now()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected faults.

    Rates are independent per-call probabilities, drawn in a fixed
    order (error, delay, nan, garbage) from ``random.Random(seed)`` so
    a plan replays identically.  ``fail_calls`` forces specific
    (1-based) call numbers to raise regardless of rates;
    ``fail_after`` makes every call past the N-th raise -- that is the
    crash switch the checkpoint-resume tests flip.
    """

    seed: int = 0
    error_rate: float = 0.0
    error_type: Type[Exception] = NumericalError
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    nan_rate: float = 0.0
    garbage_rate: float = 0.0
    garbage_value: float = 2.0
    fail_calls: Tuple[int, ...] = ()
    fail_after: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("error_rate", "delay_rate", "nan_rate",
                     "garbage_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SearchError("%s must be in [0, 1], got %r"
                                  % (name, value))
        if self.delay_seconds < 0:
            raise SearchError("delay_seconds cannot be negative")
        if self.fail_after is not None and self.fail_after < 0:
            raise SearchError("fail_after cannot be negative")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A seeded schedule of *process-level* faults for pool workers.

    Where :class:`FaultPlan` injects faults an engine could plausibly
    raise (exceptions, garbage numbers), this plan injects the faults
    only a supervisor can survive: the worker process dies outright
    (``os._exit``) or hangs past its wall-clock timeout.  The
    supervised executor (:mod:`repro.parallel`) installs the plan in
    every worker; :meth:`decide` is a pure function of
    ``(seed, task_id, submission)``, so a schedule replays identically
    regardless of which worker picks the task up.

    ``fault_rate`` is the per-submission probability of a fault;
    ``hang_fraction`` of the injected faults hang (the rest crash).
    ``max_faults_per_task`` bounds how many submissions of one task
    may fault (default 1: a task crashes at most once, so bounded
    retry always recovers it); ``poison_tasks`` lists task ids that
    fault on *every* submission -- those are what the quarantine
    exists for.
    """

    seed: int = 0
    fault_rate: float = 0.0
    hang_fraction: float = 0.0
    hang_seconds: float = 30.0
    max_faults_per_task: Optional[int] = 1
    poison_tasks: Tuple[int, ...] = ()
    poison_mode: str = "crash"          # "crash" | "hang"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise SearchError("fault_rate must be in [0, 1], got %r"
                              % (self.fault_rate,))
        if not 0.0 <= self.hang_fraction <= 1.0:
            raise SearchError("hang_fraction must be in [0, 1], got %r"
                              % (self.hang_fraction,))
        if self.hang_seconds < 0:
            raise SearchError("hang_seconds cannot be negative")
        if self.max_faults_per_task is not None \
                and self.max_faults_per_task < 0:
            raise SearchError("max_faults_per_task cannot be negative")
        if self.poison_mode not in ("crash", "hang"):
            raise SearchError("poison_mode must be crash|hang, got %r"
                              % (self.poison_mode,))

    def decide(self, task_id: int, submission: int) -> Optional[str]:
        """The fault for this (task, submission), if any.

        Returns ``"crash"``, ``"hang"``, or None.  ``submission`` is
        1-based and counts every time the task is handed to a worker.
        """
        if task_id in self.poison_tasks:
            return self.poison_mode
        if self.max_faults_per_task is not None \
                and submission > self.max_faults_per_task:
            return None
        # hash() of an int tuple is stable within a process tree and
        # independent of which worker draws it.
        rng = random.Random(hash((self.seed, task_id, submission)))
        if rng.random() >= self.fault_rate:
            return None
        return "hang" if rng.random() < self.hang_fraction else "crash"


def broken_tier_result(name: str, unavailability: float) -> TierResult:
    """A TierResult carrying an invalid value (validator bypassed).

    Only the chaos harness should use this: it simulates a buggy
    engine whose output would never pass the model's own checks.
    """
    result = TierResult.__new__(TierResult)
    object.__setattr__(result, "name", name)
    object.__setattr__(result, "unavailability", unavailability)
    object.__setattr__(result, "mode_results", ())
    object.__setattr__(result, "provenance", None)
    return result


class ChaosEngine(AvailabilityEngine):
    """An availability engine with scheduled faults injected.

    Wraps ``inner`` and, per :meth:`evaluate_tier` call, consults the
    :class:`FaultPlan`.  ``clock`` (a :class:`VirtualClock`) makes
    delay injection advance virtual time; without one, delays really
    sleep.  ``injected`` tallies what was injected, keyed by kind.
    """

    name = "chaos"

    def __init__(self, inner: AvailabilityEngine,
                 plan: Optional[FaultPlan] = None,
                 clock: Optional[VirtualClock] = None):
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.clock = clock
        self._rng = random.Random(self.plan.seed)
        self.calls = 0
        self.injected: Dict[str, int] = {}
        # Mirror the wrapped engine's registry name so breakers and
        # provenance records blame the real engine, not "chaos".
        self.name = inner.name

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        self.calls += 1
        plan = self.plan
        if plan.fail_after is not None and self.calls > plan.fail_after:
            self._count("fail-after")
            raise plan.error_type(
                "injected fault: call %d is past fail_after=%d"
                % (self.calls, plan.fail_after))
        if self.calls in plan.fail_calls:
            self._count("fail-call")
            raise plan.error_type("injected fault at call %d"
                                  % self.calls)
        # Fixed draw order keeps schedules stable as rates change.
        draw_error = self._rng.random()
        draw_delay = self._rng.random()
        draw_nan = self._rng.random()
        draw_garbage = self._rng.random()
        if draw_error < plan.error_rate:
            self._count("error")
            raise plan.error_type("injected fault at call %d (seed %d)"
                                  % (self.calls, plan.seed))
        if draw_delay < plan.delay_rate and plan.delay_seconds > 0:
            self._count("delay")
            if self.clock is not None:
                self.clock.advance(plan.delay_seconds)
            else:
                time.sleep(plan.delay_seconds)
        if draw_nan < plan.nan_rate:
            self._count("nan")
            return broken_tier_result(model.name, float("nan"))
        if draw_garbage < plan.garbage_rate:
            self._count("garbage")
            return broken_tier_result(model.name, plan.garbage_value)
        return self.inner.evaluate_tier(model)
