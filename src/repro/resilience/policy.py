"""The fallback policy: how hard to try before degrading.

A :class:`FallbackPolicy` is a pure-data description of the
degradation behavior of :class:`~repro.resilience.FallbackEngine`:
the engine chain (highest fidelity first), how transient faults are
retried (bounded, with jittered exponential backoff), when an engine's
circuit breaker trips and how long it stays open, and the cooperative
time budgets (per call and per whole-design evaluation).

Timeouts here are *cooperative*: the runtime cannot preempt a numpy
solve mid-flight, so a call that overruns ``call_timeout`` completes,
its result is discarded, and the overrun is treated as a fault (it
counts toward the breaker and triggers fallback).  The deadline is
checked before each new attempt starts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from ..errors import NumericalError, SearchError

#: The default degradation chain, highest fidelity first (the paper's
#: Markov engine, then the closed-form approximation, then simulation).
DEFAULT_CHAIN: Tuple[str, ...] = ("markov", "analytic", "simulation")


@dataclass(frozen=True)
class FallbackPolicy:
    """Knobs for the fault-tolerant evaluation runtime.

    ``chain`` names the engines in degradation order (used only when
    the runtime builds its own engines).  ``max_retries`` bounds how
    often a *transient* fault (see ``transient_errors``) is retried on
    the same engine before falling back; each retry sleeps
    ``backoff_base * backoff_factor**attempt`` seconds, scaled by a
    seeded uniform jitter of ``+-backoff_jitter`` (fractional).

    ``breaker_threshold`` consecutive faults open an engine's circuit
    breaker; while open, the engine is skipped for
    ``breaker_cooldown`` calls, then a single half-open probe decides
    whether it closes again.

    ``call_timeout``/``deadline`` are the cooperative time budgets in
    seconds (None disables them): per ``evaluate_tier`` call and per
    whole-design ``evaluate``.  ``validate_results`` rejects NaN/inf
    or out-of-range unavailabilities as faults (on by default -- this
    is what catches a garbage-producing engine).
    """

    chain: Tuple[str, ...] = DEFAULT_CHAIN
    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    call_timeout: Optional[float] = None
    deadline: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown: int = 8
    validate_results: bool = True
    transient_errors: Tuple[Type[BaseException], ...] = (
        NumericalError, FloatingPointError)

    def __post_init__(self) -> None:
        if not self.chain:
            raise SearchError("fallback policy needs at least one engine")
        if len(set(self.chain)) != len(self.chain):
            raise SearchError("fallback chain has duplicate engines: %r"
                              % (self.chain,))
        if self.max_retries < 0:
            raise SearchError("max_retries cannot be negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise SearchError("backoff must have base >= 0 and "
                              "factor >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise SearchError("backoff_jitter must be in [0, 1]")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise SearchError("call_timeout must be positive or None")
        if self.deadline is not None and self.deadline <= 0:
            raise SearchError("deadline must be positive or None")
        if self.breaker_threshold < 1:
            raise SearchError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 1:
            raise SearchError("breaker_cooldown must be >= 1")

    def with_budget(self, remaining: Optional[float]) \
            -> "FallbackPolicy":
        """A copy whose time budgets are clamped to ``remaining`` seconds.

        This is how a *request-level* deadline (e.g. one carried by a
        ``repro serve`` job) propagates into the evaluation runtime:
        the whole-design ``deadline`` becomes the smaller of the
        existing budget and what the request has left, and a
        ``call_timeout`` larger than the remaining budget is pulled
        down to it.  ``remaining=None`` (no request deadline) returns
        ``self`` unchanged; a non-positive remainder raises, because
        the caller should have failed the request before evaluating.
        """
        if remaining is None:
            return self
        if remaining <= 0:
            raise SearchError("deadline budget already exhausted "
                              "(%.3fs remaining)" % remaining)
        import dataclasses
        deadline = (remaining if self.deadline is None
                    else min(self.deadline, remaining))
        call_timeout = self.call_timeout
        if call_timeout is not None and call_timeout > remaining:
            call_timeout = remaining
        return dataclasses.replace(self, deadline=deadline,
                                   call_timeout=call_timeout)

    def backoff_delay(self, attempt: int, unit_jitter: float) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds.

        ``unit_jitter`` is a uniform draw in [0, 1) supplied by the
        caller's seeded RNG, so schedules are reproducible.
        """
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        scale = 1.0 + self.backoff_jitter * (2.0 * unit_jitter - 1.0)
        return max(base * scale, 0.0)


#: Backoff schedule shared with the supervised parallel runtime
#: (:mod:`repro.parallel`): task retries and pool restarts reuse the
#: same jittered-exponential :meth:`FallbackPolicy.backoff_delay`
#: machinery as engine retries, just with a slightly larger base
#: (restarting a worker pool is costlier than re-running a solve).
POOL_BACKOFF = FallbackPolicy(backoff_base=0.05, backoff_factor=2.0,
                              backoff_jitter=0.5)


class RetrySchedule:
    """The one jittered-backoff pauser every retry loop shares.

    Before this class, the ``delay = policy.backoff_delay(attempt,
    rng.random()); sleep(delay)`` idiom was copy-pasted across the
    engine fallback loop, the supervised executor's task retries (two
    sites), and the pool supervisor's restarts -- each with its own
    seeded RNG and injectable sleep.  A schedule owns that whole
    triple: the policy supplying the curve, the RNG supplying the
    jitter draw, and the sleep it is applied through, so new retry
    loops (the grid's shard-lease reassignment) reuse it instead of
    adding another copy.

    Exactly one jitter draw is consumed per :meth:`pause`/:meth:`delay`
    call -- byte-compatible with the idiom it replaces, so seeded runs
    reproduce the same schedules as before the consolidation.

    ``max_attempt`` optionally caps the exponent (the supervisor caps
    restart backoff at attempt 8 so a long fault storm cannot grow the
    delay without bound); ``rng`` shares a caller's existing RNG,
    ``seed`` builds a private one.
    """

    def __init__(self, policy: FallbackPolicy,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 max_attempt: Optional[int] = None):
        if rng is not None and seed is not None:
            raise SearchError("pass seed or rng, not both")
        if max_attempt is not None and max_attempt < 1:
            raise SearchError("max_attempt must be >= 1 or None")
        self.policy = policy
        self._rng = rng if rng is not None \
            else random.Random(1 if seed is None else seed)
        self._sleep = sleep
        self.max_attempt = max_attempt
        #: Pauses taken and total seconds requested (tests/telemetry).
        self.pauses = 0
        self.slept = 0.0

    def delay(self, attempt: int) -> float:
        """The next jittered delay for ``attempt`` (1-based), seconds.

        Consumes one draw from the schedule's RNG; does not sleep.
        """
        if self.max_attempt is not None:
            attempt = min(attempt, self.max_attempt)
        return self.policy.backoff_delay(attempt, self._rng.random())

    def pause(self, attempt: int) -> float:
        """Sleep the jittered delay for ``attempt``; returns it."""
        delay = self.delay(attempt)
        if delay > 0:
            self._sleep(delay)
        self.pauses += 1
        self.slept += delay
        return delay
