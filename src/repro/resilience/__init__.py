"""Fault-tolerant evaluation runtime: fallback, chaos, checkpointing.

The design search evaluates thousands of candidate structures through
numerical availability engines; this package keeps that pipeline
dependable:

* :class:`FallbackEngine` -- a policy-driven degradation chain over
  engines (markov -> analytic -> simulation by default) with bounded
  jittered retry, per-engine circuit breakers, cooperative time
  budgets, and :class:`~repro.availability.EngineProvenance` on every
  result;
* :class:`ChaosEngine` / :class:`FaultPlan` -- deterministic fault
  injection (exceptions, delays, NaN/garbage results) used by the
  chaos test suite to prove graceful degradation end-to-end;
* :class:`SearchCheckpoint` -- periodic snapshots of search progress
  so an interrupted run resumes instead of restarting
  (``repro design --checkpoint PATH --resume``);
* :class:`DegradationLog` -- every fallback/trip/retry surfaces as an
  ``AVD3xx`` diagnostic through :mod:`repro.lint` and in
  :meth:`repro.core.DesignOutcome.summary`.

Importing the package registers ``FallbackEngine`` under the engine
registry name ``"fallback"`` (``get_engine("fallback")``).
"""

from ..availability import register_engine
from .chaos import (ChaosEngine, FaultPlan, VirtualClock, WorkerFaultPlan,
                    broken_tier_result)
from .checkpoint import SearchCheckpoint
from .events import DegradationEvent, DegradationLog
from .fallback import CircuitBreaker, FallbackEngine
from .policy import (DEFAULT_CHAIN, POOL_BACKOFF, FallbackPolicy,
                     RetrySchedule)

register_engine(FallbackEngine)

__all__ = [
    "FallbackEngine", "FallbackPolicy", "DEFAULT_CHAIN", "POOL_BACKOFF",
    "RetrySchedule",
    "CircuitBreaker",
    "ChaosEngine", "FaultPlan", "VirtualClock", "WorkerFaultPlan",
    "broken_tier_result",
    "SearchCheckpoint",
    "DegradationEvent", "DegradationLog",
]
