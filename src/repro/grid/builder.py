"""The sharded, fault-first requirement-space map builder.

:class:`GridBuilder` computes a :class:`~repro.core.RequirementSpaceMap`
the way ``build_requirement_map`` does -- one Pareto frontier per load
-- but partitioned into shards executed under per-shard leases, with
the same supervision ladder the parallel runtime applies to candidates
(:mod:`repro.parallel`), lifted one level up to grid shards:

* **suspicion**: a shard attempt that crashes or overruns its lease is
  a fault (``AVD901``); the lease is reassigned to a fresh attempt
  after a jittered backoff (:class:`~repro.resilience.RetrySchedule`).
* **isolation**: a shard that keeps faulting past its retry budget is
  isolated (``AVD902``): its cells are re-run one at a time, so blame
  lands on a cell instead of the whole shard.
* **conviction**: a cell that *alone* exhausts its own retries is
  convicted as poison (``AVD903``) and excluded from the map; its
  shard-mates' results are kept.  A transient storm can therefore
  never convict a healthy cell -- convictions require a cell to fail
  repeatedly in isolation.

Shard completion is journaled durably (:class:`~repro.grid.GridJournal`);
a killed build resumes with every finished shard's points reused
exactly once (``AVD904``), abandoned leases reclaimed (``AVD906``),
and journaled convictions honored.  Within a shard one
:class:`~repro.core.TierSearch` is reused across the shard's loads, so
adjacent cells warm-start from the searcher's availability cache the
same way ``build_requirement_map`` warms across its sweep; attach a
persistent tier-evaluation store (:mod:`repro.cache`) to the
evaluator's engine to extend that warmth across shards, restarts, and
independent builds.

The whole point is the convergence guarantee the chaos suite enforces:
any partition, any shard order, any seeded storm of crashes / hangs /
torn journal tails / kills produces a map whose canonical JSON
(:func:`repro.core.serialize.requirement_map_to_json`) is
byte-identical to the fault-free single-process build's.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.evaluation import DesignEvaluator
from ..core.families import family_of
from ..core.frontier import FrontierPoint, RequirementSpaceMap
from ..core.search import SearchLimits, TierSearch
from ..core.serialize import (MAP_FORMAT_VERSION,
                              frontier_point_from_dict,
                              frontier_point_to_dict)
from ..errors import AvedError, GridError
from ..fsio import pid_alive
from ..resilience.events import (GRID_CELL_CONVICTED,
                                 GRID_LEASE_RECLAIMED, GRID_RESUMED,
                                 GRID_SHARD_FAULT, GRID_SHARD_ISOLATED,
                                 DegradationLog)
from ..resilience.policy import (POOL_BACKOFF, FallbackPolicy,
                                 RetrySchedule)
from .faults import GridBuildInterrupted, GridFaultPlan, InjectedFault
from .journal import GridJournal, lease_abandoned, loads_key
from .spec import GridShard, GridSpec


@dataclass(frozen=True)
class GridPolicy:
    """Supervision knobs for one grid build.

    ``lease_seconds`` is the wall-clock budget of one shard attempt --
    cooperative, like every timeout in this codebase: overruns are
    detected between cells and after the fact, never by preemption.
    ``shard_retries`` whole-shard faults are retried before the shard
    is isolated; in isolation, each cell gets ``cell_retries`` retries
    before conviction.  ``backoff`` supplies the shared
    jittered-exponential curve (:data:`~repro.resilience.POOL_BACKOFF`
    by default -- the same schedule pool restarts use).
    """

    lease_seconds: float = 300.0
    shard_retries: int = 2
    cell_retries: int = 2
    backoff: FallbackPolicy = POOL_BACKOFF
    seed: int = 1

    def __post_init__(self) -> None:
        if self.lease_seconds <= 0:
            raise GridError("lease_seconds must be positive")
        if self.shard_retries < 0:
            raise GridError("shard_retries cannot be negative")
        if self.cell_retries < 0:
            raise GridError("cell_retries cannot be negative")


class GridBuilder:
    """Builds one requirement-space map, shard by shard, under faults."""

    def __init__(self, evaluator: DesignEvaluator, spec: GridSpec,
                 limits: Optional[SearchLimits] = None,
                 journal_path: Optional[str] = None,
                 policy: Optional[GridPolicy] = None,
                 fault_plan: Optional[GridFaultPlan] = None,
                 log: Optional[DegradationLog] = None,
                 clock: Callable[[], float] = time.time,
                 sleep: Callable[[float], None] = time.sleep):
        self.evaluator = evaluator
        self.spec = spec
        self.limits = limits
        self.policy = policy if policy is not None else GridPolicy()
        self.fault_plan = fault_plan
        self.log = log if log is not None else DegradationLog()
        self.clock = clock
        self.journal = (GridJournal(journal_path, spec.key(), self.log)
                        if journal_path else None)
        self._schedule = RetrySchedule(self.policy.backoff,
                                       seed=self.policy.seed,
                                       sleep=sleep)
        #: Convicted cells: load -> reason (journaled + this run's).
        self.convicted: Dict[float, str] = {}
        self._abandoned: Dict[str, Dict[str, Any]] = {}
        self.counters: Dict[str, int] = {
            "shards_total": 0, "shards_done": 0, "shards_reused": 0,
            "shard_faults": 0, "shards_isolated": 0,
            "leases_reclaimed": 0,
        }
        self.resumed = False

    # -- the build -----------------------------------------------------

    def build(self) -> RequirementSpaceMap:
        """Compute (or resume) the map; convictions excluded honestly.

        Raises :class:`GridBuildInterrupted` when a fault plan kills
        the build mid-way -- call :meth:`build` again to resume from
        the journal, exactly as an operator restarting the process
        would.
        """
        shards = self.spec.shards()
        self.counters["shards_total"] = len(shards)
        done = self._replay()
        points: List[FrontierPoint] = []
        for shard in shards:
            key = loads_key(shard.loads)
            reused = done.get(key)
            if reused is not None:
                points.extend(reused)
                self.counters["shards_reused"] += 1
                self.counters["shards_done"] += 1
                continue
            points.extend(self._build_shard(shard))
            self.counters["shards_done"] += 1
            if self.fault_plan is not None \
                    and self.fault_plan.shard_completed():
                raise GridBuildInterrupted(
                    "injected kill after %d shard(s)"
                    % self.counters["shards_done"])
        return RequirementSpaceMap(self.spec.tier, self.spec.loads,
                                   tuple(points))

    def _replay(self) -> Dict[str, List[FrontierPoint]]:
        """Journal replay: reusable shard points + lease bookkeeping."""
        if self.journal is None:
            return {}
        state = GridJournal.replay(self.journal.path,
                                   self.journal.grid_key)
        self.convicted.update(state.convicted)
        self._abandoned = state.abandoned
        done: Dict[str, List[FrontierPoint]] = {}
        infrastructure = self.evaluator.infrastructure
        wanted = {loads_key(shard.loads)
                  for shard in self.spec.shards()}
        for key, payload in state.done.items():
            if key not in wanted:
                continue   # re-sharded since; rebuild what moved
            try:
                done[key] = [frontier_point_from_dict(item,
                                                      infrastructure)
                             for item in payload]
            except AvedError:
                # A journaled shard that no longer deserializes is
                # treated as unbuilt, never trusted blindly.
                continue
        if done or state.convicted:
            self.resumed = True
            self.log.add(GRID_RESUMED, tier=self.spec.tier,
                         detail="journal replayed: %d finished "
                                "shard(s) reused, %d conviction(s) "
                                "honored, %d torn/corrupt line(s) "
                                "skipped"
                         % (len(done), len(state.convicted),
                            state.skipped))
        return done

    # -- one shard through the ladder ----------------------------------

    def _build_shard(self, shard: GridShard) -> List[FrontierPoint]:
        attempt = self._first_attempt(shard)
        faults = 0
        while True:
            self._lease(shard, attempt)
            started = self.clock()
            try:
                points = self._run_shard_once(shard, attempt, started)
            except GridBuildInterrupted:
                raise
            except Exception as exc:   # noqa: BLE001 - ladder input
                faults += 1
                self.counters["shard_faults"] += 1
                self.log.add(GRID_SHARD_FAULT, tier=shard.tier,
                             detail="%s: %s; lease reassigned"
                             % (type(exc).__name__, exc),
                             attempt=attempt)
                if faults > self.policy.shard_retries:
                    return self._isolate(shard, attempt)
                self._schedule.pause(faults)
                attempt += 1
                continue
            self._finish(shard, points)
            return points

    def _first_attempt(self, shard: GridShard) -> int:
        """Resume attempt numbering past an abandoned journaled lease.

        Keeping the attempt counter monotonic across restarts is what
        lets a deterministic fault plan's storm die out instead of
        replaying the same fault forever.
        """
        record = self._abandoned.get(loads_key(shard.loads))
        if record is None:
            return 1
        abandoned, why = lease_abandoned(record, self.clock(),
                                         pid_alive)
        if not abandoned:
            raise GridError("%s is still leased: %s"
                            % (shard.describe(), why))
        self.counters["leases_reclaimed"] += 1
        self.log.add(GRID_LEASE_RECLAIMED, tier=shard.tier,
                     detail="%s: %s" % (shard.describe(), why))
        try:
            return int(record.get("attempt", 0)) + 1
        except (TypeError, ValueError):
            return 1

    def _lease(self, shard: GridShard, attempt: int) -> None:
        if self.journal is not None:
            self.journal.shard_start(shard.shard_id, shard.loads,
                                     attempt, os.getpid(),
                                     self.policy.lease_seconds,
                                     self.clock())

    def _finish(self, shard: GridShard,
                points: List[FrontierPoint]) -> None:
        if self.journal is not None:
            self.journal.shard_done(
                shard.shard_id, shard.loads,
                [frontier_point_to_dict(point) for point in points])

    def _run_shard_once(self, shard: GridShard, attempt: int,
                        started: float) -> List[FrontierPoint]:
        """All of a shard's cells under one lease and one TierSearch."""
        if self.fault_plan is not None:
            kind = self.fault_plan.shard_fault(shard.shard_id, attempt)
            if kind == "crash":
                raise InjectedFault("crash", "injected worker crash in "
                                    + shard.describe())
            if kind == "hang":
                raise InjectedFault("hang", "%s hung past its %.0fs "
                                    "lease" % (shard.describe(),
                                               self.policy
                                               .lease_seconds))
            if kind == "torn-kill":
                if self.journal is not None:
                    self.journal.tear_tail()
                raise GridBuildInterrupted(
                    "injected kill mid-append in " + shard.describe())
        search = TierSearch(self.evaluator, self.limits)
        points: List[FrontierPoint] = []
        for load in shard.loads:
            if load in self.convicted:
                continue
            points.extend(self._build_cell(search, shard, load))
            elapsed = self.clock() - started
            if elapsed > self.policy.lease_seconds:
                raise InjectedFault(
                    "hang", "%s overran its %.0fs lease (%.1fs "
                    "elapsed)" % (shard.describe(),
                                  self.policy.lease_seconds, elapsed))
        return points

    def _build_cell(self, search: TierSearch, shard: GridShard,
                    load: float) -> List[FrontierPoint]:
        """One grid cell: the load's Pareto frontier, as map points."""
        if self.fault_plan is not None:
            reason = self.fault_plan.cell_fault(load)
            if reason is not None:
                raise InjectedFault("crash", reason)
        frontier = search.tier_frontier(shard.tier, load)
        option_for = self.evaluator.service.tier(shard.tier).option_for
        points = []
        for candidate in frontier:
            n_min = option_for(candidate.design.resource) \
                .min_active_for(load)
            points.append(FrontierPoint(
                load=load, n_min=n_min,
                family=family_of(candidate.design, n_min),
                downtime_minutes=candidate.downtime_minutes,
                annual_cost=candidate.annual_cost,
                design=candidate))
        return points

    def _isolate(self, shard: GridShard,
                 attempt: int) -> List[FrontierPoint]:
        """The isolation rung: cells re-run one at a time.

        Only a cell that keeps failing *alone* is convicted; its
        shard-mates' results survive the shard's bad reputation.
        """
        self.counters["shards_isolated"] += 1
        self.log.add(GRID_SHARD_ISOLATED, tier=shard.tier,
                     detail="%s exhausted %d shard retries; re-running "
                            "its %d cell(s) individually"
                     % (shard.describe(), self.policy.shard_retries,
                        len(shard.loads)),
                     attempt=attempt)
        points: List[FrontierPoint] = []
        for load in shard.loads:
            if load in self.convicted:
                continue
            faults = 0
            while True:
                search = TierSearch(self.evaluator, self.limits)
                try:
                    points.extend(self._build_cell(search, shard, load))
                    break
                except GridBuildInterrupted:
                    raise
                except Exception as exc:   # noqa: BLE001 - ladder
                    faults += 1
                    if faults > self.policy.cell_retries:
                        self._convict(shard, load,
                                      "%s: %s" % (type(exc).__name__,
                                                  exc), faults)
                        break
                    self._schedule.pause(faults)
        self._finish(shard, points)
        return points

    def _convict(self, shard: GridShard, load: float, reason: str,
                 attempts: int) -> None:
        self.convicted[load] = reason
        self.log.add(GRID_CELL_CONVICTED, tier=shard.tier,
                     detail="grid cell at load %g convicted after %d "
                            "isolated fault(s): %s"
                     % (load, attempts, reason),
                     attempt=attempts)
        if self.journal is not None:
            self.journal.cell_convicted(load, reason)

    # -- status --------------------------------------------------------

    def status(self,
               built_loads: Optional[int] = None) -> Dict[str, Any]:
        """The build's MAP_STATUS_SCHEMA document."""
        total = len(self.spec.loads)
        if built_loads is None:
            done_shards = self.counters["shards_done"]
            built = 0
            for index, shard in enumerate(self.spec.shards()):
                if index < done_shards:
                    built += sum(1 for load in shard.loads
                                 if load not in self.convicted)
            built_loads = built
        state = "complete" if built_loads >= total else (
            "partial" if built_loads else "building")
        journal = (self.journal.status() if self.journal is not None
                   else {"enabled": False, "degraded": False,
                         "appends": 0})
        return {
            "tier": self.spec.tier,
            "state": state,
            "coverage": (built_loads / total) if total else 0.0,
            "loads_total": total,
            "loads_built": built_loads,
            "shards": {
                "total": self.counters["shards_total"],
                "done": self.counters["shards_done"],
                "pending": max(0, self.counters["shards_total"]
                               - self.counters["shards_done"]),
                "reused": self.counters["shards_reused"],
                "faults": self.counters["shard_faults"],
                "isolated": self.counters["shards_isolated"],
                "reclaimed_leases": self.counters["leases_reclaimed"],
            },
            "convicted_cells": [
                {"load": load, "reason": reason}
                for load, reason in sorted(self.convicted.items())],
            "journal": journal,
            "resumed": self.resumed,
            "format_version": MAP_FORMAT_VERSION,
            "degradations": self.log.counts(),
        }


__all__ = ["GridPolicy", "GridBuilder"]
