"""What a grid build computes: the load axis, partitioned into shards.

A :class:`GridSpec` pins down one requirement-space map build: the
tier, the dense grid of load levels (the map's x axis -- the downtime
axis needs no discretization, because each load's Pareto frontier
answers *every* downtime requirement at that load), and the shard
size.  Sharding is purely an execution concern: any partition of the
loads builds the same map byte-for-byte (the property tests in
``tests/properties/test_grid_props.py`` hold the builder to that), so
the spec's canonical contiguous partition is just the default, not a
semantic choice.

A spec also has a stable :meth:`key`: journals and resumes are only
valid against the grid they were written for, and the key is how a
journal written for a different tier or load grid is rejected instead
of silently merged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..errors import GridError


@dataclass(frozen=True)
class GridShard:
    """One contiguous slice of the load grid, built under one lease."""

    shard_id: int
    tier: str
    loads: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.loads:
            raise GridError("shard %d has no loads" % self.shard_id)

    def describe(self) -> str:
        if len(self.loads) == 1:
            return "shard %d (load %g)" % (self.shard_id, self.loads[0])
        return "shard %d (loads %g..%g, %d cells)" % (
            self.shard_id, self.loads[0], self.loads[-1],
            len(self.loads))


@dataclass(frozen=True)
class GridSpec:
    """One requirement-space map build: tier, load grid, shard size."""

    tier: str
    loads: Tuple[float, ...] = field(default=())
    shard_size: int = 4

    def __post_init__(self) -> None:
        if not self.tier:
            raise GridError("grid spec needs a tier name")
        loads = tuple(float(load) for load in self.loads)
        object.__setattr__(self, "loads", loads)
        if not loads:
            raise GridError("grid spec needs at least one load")
        if any(load <= 0 for load in loads):
            raise GridError("grid loads must be positive")
        if len(set(loads)) != len(loads):
            raise GridError("grid loads must be unique")
        if self.shard_size < 1:
            raise GridError("shard_size must be >= 1")

    def shards(self) -> Tuple[GridShard, ...]:
        """The canonical partition: contiguous chunks of shard_size."""
        return partition_loads(self.tier, self.loads, self.shard_size)

    def key(self) -> str:
        """Stable identity of the grid (tier + loads), for journals.

        Deliberately independent of ``shard_size``: re-sharding a
        half-built grid must still reuse its journaled shards' cells
        -- identity is the map being computed, not how it is cut up.
        """
        canonical = json.dumps(
            {"tier": self.tier, "loads": list(self.loads)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def partition_loads(tier: str, loads: Sequence[float],
                    shard_size: int) -> Tuple[GridShard, ...]:
    """Cut ``loads`` into contiguous shards of at most ``shard_size``."""
    if shard_size < 1:
        raise GridError("shard_size must be >= 1")
    loads = tuple(float(load) for load in loads)
    shards = []
    for start in range(0, len(loads), shard_size):
        shards.append(GridShard(
            shard_id=len(shards), tier=tier,
            loads=loads[start:start + shard_size]))
    return tuple(shards)


__all__ = ["GridShard", "GridSpec", "partition_loads"]
