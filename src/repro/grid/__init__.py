"""Fault-tolerant sharded requirement-space map builds and serving.

The paper's Fig. 6 maps -- which design family is cost-optimal at
(load, downtime) -- are the artifact operators consult, so this
package turns :func:`repro.core.build_requirement_map` from a
single-process all-or-nothing loop into a dependable service:

* :class:`GridSpec` / :class:`GridShard` -- the load grid, partitioned
  into shards; any partition builds the byte-identical map.
* :class:`GridBuilder` / :class:`GridPolicy` -- shard execution under
  per-shard leases with the suspicion -> isolation -> conviction
  ladder (``AVD901``-``AVD903``) and jittered-backoff lease
  reassignment.
* :class:`GridJournal` -- fsync'd torn-tail-tolerant shard journal:
  ``kill -9`` mid-build resumes with finished shards reused exactly
  once (``AVD904``/``AVD906``).
* :class:`GridFaultPlan` -- the seeded chaos harness behind the
  convergence proof (30% storms produce byte-identical maps).
* :class:`MapService` -- sub-millisecond lookups over the canonical
  map JSON, with honest partial-coverage degradation (``AVD907``);
  ``repro serve`` mounts it at ``GET /v1/map``.

``docs/GRID.md`` is the operator guide; ``repro map build|serve|status``
the CLI surface.
"""

from .builder import GridBuilder, GridPolicy
from .faults import (FAULT_KINDS, GridBuildInterrupted, GridFaultPlan,
                     InjectedFault)
from .journal import (GridJournal, GridJournalState, lease_abandoned,
                      loads_key)
from .service import MapService, served_status
from .spec import GridShard, GridSpec, partition_loads

__all__ = [
    "GridSpec", "GridShard", "partition_loads",
    "GridBuilder", "GridPolicy",
    "GridJournal", "GridJournalState", "lease_abandoned", "loads_key",
    "GridFaultPlan", "GridBuildInterrupted", "InjectedFault",
    "FAULT_KINDS",
    "MapService", "served_status",
]
