"""The grid build's crash journal: finished shards survive kill -9.

Same discipline as the serve/watch journals: an append-only, fsync'd
JSONL file.  Each shard's lifecycle is bracketed by a ``shard-start``
record (lease: holder pid, wall-clock deadline, attempt) and a
``shard-done`` record carrying the shard's *full serialized frontier
points* -- so replay after a kill needs no re-evaluation for finished
shards, just deserialization.  Convictions (``cell-convicted``) are
journaled too, so a resumed build does not re-litigate a poison cell.

Replay semantics:

* start + done        -> shard finished; its points are reused exactly
  once (the resumed build never re-evaluates it).
* start, no done      -> the process died (or was killed) mid-shard.
  The lease is abandoned; a resuming build reclaims it (``AVD906``)
  and re-runs the shard from scratch.
* torn tail           -> the append itself was the victim; the partial
  line is skipped, which re-runs the interrupted shard.

Records carry the grid's :meth:`~repro.grid.GridSpec.key`; replay
ignores records written for a different grid, and a shard's points are
only reused when its journaled loads exactly match the shard being
asked about -- re-sharding a half-built grid rebuilds what no longer
lines up instead of mixing partitions.

Journal *writes* that fail degrade the build rather than stop it: the
append is dropped, ``AVD905`` is logged, and the build continues
without durability (a map build should never die of bookkeeping).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..resilience.events import GRID_JOURNAL_FAULT, DegradationLog

#: Journal entry kinds.
SHARD_START = "shard-start"
SHARD_DONE = "shard-done"
CELL_CONVICTED = "cell-convicted"


def loads_key(loads: Sequence[float]) -> str:
    """Canonical string identity of a shard's load slice."""
    return json.dumps([float(load) for load in loads],
                      separators=(",", ":"))


@dataclass
class GridJournalState:
    """What replay recovered from a grid journal file."""

    #: Finished shards: loads-key -> list of serialized frontier-point
    #: dicts (exactly what ``shard-done`` journaled).
    done: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: Abandoned leases: loads-key -> the last ``shard-start`` record
    #: with no matching ``shard-done`` (holder pid, deadline, attempt).
    abandoned: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Journaled convictions: load -> reason.
    convicted: Dict[float, str] = field(default_factory=dict)
    #: Records successfully parsed (for this grid).
    entries: int = 0
    #: Lines that did not parse (torn tail, corruption); ignored.
    skipped: int = 0
    #: Parsed records belonging to a different grid key; ignored.
    foreign: int = 0


class GridJournal:
    """Append-only fsync'd journal with degrade-on-write-failure."""

    def __init__(self, path: str, grid_key: str,
                 log: Optional[DegradationLog] = None):
        self.path = path
        self.grid_key = grid_key
        self.log = log if log is not None else DegradationLog()
        #: True once an append has failed; the build keeps running but
        #: finished shards are no longer durable.
        self.degraded = False
        self.appends = 0

    # -- writing -------------------------------------------------------

    def append(self, entry: str, **payload: Any) -> bool:
        """Durably append one record; False (and AVD905) on failure."""
        record = {"entry": entry, "grid": self.grid_key}
        record.update(payload)
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            self.degraded = True
            self.log.add(GRID_JOURNAL_FAULT,
                         detail="%s: %s" % (entry, exc))
            return False
        self.appends += 1
        return True

    def shard_start(self, shard_id: int, loads: Sequence[float],
                    attempt: int, holder: int,
                    lease_seconds: float, now: float) -> bool:
        return self.append(SHARD_START, shard=shard_id,
                           loads=loads_key(loads), attempt=attempt,
                           holder=holder,
                           deadline=now + lease_seconds)

    def shard_done(self, shard_id: int, loads: Sequence[float],
                   points: List[Dict[str, Any]]) -> bool:
        return self.append(SHARD_DONE, shard=shard_id,
                           loads=loads_key(loads), points=points)

    def cell_convicted(self, load: float, reason: str) -> bool:
        return self.append(CELL_CONVICTED, load=float(load),
                           reason=reason)

    def tear_tail(self, fragment: bytes = b'{"entry":"shard-sta') \
            -> None:
        """Append a torn partial record (no newline): chaos only.

        Simulates a kill landing mid-append; replay must skip the
        fragment and lose nothing that was durably written before it.
        """
        try:
            with open(self.path, "ab") as handle:
                handle.write(fragment)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass

    # -- replay --------------------------------------------------------

    @staticmethod
    def replay(path: str, grid_key: str) -> GridJournalState:
        """Reconstruct a build's durable state from the journal file."""
        state = GridJournalState()
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return state
        starts: Dict[str, Dict[str, Any]] = {}
        for raw in data.split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                entry = record["entry"]
                grid = record["grid"]
            except (ValueError, KeyError, TypeError,
                    UnicodeDecodeError):
                state.skipped += 1
                continue
            if not isinstance(record, dict) or grid != grid_key:
                state.foreign += 1
                continue
            state.entries += 1
            if entry == SHARD_START:
                starts[record.get("loads", "")] = record
            elif entry == SHARD_DONE:
                key = record.get("loads", "")
                points = record.get("points")
                if isinstance(points, list):
                    state.done[key] = points
                starts.pop(key, None)
            elif entry == CELL_CONVICTED:
                try:
                    state.convicted[float(record["load"])] = \
                        str(record.get("reason", ""))
                except (KeyError, TypeError, ValueError):
                    state.skipped += 1
        state.abandoned = starts
        return state

    def status(self) -> Dict[str, Any]:
        """The journal member of the MAP_STATUS_SCHEMA document."""
        return {"enabled": True, "degraded": self.degraded,
                "appends": self.appends}


def lease_abandoned(record: Dict[str, Any], now: float,
                    pid_alive) -> Tuple[bool, str]:
    """Is a journaled ``shard-start`` lease safe to reclaim?

    A lease is abandoned when its holder process is dead, or when its
    wall-clock deadline has passed (a hung holder must not block the
    grid forever).  Returns ``(abandoned, why)``.
    """
    holder = record.get("holder")
    try:
        holder = int(holder)
    except (TypeError, ValueError):
        return True, "lease has no valid holder pid"
    if holder == os.getpid():
        # Our own earlier attempt in this very process (an in-process
        # retry); not a foreign lease.
        return True, "own earlier attempt"
    if not pid_alive(holder):
        return True, "holder pid %d is dead" % holder
    deadline = record.get("deadline")
    try:
        deadline = float(deadline)
    except (TypeError, ValueError):
        return True, "lease has no valid deadline"
    if now > deadline:
        return True, ("holder pid %d overran its lease by %.1fs"
                      % (holder, now - deadline))
    return False, "lease still held by live pid %d" % holder


__all__ = ["SHARD_START", "SHARD_DONE", "CELL_CONVICTED",
           "GridJournalState", "GridJournal", "lease_abandoned",
           "loads_key"]
