"""Serving a precomputed requirement-space map: fast, honest lookups.

:class:`MapService` loads the canonical map JSON a grid build wrote
and answers "which design is cost-optimal at (load, downtime)?" from
memory -- no search is ever triggered on the serving path, which is
what makes sub-millisecond lookups possible.  It works on the
*serialized* point dicts directly (the answer is re-serialized anyway),
so serving a map needs no infrastructure model, just the file.

Honesty is the other half of the contract:

* every answer carries the map's **coverage fraction** and the age of
  the file it came from, so a caller always knows how complete and how
  stale the map behind its answer is;
* a lookup in a region the map genuinely has no frontier for (a load
  beyond the grid, or a convicted/unbuilt cell) is ``unbuilt`` -- the
  HTTP layer turns that into a 503, never into a silently wrong
  answer;
* a requirement no design on the frontier can meet is ``infeasible``
  -- a definitive answer, not a degradation.

The backing file is mtime-checked on each lookup and reloaded when a
rebuild replaced it, so a long-lived daemon serves fresh maps without
a restart.
"""

from __future__ import annotations

import bisect
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.serialize import MAP_FORMAT_VERSION
from ..errors import GridError
from ..resilience.events import GRID_MAP_PARTIAL, DegradationLog
from ..units import Duration
from .journal import GridJournal


class MapService:
    """In-memory lookup over a grid-built requirement-space map."""

    def __init__(self, map_path: str,
                 log: Optional[DegradationLog] = None,
                 clock=time.time):
        self.map_path = map_path
        self.log = log if log is not None else DegradationLog()
        self.clock = clock
        self.lookups = 0
        self.tier: Optional[str] = None
        self._mtime: Optional[float] = None
        self._declared: Tuple[float, ...] = ()
        #: Sorted built loads and per-load frontiers (point dicts in
        #: downtime-descending order) -- the index that keeps lookups
        #: off the O(points) path.
        self._loads: List[float] = []
        self._frontiers: Dict[float, List[Dict[str, Any]]] = {}
        self._partial_logged = False
        # A corrupt file must not prevent *constructing* the service
        # (a daemon mounting a map still boots); lookup() and status()
        # re-raise on their own reload() calls, where the HTTP layer
        # maps the error to an honest 503.
        try:
            self.reload()
        except GridError:
            pass

    # -- loading -------------------------------------------------------

    @property
    def loaded(self) -> bool:
        return self._mtime is not None

    def reload(self) -> bool:
        """(Re)load the map when the file changed; False when absent.

        A file that exists but does not parse as a supported map is an
        error (:class:`GridError`) -- a daemon must not quietly serve
        nothing off a corrupt map.
        """
        try:
            mtime = os.stat(self.map_path).st_mtime
        except OSError:
            self.tier = None
            self._mtime = None
            self._declared = ()
            self._loads = []
            self._frontiers = {}
            return False
        if self.loaded and mtime == self._mtime:
            return True
        with open(self.map_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise GridError("map file %s is not valid JSON: %s"
                            % (self.map_path, exc)) from exc
        if not isinstance(data, dict) \
                or data.get("version") != MAP_FORMAT_VERSION:
            raise GridError(
                "map file %s has unsupported version %r (expected %d)"
                % (self.map_path,
                   data.get("version") if isinstance(data, dict)
                   else None, MAP_FORMAT_VERSION))
        frontiers: Dict[float, List[Dict[str, Any]]] = {}
        try:
            declared = tuple(float(load) for load in data["loads"])
            tier = str(data["tier"])
            for point in data["points"]:
                load = float(point["load"])
                float(point["downtime_minutes"])
                float(point["annual_cost"])
                frontiers.setdefault(load, []).append(point)
        except (KeyError, TypeError, ValueError) as exc:
            raise GridError("map file %s is malformed: %s"
                            % (self.map_path, exc)) from exc
        for points in frontiers.values():
            points.sort(key=lambda p: -float(p["downtime_minutes"]))
        self.tier = tier
        self._mtime = mtime
        self._declared = declared
        self._frontiers = frontiers
        self._loads = sorted(frontiers)
        if self.coverage() < 1.0 and not self._partial_logged:
            self._partial_logged = True
            self.log.add(GRID_MAP_PARTIAL, tier=tier,
                         detail="map at %s covers %d of %d loads"
                         % (self.map_path, len(self._loads),
                            len(declared)))
        return True

    # -- coverage / staleness ------------------------------------------

    def coverage(self) -> float:
        """Fraction of the declared load grid with a built frontier."""
        if not self._declared:
            return 0.0
        return len(self._loads) / len(self._declared)

    def age_seconds(self) -> Optional[float]:
        if self._mtime is None:
            return None
        return max(0.0, self.clock() - self._mtime)

    # -- lookup --------------------------------------------------------

    def lookup(self, load: float, max_downtime: Duration) \
            -> Dict[str, Any]:
        """Answer one (load, downtime) requirement from the map.

        Returns a dict with ``answer`` one of:

        * ``"ok"`` -- ``design`` holds the cheapest frontier point at
          the covering grid load that meets the downtime requirement;
        * ``"infeasible"`` -- the region is built and *no* design
          meets the requirement (a definitive answer);
        * ``"unbuilt"`` -- the map has no frontier covering this load
          (missing map, load beyond the grid, or an unbuilt/convicted
          cell): the only case worth a 503.

        Every answer carries ``coverage`` and ``map_age_seconds``.
        """
        if load <= 0:
            raise GridError("load must be positive")
        self.reload()
        self.lookups += 1
        base: Dict[str, Any] = {
            "tier": self.tier,
            "load": load,
            "max_downtime_minutes": max_downtime.as_minutes,
            "coverage": self.coverage(),
            "map_age_seconds": self.age_seconds(),
        }
        if not self.loaded:
            base.update(answer="unbuilt",
                        detail="no map at %s" % self.map_path)
            return base
        grid_load = self._covering_load(load)
        if grid_load is None:
            declared = [line for line in self._declared
                        if line >= load]
            if declared:
                detail = ("grid cell at load %g is unbuilt"
                          % min(declared))
            else:
                detail = ("load %g is beyond the grid (declared loads "
                          "top out at %g)"
                          % (load, max(self._declared)))
            base.update(answer="unbuilt", detail=detail)
            return base
        base["grid_load"] = grid_load
        target = max_downtime.as_minutes
        best: Optional[Dict[str, Any]] = None
        for point in self._frontiers[grid_load]:
            if float(point["downtime_minutes"]) <= target and (
                    best is None or float(point["annual_cost"])
                    < float(best["annual_cost"])):
                best = point
        if best is None:
            base.update(answer="infeasible",
                        detail="no design at grid load %g achieves "
                               "%.4g minutes/year"
                        % (grid_load, target))
            return base
        base.update(answer="ok", design=best)
        return base

    def _covering_load(self, load: float) -> Optional[float]:
        """The smallest *built* grid load >= the requested load.

        Capacity must cover the requirement, so answers round the load
        up to the next grid line -- but only to the next *declared*
        line: skipping over an unbuilt declared cell to a higher built
        one would silently answer from the wrong region, so that case
        is honest ``unbuilt`` territory instead.
        """
        if not self._loads:
            return None
        index = bisect.bisect_left(self._loads, load)
        if index >= len(self._loads):
            return None
        candidate = self._loads[index]
        for line in self._declared:
            if load <= line < candidate:
                return None
        return candidate

    # -- status --------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The serving-side MAP_STATUS_SCHEMA document."""
        self.reload()
        total = len(self._declared)
        built = len(self._loads)
        if not self.loaded:
            state = "missing"
        elif built >= total:
            state = "complete"
        else:
            state = "partial"
        return {
            "tier": self.tier if self.tier is not None else "unknown",
            "state": state,
            "coverage": self.coverage(),
            "loads_total": total,
            "loads_built": built,
            "shards": {"total": 0, "done": 0, "pending": 0},
            "journal": {"enabled": False, "degraded": False,
                        "appends": 0},
            "map_path": self.map_path,
            "map_age_seconds": self.age_seconds(),
            "format_version": MAP_FORMAT_VERSION,
            "lookups": self.lookups,
        }


def served_status(map_path: str,
                  journal_path: Optional[str] = None,
                  grid_key: Optional[str] = None) \
        -> Tuple[Dict[str, Any], int]:
    """``repro map status``: combine the map file and its journal.

    Returns ``(status document, exit code)`` -- 0 when the map is
    complete, 2 when partial or missing.
    """
    service = MapService(map_path)
    status = service.status()
    if journal_path and grid_key:
        state = GridJournal.replay(journal_path, grid_key)
        status["shards"] = {"total": 0, "done": len(state.done),
                            "pending": len(state.abandoned)}
        status["journal"] = {"enabled": True, "degraded": False,
                             "appends": state.entries}
    return status, (0 if status["state"] == "complete" else 2)


__all__ = ["MapService", "served_status"]
