"""Seeded fault injection for the grid chaos harness.

A :class:`GridFaultPlan` is the storm generator behind the grid's
convergence proof: the chaos suite builds the same map twice -- once
fault-free, once under a plan injecting worker crashes, hangs, torn
journal tails, and mid-build kills -- and asserts the two serialize to
identical bytes.  Everything here is deterministic in the seed, so a
failing storm replays exactly.

Faults come in two flavors:

* **storm faults** (:meth:`shard_fault`) hit a seeded fraction of
  shards on their early attempts and then stop -- they model
  *transient* infrastructure trouble, so a retried shard succeeds and
  the build converges.  ``crash`` raises from the shard worker,
  ``hang`` overruns the lease, ``torn-kill`` tears the journal tail
  and kills the build mid-shard (the test restarts it, as an operator
  would).
* **poison cells** (:meth:`cell_fault`) fail *every* attempt at a
  specific load -- they model a genuinely broken grid point, and are
  what the suspicion ladder must convict alone while the cell's
  shard-mates survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..errors import GridError

#: Storm fault kinds a plan may inject at shard level.
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "torn-kill")


class InjectedFault(Exception):
    """A chaos-injected shard/cell failure (crash or hang)."""

    def __init__(self, kind: str, detail: str):
        super().__init__(detail)
        self.kind = kind


class GridBuildInterrupted(Exception):
    """The simulated process death: must escape the fault ladder.

    Raised for ``torn-kill`` storm faults and ``kill_after_shards``;
    the builder never catches it -- the *caller* (a test, standing in
    for an operator restarting a killed process) re-runs the build,
    which resumes from the journal.
    """


@dataclass(frozen=True)
class GridFaultPlan:
    """Deterministic storm schedule over a grid build.

    ``fault_rate`` is the fraction of shards hit by a storm fault;
    ``max_faulty_attempts`` bounds *which* attempts can fault (the
    attempt counter is journaled, so it keeps rising across restarts
    and the storm provably dies out).  ``poison_loads`` always fault,
    on every attempt.  ``kill_after_shards`` kills the build (a
    :class:`GridBuildInterrupted`) after that many shard completions
    in this process -- pass it for the run you intend to restart.
    """

    seed: int = 0
    fault_rate: float = 0.3
    kinds: Tuple[str, ...] = FAULT_KINDS
    max_faulty_attempts: int = 1
    poison_loads: FrozenSet[float] = frozenset()
    kill_after_shards: Optional[int] = None
    #: Shards completed in this process (mutable test-run state).
    _completed: list = field(default_factory=list, compare=False,
                             hash=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise GridError("fault_rate must be in [0, 1]")
        if self.max_faulty_attempts < 0:
            raise GridError("max_faulty_attempts cannot be negative")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise GridError("unknown fault kind %r" % kind)
        if self.kill_after_shards is not None \
                and self.kill_after_shards < 1:
            raise GridError("kill_after_shards must be >= 1 or None")

    def shard_fault(self, shard_id: int, attempt: int) \
            -> Optional[str]:
        """The storm fault for this (shard, attempt), if any.

        Deterministic: the same (seed, shard, attempt) always decides
        the same way, so a resumed build replays the identical storm.
        """
        if attempt > self.max_faulty_attempts or not self.kinds:
            return None
        rng = random.Random((self.seed, shard_id, attempt).__repr__())
        if rng.random() >= self.fault_rate:
            return None
        return rng.choice(list(self.kinds))

    def cell_fault(self, load: float) -> Optional[str]:
        """Poison check: a reason string when ``load`` always fails."""
        if float(load) in self.poison_loads:
            return "injected poison cell at load %g" % load
        return None

    def shard_completed(self) -> bool:
        """Account one completed shard; True when the kill fires now."""
        self._completed.append(True)
        return (self.kill_after_shards is not None
                and len(self._completed) >= self.kill_after_shards)


__all__ = ["FAULT_KINDS", "InjectedFault", "GridBuildInterrupted",
           "GridFaultPlan"]
