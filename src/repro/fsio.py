"""Crash-safe filesystem primitives shared by the durable subsystems.

Two disciplines, factored out of :mod:`repro.resilience.checkpoint` so
the checkpoint, the tier-evaluation store (:mod:`repro.cache`), and
any future durable state all persist the same way:

* **pid-stamped sidecar locks** -- a writer creates ``<target>.lock``
  exclusively (``O_CREAT | O_EXCL``) with its pid inside; a lock whose
  recorded pid is dead or unreadable (the writer was killed
  mid-rename) is *stale* and gets broken, while a lock held by a live
  process raises :class:`LockContention` so two writers can never
  interleave renames on one path;
* **atomic replace** -- data is written to a temp file in the target's
  directory, fsynced, then ``os.replace``'d over the target, so a
  reader never observes a torn file and a crash at any instant leaves
  either the old content or the new, never a mix.

Readers need no locks under this scheme: they only ever see complete
files (rename is atomic on POSIX), which is what lets the cache serve
lock-free reads to any number of concurrent processes.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional


class LockContention(OSError):
    """The sidecar lock is held by another live writer."""


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lock-holder pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def lock_holder(lock_path: str) -> Optional[int]:
    """The pid recorded in a lock file, or None when unreadable."""
    try:
        with open(lock_path) as handle:
            return int(handle.read().strip() or "0")
    except (OSError, ValueError):
        return None


def acquire_lock(target: str) -> str:
    """Create ``<target>.lock`` exclusively; returns the lock path.

    A lock held by a *live* process raises :class:`LockContention`
    (single-writer assertion).  A stale lock -- its recorded pid is
    dead or unreadable, e.g. the writer was killed mid-rename -- is
    broken and acquisition retried once.
    """
    lock_path = target + ".lock"
    last_exc: Optional[OSError] = None
    for _ in range(2):
        try:
            fd = os.open(lock_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError as exc:
            last_exc = exc
            holder = lock_holder(lock_path)
            if holder is not None and holder != os.getpid() \
                    and pid_alive(holder):
                contention = LockContention(
                    "%r is locked by another live writer (pid %d)"
                    % (target, holder))
                contention.__cause__ = exc
                raise contention
            try:  # stale (dead or unreadable holder): break and retry
                os.unlink(lock_path)
            except OSError:
                pass
            continue
        with os.fdopen(fd, "w") as handle:
            handle.write("%d\n" % os.getpid())
        return lock_path
    contention = LockContention("%r lock is contended; giving up"
                                % target)
    contention.__cause__ = last_exc
    raise contention


def release_lock(lock_path: str) -> None:
    try:
        os.unlink(lock_path)
    except OSError:
        pass


def atomic_write_bytes(target: str, data: bytes,
                       durable: bool = True,
                       prefix: str = ".fsio-") -> None:
    """Write ``data`` to ``target`` via temp file + fsync + rename.

    ``durable=False`` skips the fsync (faster; a power cut may then
    lose the write, but a torn file still cannot appear).  On any
    failure the temp file is removed and the original ``target`` is
    left untouched.
    """
    directory = os.path.dirname(os.path.abspath(target))
    handle = tempfile.NamedTemporaryFile(
        "wb", dir=directory, prefix=prefix, suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


__all__ = ["LockContention", "pid_alive", "lock_holder", "acquire_lock",
           "release_lock", "atomic_write_bytes"]
