"""Requirement-space maps: the machinery behind the paper's Figs. 6 and 8.

Fig. 6 plots, over a two-dimensional requirement space (load on the x
axis, allowed annual downtime on the y axis), which design family is
cost-optimal in each region -- each curve is a family's achieved
downtime as a function of load, and the family is optimal for
requirement points between its curve and the next one up.

Fig. 8 plots, for fixed loads, the *extra* annual cost of meeting a
downtime requirement relative to the cheapest design that merely
carries the load.

Both reduce to the same primitive computed here: for each load, the
tier's Pareto frontier of (cost, downtime) over the design space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..units import Duration
from .design import EvaluatedTierDesign
from .evaluation import DesignEvaluator
from .families import DesignFamily, family_of
from .search import SearchLimits, TierSearch


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal design at one load level."""

    load: float
    n_min: int
    family: DesignFamily
    downtime_minutes: float
    annual_cost: float
    design: EvaluatedTierDesign


@dataclass
class RequirementSpaceMap:
    """Pareto frontiers for a tier across a sweep of load levels."""

    tier: str
    loads: Tuple[float, ...]
    points: Tuple[FrontierPoint, ...]

    def at_load(self, load: float) -> List[FrontierPoint]:
        """Frontier points for one load, sorted by decreasing downtime."""
        selected = [point for point in self.points if point.load == load]
        return sorted(selected, key=lambda p: -p.downtime_minutes)

    def optimal_for(self, load: float, max_downtime: Duration) \
            -> Optional[FrontierPoint]:
        """Cheapest design at ``load`` meeting ``max_downtime``."""
        target = max_downtime.as_minutes
        feasible = [point for point in self.at_load(load)
                    if point.downtime_minutes <= target]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.annual_cost)

    def family_curves(self) -> Dict[DesignFamily,
                                    List[Tuple[float, float]]]:
        """Fig. 6's curves: family -> [(load, achieved downtime)].

        A family appears at a load when it is on that load's Pareto
        frontier (i.e. it is the optimal choice for some downtime
        requirement at that load).
        """
        curves: Dict[DesignFamily, List[Tuple[float, float]]] = {}
        for point in self.points:
            curves.setdefault(point.family, []).append(
                (point.load, point.downtime_minutes))
        for values in curves.values():
            values.sort()
        return curves

    def baseline_cost(self, load: float) -> float:
        """Cheapest cost that merely carries the load (no availability
        requirement) -- Fig. 8's reference level."""
        points = self.at_load(load)
        if not points:
            raise SearchError("no designs at load %g" % load)
        return min(point.annual_cost for point in points)

    def extra_cost_curve(self, load: float,
                         downtime_grid: Sequence[float]) \
            -> List[Tuple[float, Optional[float]]]:
        """Fig. 8's curve for one load.

        Returns ``(downtime_minutes, extra_annual_cost)`` pairs; the
        extra cost is None where no design meets the requirement.
        """
        baseline = self.baseline_cost(load)
        curve: List[Tuple[float, Optional[float]]] = []
        for downtime in downtime_grid:
            optimal = self.optimal_for(load, Duration.minutes(downtime))
            extra = (optimal.annual_cost - baseline
                     if optimal is not None else None)
            curve.append((downtime, extra))
        return curve


def build_requirement_map(evaluator: DesignEvaluator, tier: str,
                          loads: Sequence[float],
                          limits: Optional[SearchLimits] = None) \
        -> RequirementSpaceMap:
    """Compute the tier's Pareto frontier at every load in ``loads``."""
    search = TierSearch(evaluator, limits)
    points: List[FrontierPoint] = []
    for load in loads:
        frontier = search.tier_frontier(tier, load)
        for candidate in frontier:
            option = evaluator.service.tier(tier).option_for(
                candidate.design.resource)
            n_min = option.min_active_for(load)
            family = family_of(candidate.design, n_min)
            points.append(FrontierPoint(
                load=load, n_min=n_min, family=family,
                downtime_minutes=candidate.downtime_minutes,
                annual_cost=candidate.annual_cost,
                design=candidate))
    return RequirementSpaceMap(tier, tuple(loads), tuple(points))
