"""JSON-friendly serialization of designs and evaluations.

A utility-computing controller (or just a user saving results) needs to
persist the engine's decisions.  Designs serialize to plain dicts --
durations as their spec strings (``"10.4m"``), mechanism settings by
name -- and deserialize against an :class:`InfrastructureModel`, which
re-validates every mechanism parameter on the way in.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import ModelError
from ..model import InfrastructureModel, MechanismConfig
from ..units import Duration
from .design import Design, EvaluatedTierDesign, TierDesign
from .evaluation import DesignEvaluation
from .families import DesignFamily
from .frontier import FrontierPoint, RequirementSpaceMap

#: Version stamp of the canonical requirement-space map JSON form.
#: Bump when the structure changes; readers reject other versions.
MAP_FORMAT_VERSION = 1


def _setting_to_json(value):
    if isinstance(value, Duration):
        return {"duration": value.format()}
    return value


def _setting_from_json(value):
    if isinstance(value, dict) and set(value) == {"duration"}:
        return Duration.parse(value["duration"])
    return value


def tier_design_to_dict(tier_design: TierDesign) -> Dict:
    """Serialize one tier design to a JSON-compatible dict."""
    return {
        "tier": tier_design.tier,
        "resource": tier_design.resource,
        "n_active": tier_design.n_active,
        "n_spare": tier_design.n_spare,
        "spare_active_prefix": list(tier_design.spare_active_prefix),
        "mechanisms": {
            config.name: {key: _setting_to_json(value)
                          for key, value in config.settings.items()}
            for config in tier_design.mechanism_configs
        },
    }


def tier_design_from_dict(data: Dict,
                          infrastructure: InfrastructureModel) \
        -> TierDesign:
    """Rebuild a tier design, validating against the infrastructure."""
    try:
        mechanisms = data.get("mechanisms", {})
        configs = []
        for name, settings in mechanisms.items():
            mechanism = infrastructure.mechanism(name)
            resolved = {key: _match_setting(mechanism, key,
                                            _setting_from_json(value))
                        for key, value in settings.items()}
            configs.append(MechanismConfig(mechanism, resolved))
        return TierDesign(
            tier=data["tier"],
            resource=data["resource"],
            n_active=int(data["n_active"]),
            n_spare=int(data["n_spare"]),
            spare_active_prefix=tuple(data.get("spare_active_prefix",
                                               ())),
            mechanism_configs=tuple(configs))
    except KeyError as exc:
        raise ModelError("design dict missing field %s" % exc)


def _match_setting(mechanism, parameter_name: str, value):
    """Snap deserialized values onto the parameter's actual grid.

    Duration grids are matched by equality of seconds after the round
    trip through the canonical format; other values pass through (the
    MechanismConfig constructor still validates membership).
    """
    try:
        allowed = mechanism.parameter(parameter_name).values.values()
    except ModelError:
        return value
    for candidate in allowed:
        if isinstance(candidate, Duration) and \
                isinstance(value, Duration):
            if candidate.format() == value.format():
                return candidate
        elif candidate == value:
            return candidate
    return value


def evaluated_tier_design_to_dict(candidate: EvaluatedTierDesign) \
        -> Dict:
    """Serialize a frontier entry (design + evaluated cost/downtime)."""
    return {
        "design": tier_design_to_dict(candidate.design),
        "annual_cost": candidate.annual_cost,
        "unavailability": candidate.unavailability,
    }


def evaluated_tier_design_from_dict(data: Dict,
                                    infrastructure:
                                    InfrastructureModel) \
        -> EvaluatedTierDesign:
    try:
        return EvaluatedTierDesign(
            tier_design_from_dict(data["design"], infrastructure),
            float(data["annual_cost"]),
            float(data["unavailability"]))
    except KeyError as exc:
        raise ModelError("evaluated design dict missing field %s" % exc)


def design_to_dict(design: Design) -> Dict:
    return {"tiers": [tier_design_to_dict(tier)
                      for tier in design.tiers]}


def design_from_dict(data: Dict,
                     infrastructure: InfrastructureModel) -> Design:
    tiers: List[TierDesign] = [
        tier_design_from_dict(entry, infrastructure)
        for entry in data.get("tiers", [])]
    if not tiers:
        raise ModelError("design dict has no tiers")
    return Design(tuple(tiers))


def design_to_json(design: Design, indent: int = 2) -> str:
    return json.dumps(design_to_dict(design), indent=indent,
                      sort_keys=True)


def design_from_json(text: str,
                     infrastructure: InfrastructureModel) -> Design:
    return design_from_dict(json.loads(text), infrastructure)


def family_to_dict(family: DesignFamily) -> Dict:
    """Serialize a Fig. 6 design family signature."""
    return {
        "resource": family.resource,
        "contract": family.contract,
        "n_extra": family.n_extra,
        "n_spare": family.n_spare,
        "spare_level": list(family.spare_level),
    }


def family_from_dict(data: Dict) -> DesignFamily:
    try:
        return DesignFamily(
            resource=data["resource"],
            contract=data["contract"],
            n_extra=int(data["n_extra"]),
            n_spare=int(data["n_spare"]),
            spare_level=tuple(data.get("spare_level", ())))
    except KeyError as exc:
        raise ModelError("family dict missing field %s" % exc)


def frontier_point_to_dict(point: FrontierPoint) -> Dict:
    """Serialize one Pareto-optimal design at one load level."""
    return {
        "load": point.load,
        "n_min": point.n_min,
        "family": family_to_dict(point.family),
        "downtime_minutes": point.downtime_minutes,
        "annual_cost": point.annual_cost,
        "design": evaluated_tier_design_to_dict(point.design),
    }


def frontier_point_from_dict(data: Dict,
                             infrastructure: InfrastructureModel) \
        -> FrontierPoint:
    try:
        return FrontierPoint(
            load=float(data["load"]),
            n_min=int(data["n_min"]),
            family=family_from_dict(data["family"]),
            downtime_minutes=float(data["downtime_minutes"]),
            annual_cost=float(data["annual_cost"]),
            design=evaluated_tier_design_from_dict(data["design"],
                                                   infrastructure))
    except KeyError as exc:
        raise ModelError("frontier point dict missing field %s" % exc)


def requirement_map_to_dict(space_map: RequirementSpaceMap) -> Dict:
    """The versioned canonical dict form of a requirement-space map.

    Points are emitted in a canonical order -- ascending load, then
    descending downtime, then ascending cost -- independent of the
    order the builder produced them in, so any two builds of the same
    map (sharded, resumed, fault-ridden, or not) serialize to the same
    bytes.  That order is what the grid's byte-identity assertions and
    the chaos soak compare.
    """
    ordered = sorted(
        space_map.points,
        key=lambda p: (p.load, -p.downtime_minutes, p.annual_cost))
    return {
        "version": MAP_FORMAT_VERSION,
        "tier": space_map.tier,
        "loads": list(space_map.loads),
        "points": [frontier_point_to_dict(point) for point in ordered],
    }


def requirement_map_from_dict(data: Dict,
                              infrastructure: InfrastructureModel) \
        -> RequirementSpaceMap:
    version = data.get("version")
    if version != MAP_FORMAT_VERSION:
        raise ModelError("unsupported requirement map version %r "
                         "(expected %d)" % (version, MAP_FORMAT_VERSION))
    try:
        points = tuple(frontier_point_from_dict(entry, infrastructure)
                       for entry in data["points"])
        return RequirementSpaceMap(
            tier=data["tier"],
            loads=tuple(float(load) for load in data["loads"]),
            points=points)
    except KeyError as exc:
        raise ModelError("requirement map dict missing field %s" % exc)


def requirement_map_to_json(space_map: RequirementSpaceMap) -> str:
    """The canonical JSON text: sorted keys, compact separators.

    This exact byte form is the unit of comparison for the grid's
    fault-convergence guarantees; always serialize maps through here.
    """
    return json.dumps(requirement_map_to_dict(space_map),
                      sort_keys=True, separators=(",", ":"))


def requirement_map_from_json(text: str,
                              infrastructure: InfrastructureModel) \
        -> RequirementSpaceMap:
    return requirement_map_from_dict(json.loads(text), infrastructure)


def evaluation_to_dict(evaluation: DesignEvaluation) -> Dict:
    """Serialize an evaluation summary (one-way: for records/dashboards)."""
    result = {
        "design": design_to_dict(evaluation.design),
        "annual_cost": evaluation.annual_cost,
        "cost_breakdown": {
            "active_components": evaluation.cost.active_components,
            "spare_components": evaluation.cost.spare_components,
            "mechanisms": evaluation.cost.mechanisms,
        },
        "downtime_minutes": evaluation.downtime_minutes,
        "tier_downtime_minutes": {
            tier.name: tier.downtime_minutes
            for tier in evaluation.availability.tiers
        },
    }
    engines = {}
    for tier in evaluation.availability.tiers:
        if tier.provenance is None:
            continue
        provenance = tier.provenance
        entry = {"engine": provenance.engine,
                 "attempts": provenance.attempts}
        if provenance.fallback_from:
            entry["fallback_from"] = list(provenance.fallback_from)
        if provenance.cause:
            entry["cause"] = provenance.cause
        engines[tier.name] = entry
    if engines:
        result["engines"] = engines
    if evaluation.job_time is not None:
        job = evaluation.job_time
        result["job_time"] = {
            "expected_hours": (job.expected_time.as_hours
                               if job.expected_time.is_finite()
                               else None),
            "useful_fraction": job.useful_fraction,
            "overhead_factor": job.overhead_factor,
            "uptime_fraction": job.uptime_fraction,
        }
    return result
