"""Design-space search (paper section 4.1).

The search examines each tier in isolation: for every candidate
resource type it starts from the minimum resource count that meets the
performance requirement without failures, then adds resources one at a
time.  For each total it enumerates every split into active/spare, every
spare activation level, and every availability-mechanism configuration.
Once a feasible design is found, more expensive designs are rejected on
cost alone without evaluating availability (the paper's pruning rule);
the search for a resource type ends when even the cheapest conceivable
design at the next resource count costs more than the incumbent, or --
if nothing feasible has been found -- when availability degrades as
resources are added (then no feasible design exists in that direction).

Two searches are provided:

* :class:`TierSearch` for enterprise tiers (throughput + downtime);
* :class:`JobSearch` for finite applications (expected execution time),
  which exploits the structural/performance mechanism split: the
  availability model is solved once per structure and the checkpoint
  parameter sweep reuses it in closed form.

Multi-tier designs are assembled from per-tier Pareto frontiers by
exact enumeration (:func:`combine_tier_frontiers`), which subsumes the
paper's incremental per-tier tightening.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import SearchError
from ..model import JobRequirements, MechanismConfig, ResourceOption
from ..obs import current as _obs_current
from ..units import Duration, MINUTES_PER_YEAR
from .design import Design, EvaluatedTierDesign, TierDesign
from .evaluation import DesignEvaluation, DesignEvaluator


@dataclass(frozen=True)
class SearchLimits:
    """Knobs bounding the design-space enumeration.

    ``max_redundancy`` bounds how many resources beyond the failure-free
    minimum are tried (extras + spares combined).  ``spare_policy``
    selects which spare activation levels are enumerated: ``"cold"``
    (all spare components inactive -- the paper's first example),
    ``"hot"`` (all active), or ``"all"`` (every dependency-respecting
    prefix).  ``patience`` is how many consecutive resource-count
    increases may degrade availability before the search gives up when
    no feasible design has been seen.  ``fixed_settings`` pins mechanism
    parameters (e.g. the paper's Fig. 7 fixes maintenance at bronze):
    mechanism name -> {parameter: value}; listed parameters are frozen,
    others still sweep.
    """

    max_redundancy: int = 8
    patience: int = 2
    spare_policy: str = "cold"
    max_spares: Optional[int] = None
    fixed_settings: Mapping[str, Mapping[str, object]] = \
        field(default_factory=dict)

    def __post_init__(self):
        if self.max_redundancy < 0:
            raise SearchError("max_redundancy cannot be negative")
        if self.patience < 1:
            raise SearchError("patience must be >= 1")
        if self.spare_policy not in ("cold", "hot", "all"):
            raise SearchError("spare_policy must be cold|hot|all, got %r"
                              % self.spare_policy)


@dataclass
class SearchStats:
    """Counters describing how much work a search did."""

    structures_enumerated: int = 0
    availability_evaluations: int = 0
    cost_pruned: int = 0
    cache_hits: int = 0
    job_time_evaluations: int = 0
    #: Availability solves carried over from a resumed checkpoint.
    resumed_evaluations: int = 0
    #: Whole tier frontiers reused from a resumed checkpoint.
    resumed_frontiers: int = 0
    #: Candidates skipped because the parallel runtime quarantined them.
    quarantined: int = 0
    #: Prefetch batches dispatched to the parallel runtime.
    parallel_batches: int = 0
    #: Candidate wavefronts routed through the vectorized batch solver.
    batched_wavefronts: int = 0
    #: Tier evaluations solved through the vectorized batch solver.
    batched_solves: int = 0
    #: Candidates skipped because a static dominance certificate proved
    #: them no better than a probe that already missed the target.
    dominance_pruned: int = 0
    #: Probe solves spent establishing dominance-based skips.
    dominance_probes: int = 0
    #: Enumeration groups in which a probe's infeasibility pruned the
    #: dominated members.
    dominance_groups_pruned: int = 0


@dataclass(frozen=True)
class PrunedRegion:
    """Provenance of one dominance-pruned enumeration group (AVD506).

    Records exactly why a set of candidates was skipped without an
    availability solve: the ``probe`` (the group's provably-best
    mechanism combo) was evaluated, missed ``target_minutes``, and the
    ``lemma`` named here guarantees every combo in ``pruned`` is at
    least as bad.  Surfaced on
    :class:`repro.core.engine.DesignOutcome` as a lint report.
    """

    tier: str
    resource: str
    n_active: int
    n_spare: int
    spare_active_prefix: Tuple[str, ...]
    probe: str
    probe_downtime_minutes: float
    target_minutes: float
    pruned: Tuple[str, ...]
    lemma: str

    def describe(self) -> str:
        return ("%s/%s n=%d s=%d: probe %s at %.3f min/yr (> %.3f) "
                "prunes %d combo(s) [%s]"
                % (self.tier, self.resource, self.n_active, self.n_spare,
                   self.probe, self.probe_downtime_minutes,
                   self.target_minutes, len(self.pruned), self.lemma))


#: Slack added to the downtime target before a probe's infeasibility is
#: allowed to prune its group: guards engine-level float noise around
#: the mathematical bound downtime(member) >= downtime(probe).
_PRUNE_MARGIN_MINUTES = 1e-6


def _describe_combo(configs: Sequence[MechanismConfig]) -> str:
    return " + ".join(config.describe() for config in configs) or "(none)"


class _TierSearchBase:
    """Shared enumeration machinery for both search flavors.

    ``checkpoint`` (a :class:`repro.resilience.SearchCheckpoint`)
    makes the search durable: every availability solve is recorded and
    periodically flushed to disk, and a search constructed with a
    resumed checkpoint replays prior solves as cache hits instead of
    re-paying for them.

    ``runtime`` (a
    :class:`repro.parallel.ParallelEvaluationRuntime`) routes
    availability solves through supervised evaluation: with more than
    one job, each resource total's candidate structures are prefetched
    as a batch across the worker pool before the (unchanged, serial)
    decision logic consumes them from the cache -- which is why
    ``jobs=N`` reaches bit-identical designs to ``jobs=1``.
    Candidates the runtime quarantines evaluate to None and are
    skipped.  Without a runtime the legacy in-process path is used,
    byte for byte.
    """

    def __init__(self, evaluator: DesignEvaluator,
                 limits: Optional[SearchLimits] = None,
                 checkpoint=None, runtime=None, prune: bool = False,
                 batcher=None):
        """``prune`` enables static dominance pruning (TierSearch only):
        candidates a :class:`repro.lint.space.PruningCertificate` proves
        no better than an already-infeasible probe are skipped without
        an availability solve.  Sound only for deterministic,
        MTTR-monotone engines (Markov, analytic); callers gate it
        (see :class:`repro.core.engine.Aved`).  Off by default.

        ``batcher`` (a :class:`repro.batch.TierBatcher`, optional)
        routes each prefetch wavefront through the vectorized stacked
        solver instead of N scalar solves; results are bit-identical
        (see ``docs/BATCHING.md``), so enabling it never changes the
        designed outcome.  Callers gate it on engine support
        (:func:`repro.batch.batch_target`)."""
        self.evaluator = evaluator
        self.limits = limits or SearchLimits()
        self.stats = SearchStats()
        self.checkpoint = checkpoint
        self.runtime = runtime
        self.batcher = batcher
        self.prune = bool(prune)
        #: AVD506 provenance, one entry per pruned enumeration group.
        self.pruned_regions: List[PrunedRegion] = []
        self._certificates: Dict[Tuple[str, str], object] = {}
        self._availability_cache: Dict[tuple, float] = {}
        if checkpoint is not None:
            self.stats.resumed_evaluations = checkpoint.seed_cache(
                self._availability_cache)

    # -- mechanism enumeration -----------------------------------------

    def _mechanism_configs(self, name: str) -> List[MechanismConfig]:
        mechanism = self.evaluator.infrastructure.mechanism(name)
        pinned = self.limits.fixed_settings.get(name, {})
        configs = []
        for config in mechanism.configurations():
            if all(config.settings.get(key) == value
                   for key, value in pinned.items()):
                configs.append(config)
        if not configs:
            raise SearchError(
                "fixed settings %r eliminate every configuration of "
                "mechanism %r" % (dict(pinned), name))
        return configs

    def _mechanism_combos(self, names: Sequence[str]) \
            -> List[Tuple[MechanismConfig, ...]]:
        if not names:
            return [()]
        pools = [self._mechanism_configs(name) for name in names]
        return [tuple(combo) for combo in itertools.product(*pools)]

    # -- spares ----------------------------------------------------------

    def _spare_prefixes(self, resource_name: str,
                        n_spare: int) -> List[Tuple[str, ...]]:
        if n_spare == 0:
            return [()]
        resource = self.evaluator.infrastructure.resource(resource_name)
        if self.limits.spare_policy == "cold":
            return [()]
        if self.limits.spare_policy == "hot":
            return [resource.activation_prefixes()[-1]]
        return resource.activation_prefixes()

    # -- cached availability -------------------------------------------

    def _tier_unavailability(self, tier_design: TierDesign,
                             load: Optional[float]) -> Optional[float]:
        """Unavailability of one structure, or None if quarantined."""
        key = self._structure_key(tier_design, load)
        if key in self._availability_cache:
            self.stats.cache_hits += 1
            return self._availability_cache[key]
        obs = _obs_current()
        if obs.enabled:
            with obs.span("tier-solve", tier=tier_design.tier,
                          resource=tier_design.resource,
                          n_active=tier_design.n_active,
                          n_spare=tier_design.n_spare, load=load):
                return self._tier_unavailability_miss(tier_design, load,
                                                      key)
        return self._tier_unavailability_miss(tier_design, load, key)

    def _tier_unavailability_miss(self, tier_design: TierDesign,
                                  load: Optional[float],
                                  key: tuple) -> Optional[float]:
        """The cache-miss path of :meth:`_tier_unavailability`."""
        if self.runtime is not None:
            if self.runtime.is_quarantined(key):
                self.stats.quarantined += 1
                return None
            model = self.evaluator.tier_model(tier_design, load)
            value = self.runtime.evaluate_candidate(key, model)
            self.stats.availability_evaluations += 1
            if value is None:
                self.stats.quarantined += 1
                return None
            self._availability_cache[key] = value
            if self.checkpoint is not None:
                self.checkpoint.record_evaluation(key, value)
            return value
        model = self.evaluator.tier_model(tier_design, load)
        result = self.evaluator.engine.evaluate_tier(model)
        self.stats.availability_evaluations += 1
        self._availability_cache[key] = result.unavailability
        if self.checkpoint is not None:
            self.checkpoint.record_evaluation(key, result.unavailability)
        return result.unavailability

    def _prefetch_structures(self, designs: Sequence[TierDesign],
                             load: Optional[float],
                             cost_cap: float) -> None:
        """Batch-solve the structures serial evaluation is about to need.

        Active when the runtime fans out (``jobs>1``), when a batcher
        is attached (``--batch``), or both: every not-yet-cached,
        not-quarantined structure whose cost clears ``cost_cap`` is
        solved as one wavefront -- dispatched across the pool,
        vectorized through the stacked solver, or pool-dispatched in
        shape-grouped chunks that the workers vectorize -- and merged
        into the availability cache, so the serial decision loop that
        follows finds pure cache hits.  ``cost_cap`` is the incumbent
        cost at batch start; since the incumbent only improves, the
        prefetched set is always a superset of what the serial loop
        would have evaluated lazily -- speculative work, never missing
        work.  Batched members whose solve errors are omitted from the
        merge; if the decision loop actually reaches one it re-solves
        (and re-raises) through the scalar path, preserving lazy error
        semantics.
        """
        runtime = self.runtime
        parallel = runtime is not None and runtime.parallel
        batcher = self.batcher
        if not parallel and batcher is None:
            return
        tasks = []
        seen = set()
        for design in designs:
            if self.evaluator.tier_cost(design).total > cost_cap:
                continue
            key = self._structure_key(design, load)
            if key in self._availability_cache or key in seen \
                    or (runtime is not None
                        and runtime.is_quarantined(key)):
                continue
            seen.add(key)
            tasks.append((key, self.evaluator.tier_model(design, load)))
        if not tasks:
            return
        if parallel:
            # With a persistent tier-evaluation store on a plain cached
            # engine, probe it before paying for pool dispatch: warm
            # entries skip the pool entirely.  Stats bookkeeping stays
            # cache-state-independent (every task counts as an
            # evaluation and the batch still counts as a batch), so
            # cache-off, cold, and warm runs report identical search
            # statistics -- part of the byte-identical-outcome
            # contract.  Probing is only sound at the top level for a
            # plain cached engine; fallback chains cache per *rung*
            # (which rung answers is runtime fault state, not a
            # function of the model).
            probe = getattr(self.evaluator.engine, "cache_probe", None)
            merged = {}
            if probe is not None:
                remaining = []
                for key, model in tasks:
                    result = probe(model)
                    if result is not None:
                        merged[key] = result.unavailability
                    else:
                        remaining.append((key, model))
                tasks_to_run = remaining
            else:
                tasks_to_run = tasks
            if tasks_to_run:
                grouper = None
                if batcher is not None:
                    from ..batch import transport_shape_key
                    grouper = transport_shape_key
                merged.update(runtime.evaluate_batch(tasks_to_run,
                                                     grouper=grouper))
            self.stats.parallel_batches += 1
            if batcher is not None:
                self.stats.batched_wavefronts += 1
                self.stats.batched_solves += len(tasks_to_run)
        else:
            # Serial batched path.  No cache_probe pre-loop here: the
            # batcher's solve_outcomes consults the store itself (one
            # get per model, the same count the scalar warm path
            # performs), so probing first would double every lookup.
            merged = batcher.solve_tasks(tasks)
            self.stats.batched_wavefronts += 1
            self.stats.batched_solves += len(tasks)
        self.stats.availability_evaluations += len(tasks)
        self._availability_cache.update(merged)
        if self.checkpoint is not None:
            self.checkpoint.record_batch(merged.items())

    @staticmethod
    def _structure_key(tier_design: TierDesign,
                       load: Optional[float]) -> tuple:
        mech_key = tuple(sorted(
            (config.name, tuple(sorted((k, str(v))
                                       for k, v in config.settings.items())))
            for config in tier_design.mechanism_configs))
        return (tier_design.tier, tier_design.resource,
                tier_design.n_active, tier_design.n_spare,
                tier_design.spare_active_prefix, mech_key, load)

    # -- structure enumeration --------------------------------------------

    def _splits(self, option: ResourceOption, n_min: int,
                total: int) -> List[Tuple[int, int]]:
        """All (n_active, n_spare) splits of ``total`` resources.

        Splits exceeding a component type's ``max_instances`` cap are
        excluded: every resource instance (active or spare) instantiates
        each of its components.
        """
        if total > self._max_total_resources(option.resource):
            return []
        allowed = set(option.active_counts())
        max_spares = (self.limits.max_spares
                      if self.limits.max_spares is not None
                      else total)
        splits = []
        for n_active in range(n_min, total + 1):
            n_spare = total - n_active
            if n_spare > max_spares:
                continue
            if n_active in allowed:
                splits.append((n_active, n_spare))
        return splits

    def _max_total_resources(self, resource_name: str) -> int:
        """Tightest component ``max_instances`` cap over the resource."""
        resource = self.evaluator.infrastructure.resource(resource_name)
        cap = math.inf
        for slot in resource.slots:
            component = self.evaluator.infrastructure.component(
                slot.component)
            if component.max_instances is not None:
                cap = min(cap, component.max_instances)
        return cap

    def _structures_for_total(self, tier_name: str,
                              option: ResourceOption,
                              structural: Sequence[str], n_min: int,
                              total: int) -> Iterator[TierDesign]:
        """Every candidate structure using exactly ``total`` resources.

        The single source of the (split x spare-prefix x mechanism)
        enumeration order; both the serial decision loops and the
        parallel prefetch iterate it, which keeps them aligned.
        """
        for n_active, n_spare in self._splits(option, n_min, total):
            for prefix in self._spare_prefixes(option.resource, n_spare):
                for combo in self._mechanism_combos(structural):
                    yield TierDesign(tier_name, option.resource,
                                     n_active, n_spare, prefix, combo)

    def _min_cost_for_total(self, tier_name: str, option: ResourceOption,
                            structural: Sequence[str], n_min: int,
                            total: int) -> float:
        """Cheapest conceivable cost using ``total`` resources.

        Used for the paper's termination rule: once this exceeds the
        incumbent's cost, adding more resources cannot help.
        """
        best = math.inf
        for design in self._structures_for_total(tier_name, option,
                                                 structural, n_min, total):
            cost = self.evaluator.tier_cost(design).total
            if cost < best:
                best = cost
        return best


class TierSearch(_TierSearchBase):
    """Per-tier search for enterprise services (throughput + downtime)."""

    def enumerate_candidates(self, tier_name: str, load: float,
                             max_downtime: Optional[Duration] = None,
                             prune_cost_above: float = math.inf,
                             dominance_target: Optional[Duration] = None) \
            -> Iterator[EvaluatedTierDesign]:
        """Yield evaluated designs for one tier, cheapest totals first.

        When ``max_downtime`` is given the paper's termination rules
        apply; otherwise the enumeration is bounded only by
        ``max_redundancy`` (used for frontier construction).

        ``dominance_target`` feeds *only* the static dominance pruner
        (no effect unless the search was built with ``prune=True``):
        candidates provably above that downtime are skipped without a
        solve, while the paper's termination rules stay untouched.
        Frontier construction for exact multi-tier combination uses it
        with the service-level target -- a tier whose own downtime
        misses the target can never be part of a feasible series
        combination, so dropping it cannot change the optimum.
        """
        tier = self.evaluator.service.tier(tier_name)
        for option in tier.options:
            yield from self._enumerate_option(tier_name, option, load,
                                              max_downtime,
                                              prune_cost_above,
                                              dominance_target)

    def _enumerate_option(self, tier_name: str, option: ResourceOption,
                          load: float, max_downtime: Optional[Duration],
                          prune_cost_above: float,
                          dominance_target: Optional[Duration] = None) \
            -> Iterator[EvaluatedTierDesign]:
        n_min = option.min_active_for(load)
        if n_min is None:
            return
        structural, _ = self.evaluator.required_mechanisms(
            tier_name, option.resource)
        best_cost = prune_cost_above
        found_feasible = False
        previous_best_downtime = math.inf
        degradations = 0
        target_minutes = (max_downtime.as_minutes
                          if max_downtime is not None else None)
        prune_target = target_minutes
        if prune_target is None and dominance_target is not None:
            prune_target = dominance_target.as_minutes
        certificate = None
        # Pruning also requires an infinite starting cost cap: with a
        # finite one, a cost-pruned probe could leave the degradation
        # termination rule blind to downtimes the unpruned enumeration
        # would have seen (the probe-first argument needs the probe to
        # actually be solved whenever no incumbent exists yet).
        if self.prune and prune_target is not None \
                and math.isinf(prune_cost_above):
            certificate = self._pruning_certificate(tier_name, option,
                                                    structural)

        for extra in range(self.limits.max_redundancy + 1):
            total = n_min + extra
            if found_feasible:
                floor = self._min_cost_for_total(tier_name, option,
                                                 structural, n_min, total)
                if floor >= best_cost:
                    break
            designs = list(self._structures_for_total(
                tier_name, option, structural, n_min, total))
            skip: frozenset = frozenset()
            if certificate is not None:
                skip = self._dominance_skips(designs, certificate, load,
                                             prune_target, best_cost)
            self._prefetch_structures(
                [design for index, design in enumerate(designs)
                 if index not in skip], load, best_cost)
            best_downtime_this_total = math.inf
            for index, design in enumerate(designs):
                self.stats.structures_enumerated += 1
                if index in skip:
                    self.stats.dominance_pruned += 1
                    continue
                cost = self.evaluator.tier_cost(design).total
                if cost >= best_cost:
                    self.stats.cost_pruned += 1
                    continue
                unavailability = self._tier_unavailability(design, load)
                if unavailability is None:
                    continue  # quarantined by the parallel runtime
                downtime = unavailability * MINUTES_PER_YEAR
                best_downtime_this_total = min(
                    best_downtime_this_total, downtime)
                candidate = EvaluatedTierDesign(design, cost,
                                                unavailability)
                yield candidate
                if target_minutes is not None \
                        and downtime <= target_minutes:
                    found_feasible = True
                    best_cost = min(best_cost, cost)
            if target_minutes is not None and not found_feasible:
                if best_downtime_this_total >= previous_best_downtime:
                    degradations += 1
                    if degradations >= self.limits.patience:
                        break
                else:
                    degradations = 0
                previous_best_downtime = min(previous_best_downtime,
                                             best_downtime_this_total)

    # -- static dominance pruning --------------------------------------

    def _pruning_certificate(self, tier_name: str, option: ResourceOption,
                             structural: Sequence[str]):
        """Build (once per tier/resource) the dominance certificate.

        The prover receives this search's own mechanism combos and
        spare prefixes, so the certificate is aligned with -- and
        verified against -- the exact enumeration order, including any
        ``fixed_settings`` pins.
        """
        key = (tier_name, option.resource)
        if key not in self._certificates:
            # Late import: repro.core.engine imports repro.lint at
            # module load, so the reverse edge must stay lazy.
            from ..lint.space import build_pruning_certificate
            self._certificates[key] = build_pruning_certificate(
                self.evaluator, tier_name, option,
                self._mechanism_combos(structural),
                self._spare_prefixes(option.resource, 1))
        return self._certificates[key]

    def _dominance_skips(self, designs: Sequence[TierDesign], certificate,
                         load: Optional[float], target_minutes: float,
                         best_cost: float) -> frozenset:
        """Indices of ``designs`` provably infeasible via the certificate.

        Per enumeration group (a contiguous run of mechanism combos at
        one split/prefix) the certificate's probe is solved first; if
        even the probe misses the target, the dominated members cannot
        meet it either (their downtime is >= the probe's by the
        certificate's lemma) and are skipped without a solve.  Order
        safety: skipped members are infeasible, so they can never
        update the incumbent (``found_feasible``/``best_cost``), and
        the probe -- always evaluated -- contributes the group's true
        minimum downtime to the degradation-based termination rule.
        """
        skip: set = set()
        size = certificate.combo_count
        if size < 2 or len(designs) % size != 0:
            return frozenset()
        from ..lint.canonical import combo_key
        aligned = tuple(combo_key(design.mechanism_configs)
                        for design in designs[:size])
        if aligned != certificate.combo_keys:
            return frozenset()
        for start in range(0, len(designs), size):
            anchor = designs[start]
            group = certificate.group_for(anchor.n_spare > 0,
                                          anchor.spare_active_prefix)
            if group is None:
                continue
            dominated = [start + offset for offset in group.dominated]
            if not any(self.evaluator.tier_cost(designs[index]).total
                       < best_cost for index in dominated):
                continue  # every skippable member is cost-pruned anyway
            probe = designs[start + group.least_index]
            self.stats.dominance_probes += 1
            unavailability = self._tier_unavailability(probe, load)
            if unavailability is None:
                continue  # quarantined: no bound established
            probe_downtime = unavailability * MINUTES_PER_YEAR
            if probe_downtime <= target_minutes + _PRUNE_MARGIN_MINUTES:
                continue  # probe feasible-ish: members must be examined
            skip.update(dominated)
            self.stats.dominance_groups_pruned += 1
            self.pruned_regions.append(PrunedRegion(
                tier=anchor.tier, resource=anchor.resource,
                n_active=anchor.n_active, n_spare=anchor.n_spare,
                spare_active_prefix=anchor.spare_active_prefix,
                probe=_describe_combo(probe.mechanism_configs),
                probe_downtime_minutes=probe_downtime,
                target_minutes=target_minutes,
                pruned=tuple(
                    _describe_combo(designs[index].mechanism_configs)
                    for index in dominated),
                lemma=group.lemma))
        return frozenset(skip)

    def best_tier_design(self, tier_name: str, load: float,
                         max_downtime: Duration) \
            -> Optional[EvaluatedTierDesign]:
        """Minimum-cost design for one tier, or None if infeasible."""
        obs = _obs_current()
        if obs.enabled:
            with obs.span("tier-search", tier=tier_name, load=load,
                          mode="best"):
                return self._best_tier_design(tier_name, load,
                                              max_downtime)
        return self._best_tier_design(tier_name, load, max_downtime)

    def _best_tier_design(self, tier_name: str, load: float,
                          max_downtime: Duration) \
            -> Optional[EvaluatedTierDesign]:
        best: Optional[EvaluatedTierDesign] = None
        target = max_downtime.as_minutes
        for candidate in self.enumerate_candidates(tier_name, load,
                                                   max_downtime):
            if candidate.downtime_minutes <= target:
                if best is None or candidate.annual_cost < best.annual_cost:
                    best = candidate
        return best

    def tier_frontier(self, tier_name: str, load: float,
                      dominance_target: Optional[Duration] = None) \
            -> List[EvaluatedTierDesign]:
        """Pareto frontier (cost vs downtime) for one tier.

        Sorted by increasing cost / decreasing downtime; the first entry
        is the cheapest design at all, the last the most available one
        within the enumeration bounds.  With a checkpoint attached, a
        frontier this tier completed in a previous (interrupted) run is
        reused verbatim, and a freshly computed one is recorded.

        ``dominance_target`` (with ``prune=True``) statically drops
        candidates provably above that downtime -- sound for exact
        series combination against the same target, where such entries
        can never appear in a feasible combination.
        """
        obs = _obs_current()
        if obs.enabled:
            with obs.span("tier-search", tier=tier_name, load=load,
                          mode="frontier"):
                return self._tier_frontier(tier_name, load,
                                           dominance_target)
        return self._tier_frontier(tier_name, load, dominance_target)

    def _tier_frontier(self, tier_name: str, load: float,
                       dominance_target: Optional[Duration] = None) \
            -> List[EvaluatedTierDesign]:
        if self.checkpoint is not None:
            stored = self.checkpoint.frontier_for(
                tier_name, load, self.evaluator.infrastructure)
            if stored is not None:
                self.stats.resumed_frontiers += 1
                return stored
        pruned_before = self.stats.dominance_pruned
        candidates = list(self.enumerate_candidates(
            tier_name, load, dominance_target=dominance_target))
        frontier = pareto_filter(candidates)
        # A dominance-pruned frontier is target-specific (entries above
        # the target are missing), so it must not be recorded where a
        # later run with different flags would reuse it verbatim.
        if self.checkpoint is not None \
                and self.stats.dominance_pruned == pruned_before:
            self.checkpoint.store_frontier(tier_name, load, frontier)
        return frontier

    def best_within_budget(self, tier_name: str, load: float,
                           max_annual_cost: float) \
            -> Optional[EvaluatedTierDesign]:
        """The dual problem: minimize downtime within a cost budget.

        The paper optimizes cost subject to availability; procurement
        often runs the other way ("what is the most available design
        $50k buys?").  Returns the lowest-downtime frontier design not
        exceeding the budget, or None if even the cheapest
        load-carrying design costs more.
        """
        frontier = self.tier_frontier(tier_name, load)
        affordable = [candidate for candidate in frontier
                      if candidate.annual_cost
                      <= max_annual_cost + 1e-9]
        if not affordable:
            return None
        return min(affordable,
                   key=lambda candidate: (candidate.unavailability,
                                          candidate.annual_cost))


def pareto_filter(candidates: Sequence[EvaluatedTierDesign]) \
        -> List[EvaluatedTierDesign]:
    """Keep the non-dominated (cost, unavailability) candidates."""
    ordered = sorted(candidates,
                     key=lambda c: (c.annual_cost, c.unavailability))
    frontier: List[EvaluatedTierDesign] = []
    best_unavailability = math.inf
    for candidate in ordered:
        if candidate.unavailability < best_unavailability - 1e-15:
            frontier.append(candidate)
            best_unavailability = candidate.unavailability
    return frontier


def combine_tier_frontiers(
        frontiers: Sequence[List[EvaluatedTierDesign]],
        max_downtime: Duration,
        max_combinations: int = 2_000_000) -> Optional[Design]:
    """Assemble the min-cost multi-tier design from per-tier frontiers.

    Exact enumeration over the frontier product with branch-and-bound
    on cost; tiers compose in series
    (``1 - prod(1 - u_i) <= requirement``).
    """
    if not frontiers:
        raise SearchError("no tier frontiers to combine")
    if any(not frontier for frontier in frontiers):
        return None
    size = 1
    for frontier in frontiers:
        size *= len(frontier)
    if size > max_combinations:
        raise SearchError(
            "frontier product has %d combinations (> %d); tighten the "
            "search limits" % (size, max_combinations))

    target = max_downtime.as_minutes / MINUTES_PER_YEAR
    best_cost = math.inf
    best: Optional[Tuple[EvaluatedTierDesign, ...]] = None
    # Sort each frontier by cost so prefix sums can bound the search.
    sorted_frontiers = [sorted(frontier, key=lambda c: c.annual_cost)
                        for frontier in frontiers]
    min_cost_suffix = [min(c.annual_cost for c in frontier)
                       for frontier in sorted_frontiers]
    suffix_floor = [0.0] * (len(frontiers) + 1)
    for index in range(len(frontiers) - 1, -1, -1):
        suffix_floor[index] = suffix_floor[index + 1] + \
            min_cost_suffix[index]

    def recurse(index: int, cost_so_far: float, up_so_far: float,
                chosen: Tuple[EvaluatedTierDesign, ...]) -> None:
        nonlocal best_cost, best
        if cost_so_far + suffix_floor[index] >= best_cost:
            return
        if index == len(sorted_frontiers):
            if 1.0 - up_so_far <= target + 1e-15:
                best_cost = cost_so_far
                best = chosen
            return
        for candidate in sorted_frontiers[index]:
            cost = cost_so_far + candidate.annual_cost
            if cost + suffix_floor[index + 1] >= best_cost:
                break  # frontier sorted by cost: no cheaper entries left
            recurse(index + 1, cost,
                    up_so_far * (1.0 - candidate.unavailability),
                    chosen + (candidate,))

    recurse(0, 0.0, 1.0, ())
    if best is None:
        return None
    return Design(tuple(candidate.design for candidate in best))


def refine_tier_frontiers_greedy(
        frontiers: Sequence[List[EvaluatedTierDesign]],
        max_downtime: Duration) -> Optional[Design]:
    """The paper's incremental multi-tier refinement (section 4.1).

    Start from each tier's individually cheapest design; while the
    combined (series) downtime exceeds the requirement, "make the
    requirements for one tier incrementally more aggressive": advance
    the tier whose next Pareto step buys downtime at the lowest
    marginal cost.  Greedy, hence possibly suboptimal --
    :func:`combine_tier_frontiers` is the exact alternative; the search
    ablation benchmark compares them.
    """
    if not frontiers:
        raise SearchError("no tier frontiers to combine")
    if any(not frontier for frontier in frontiers):
        return None
    # Sort each frontier from cheapest/dirtiest to priciest/cleanest.
    ladders = [sorted(frontier, key=lambda c: c.annual_cost)
               for frontier in frontiers]
    indexes = [0] * len(ladders)
    target = max_downtime.as_minutes / MINUTES_PER_YEAR

    def combined(index_vector) -> float:
        up = 1.0
        for ladder, index in zip(ladders, index_vector):
            up *= 1.0 - ladder[index].unavailability
        return 1.0 - up

    while combined(indexes) > target + 1e-15:
        best_tier = -1
        best_marginal = math.inf
        current = combined(indexes)
        for tier_index, ladder in enumerate(ladders):
            if indexes[tier_index] + 1 >= len(ladder):
                continue
            trial = list(indexes)
            trial[tier_index] += 1
            reduction = current - combined(trial)
            step_cost = (ladder[trial[tier_index]].annual_cost
                         - ladder[indexes[tier_index]].annual_cost)
            if reduction <= 0:
                continue
            marginal = step_cost / reduction
            if marginal < best_marginal:
                best_marginal = marginal
                best_tier = tier_index
        if best_tier < 0:
            return None  # no tier can be tightened further
        indexes[best_tier] += 1
    return Design(tuple(ladder[index].design
                        for ladder, index in zip(ladders, indexes)))


class JobSearch(_TierSearchBase):
    """Search for finite applications (paper's scientific example).

    The service must have a single tier (the compute tier).  The
    availability model is solved once per structure (resource type,
    active/spare split, spare level, structural mechanisms); checkpoint
    parameters sweep in closed form on top of it.
    """

    def best_design(self, requirements: JobRequirements) \
            -> Optional[DesignEvaluation]:
        obs = _obs_current()
        if obs.enabled:
            with obs.span("job-search",
                          service=self.evaluator.service.name):
                return self._best_design(requirements)
        return self._best_design(requirements)

    def _best_design(self, requirements: JobRequirements) \
            -> Optional[DesignEvaluation]:
        service = self.evaluator.service
        if not service.is_finite_job:
            raise SearchError("service %r has no job size; use TierSearch"
                              % service.name)
        if len(service.tiers) != 1:
            raise SearchError("job search supports single-tier services")
        tier = service.tiers[0]
        best: Optional[DesignEvaluation] = None
        for option in tier.options:
            candidate = self._search_option(tier.name, option, requirements,
                                            best)
            if candidate is not None and (
                    best is None
                    or candidate.annual_cost < best.annual_cost):
                best = candidate
        return best

    # ------------------------------------------------------------------

    def _search_option(self, tier_name: str, option: ResourceOption,
                       requirements: JobRequirements,
                       incumbent: Optional[DesignEvaluation]) \
            -> Optional[DesignEvaluation]:
        n_min = self._min_active_for_deadline(option, requirements)
        if n_min is None:
            return None
        structural, performance = self.evaluator.required_mechanisms(
            tier_name, option.resource)
        perf_combos = self._mechanism_combos(performance)
        best = incumbent
        best_time_previous = math.inf
        degradations = 0

        for extra in range(self.limits.max_redundancy + 1):
            total = n_min + extra
            if best is not None:
                floor = self._min_cost_for_total(tier_name, option,
                                                 structural, n_min, total)
                if floor >= best.annual_cost:
                    break
            structures = list(self._structures_for_total(
                tier_name, option, structural, n_min, total))
            # The structural design's cost lower-bounds every full
            # (structural + performance) design built on it, so this
            # cap keeps the prefetch a superset of the lazy solves.
            self._prefetch_structures(
                structures, None,
                best.annual_cost + _COST_TIE_EPSILON
                if best is not None else math.inf)
            best_time_this_total = math.inf
            for structure in structures:
                evaluation, best_time = self._evaluate_structure(
                    tier_name, option, structure.n_active,
                    structure.n_spare, structure.spare_active_prefix,
                    structure.mechanism_configs, perf_combos,
                    requirements, best)
                best_time_this_total = min(best_time_this_total,
                                           best_time)
                if evaluation is not None:
                    best = evaluation
            if best is None or not self._meets(best, requirements):
                if best_time_this_total >= best_time_previous:
                    degradations += 1
                    if degradations >= self.limits.patience:
                        break
                else:
                    degradations = 0
                best_time_previous = min(best_time_previous,
                                         best_time_this_total)
        if best is not None and self._meets(best, requirements):
            return best
        return None

    @staticmethod
    def _meets(evaluation: DesignEvaluation,
               requirements: JobRequirements) -> bool:
        return (evaluation.job_time is not None
                and evaluation.job_time.expected_time.is_finite()
                and evaluation.job_time.expected_time
                <= requirements.max_execution_time)

    def _min_active_for_deadline(self, option: ResourceOption,
                                 requirements: JobRequirements) \
            -> Optional[int]:
        """Smallest n whose *failure-free, overhead-free* time meets the
        deadline -- the paper's starting point for the resource sweep."""
        job_size = self.evaluator.service.job_size
        hours = requirements.max_execution_time.as_hours
        needed = job_size / hours
        return option.min_active_for(needed)

    def _evaluate_structure(self, tier_name: str, option: ResourceOption,
                            n_active: int, n_spare: int,
                            prefix: Tuple[str, ...],
                            structural_combo: Tuple[MechanismConfig, ...],
                            perf_combos: Sequence[Tuple[MechanismConfig,
                                                        ...]],
                            requirements: JobRequirements,
                            incumbent: Optional[DesignEvaluation]) \
            -> Tuple[Optional[DesignEvaluation], float]:
        """Evaluate one structure across all performance-mechanism combos.

        Returns (an evaluation improving on ``incumbent`` or None, best
        expected job time seen) -- the latter feeds the
        degradation-based termination rule.  "Improving" is
        lexicographic: lower cost wins; at equal cost, lower expected
        job time wins (the paper reports the *optimal* checkpoint
        configuration, not just any feasible one).
        """
        self.stats.structures_enumerated += 1
        evaluator = self.evaluator
        best_time = math.inf
        best_eval = incumbent

        for perf_combo in perf_combos:
            design = Design((TierDesign(tier_name, option.resource,
                                        n_active, n_spare, prefix,
                                        structural_combo + perf_combo),))
            cost = evaluator.design_cost(design)
            if not _may_improve(cost.total, best_eval):
                self.stats.cost_pruned += 1
                continue
            # Availability depends only on the structural part, so the
            # cached solve is shared across the performance sweep.
            unavailability = self._structural_unavailability(
                tier_name, option, n_active, n_spare, prefix,
                structural_combo)
            if unavailability is None:
                # Quarantined structure: no performance combo can use
                # it either, so the whole sweep is moot.
                return None, best_time
            availability = self._as_result(tier_name, unavailability)
            job_time = evaluator.job_time(design, availability)
            self.stats.job_time_evaluations += 1
            hours = job_time.expected_time.as_hours \
                if job_time.expected_time.is_finite() else math.inf
            best_time = min(best_time, hours)
            feasible = (job_time.expected_time.is_finite()
                        and job_time.expected_time
                        <= requirements.max_execution_time)
            if feasible:
                evaluation = DesignEvaluation(design, cost, availability,
                                              job_time)
                if _improves(evaluation, best_eval):
                    best_eval = evaluation
        if best_eval is incumbent:
            return None, best_time
        return best_eval, best_time

    def _structural_unavailability(self, tier_name: str,
                                   option: ResourceOption, n_active: int,
                                   n_spare: int, prefix: Tuple[str, ...],
                                   combo: Tuple[MechanismConfig, ...]) \
            -> Optional[float]:
        design = TierDesign(tier_name, option.resource, n_active, n_spare,
                            prefix, combo)
        return self._tier_unavailability(design, None)

    @staticmethod
    def _as_result(tier_name: str, unavailability: float):
        from ..availability import AvailabilityResult, TierResult
        tier = TierResult(tier_name, unavailability)
        return AvailabilityResult((tier,), unavailability)


_COST_TIE_EPSILON = 1e-6


def _may_improve(cost: float,
                 incumbent: Optional[DesignEvaluation]) -> bool:
    """Could a design at ``cost`` beat the incumbent lexicographically?"""
    if incumbent is None:
        return True
    return cost <= incumbent.annual_cost + _COST_TIE_EPSILON


def _improves(candidate: DesignEvaluation,
              incumbent: Optional[DesignEvaluation]) -> bool:
    """Lexicographic (cost, expected job time) improvement test."""
    if incumbent is None:
        return True
    if candidate.annual_cost < incumbent.annual_cost - _COST_TIE_EPSILON:
        return True
    if candidate.annual_cost > incumbent.annual_cost + _COST_TIE_EPSILON:
        return False
    if incumbent.job_time is None:
        return True
    return (candidate.job_time.expected_time
            < incumbent.job_time.expected_time)
