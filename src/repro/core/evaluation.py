"""Design evaluation: availability model generation, cost, job time.

This module implements the "Design Evaluation" half of the paper's
section 4: given a resolved :class:`~repro.core.design.Design`, it

* generates the numeric :class:`~repro.availability.TierAvailabilityModel`
  for each tier (section 4.2's n, m, s, MTBF_i, MTTR_i, FailoverTime_i),
* computes the design's annual cost,
* feeds the tier models to an availability engine and composes tiers in
  series, and
* for finite applications, derives the expected job completion time
  from the loss window, the tier failure rate, and the uptime fraction
  (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..availability import (AvailabilityEngine, AvailabilityResult,
                            FailureModeEntry, JobTimeEstimate, MarkovEngine,
                            TierAvailabilityModel, estimate_job_time)
from ..cost import CostBreakdown, tier_cost
from ..errors import EvaluationError
from ..model import (InfrastructureModel, JobRequirements, OperationalMode,
                     ResourceOption, ServiceModel, ServiceRequirements)
from ..obs import current as _obs_current
from ..units import Duration, WorkAmount
from .design import Design, TierDesign


@dataclass(frozen=True)
class DesignEvaluation:
    """Everything the search needs to accept/reject/compare a design."""

    design: Design
    cost: CostBreakdown
    availability: AvailabilityResult
    job_time: Optional[JobTimeEstimate] = None

    @property
    def annual_cost(self) -> float:
        return self.cost.total

    @property
    def downtime_minutes(self) -> float:
        return self.availability.downtime_minutes

    def engines_used(self) -> Tuple[Tuple[str, str], ...]:
        """(tier, engine) pairs, from per-tier provenance records.

        Tiers evaluated by a plain engine (no provenance attached)
        are omitted; a resilient run reports every tier here.
        """
        return tuple((tier.name, tier.provenance.engine)
                     for tier in self.availability.tiers
                     if tier.provenance is not None)

    def meets(self, requirements) -> bool:
        """Does this design satisfy the given requirements object?"""
        if isinstance(requirements, ServiceRequirements):
            return (self.availability.annual_downtime
                    <= requirements.max_annual_downtime)
        if isinstance(requirements, JobRequirements):
            return (self.job_time is not None
                    and self.job_time.expected_time.is_finite()
                    and self.job_time.expected_time
                    <= requirements.max_execution_time)
        raise EvaluationError("unknown requirements type %r"
                              % type(requirements).__name__)


class DesignEvaluator:
    """Evaluates designs against an infrastructure + service model pair."""

    def __init__(self, infrastructure: InfrastructureModel,
                 service: ServiceModel,
                 engine: Optional[AvailabilityEngine] = None,
                 repair_crew: Optional[int] = None):
        """``repair_crew`` optionally bounds concurrent repairs per tier
        (None = the paper's implicit unlimited-staff assumption)."""
        self.infrastructure = infrastructure
        self.service = service
        self.engine = engine if engine is not None else MarkovEngine()
        self.repair_crew = repair_crew
        # Resolved failure-mode entries keyed by (resource, spare
        # prefix, mechanism combo) -- every input the entries depend
        # on.  Entries are frozen dataclasses, so sharing one tuple
        # across the many designs that differ only in (n, s) is safe
        # and skips re-deriving identical Duration arithmetic.
        self._mode_entry_cache: dict = {}
        self._tier_cost_cache: dict = {}

    # ------------------------------------------------------------------
    # Availability model generation (paper section 4.2)
    # ------------------------------------------------------------------

    def tier_model(self, tier_design: TierDesign,
                   required_throughput: Optional[float] = None) \
            -> TierAvailabilityModel:
        """Generate the numeric availability model for one tier design."""
        obs = _obs_current()
        if obs.enabled:
            with obs.span("model-gen", tier=tier_design.tier,
                          resource=tier_design.resource):
                return self._tier_model(tier_design, required_throughput)
        return self._tier_model(tier_design, required_throughput)

    def _tier_model(self, tier_design: TierDesign,
                    required_throughput: Optional[float]) \
            -> TierAvailabilityModel:
        resource = self.infrastructure.resource(tier_design.resource)
        m = self.minimum_active(tier_design, required_throughput)
        cache_key = (tier_design.resource,
                     tier_design.spare_active_prefix,
                     tuple((config.name,
                            tuple(sorted((k, str(v)) for k, v
                                         in config.settings.items())))
                           for config in tier_design.mechanism_configs))
        modes = self._mode_entry_cache.get(cache_key)
        if modes is None:
            spare_modes = resource.modes_for_prefix(
                tier_design.spare_active_prefix)
            modes = tuple(self.failure_mode_entries(
                resource, spare_modes,
                lambda failure: self._resolve_mttr(tier_design, failure)))
            self._mode_entry_cache[cache_key] = modes
        return TierAvailabilityModel(tier_design.tier,
                                     n=tier_design.n_active, m=m,
                                     s=tier_design.n_spare,
                                     modes=modes,
                                     repair_crew=self.repair_crew)

    def failure_mode_entries(self, resource,
                             spare_modes,
                             resolve_mttr) -> List[FailureModeEntry]:
        """Resolved failure-mode entries for a resource (section 4.2).

        ``resolve_mttr`` maps a component :class:`FailureMode` to its
        concrete repair :class:`Duration` -- the only mechanism-dependent
        input.  Shared between tier-model generation here and the static
        dominance prover (:mod:`repro.lint.space`), which sweeps
        mechanism combos without constructing tier designs; both must
        derive MTTR/failover vectors identically for the prover's
        certificates to be sound.
        """
        activation = resource.activation_time(spare_modes)
        modes: List[FailureModeEntry] = []
        for slot in resource.slots:
            component = self.infrastructure.component(slot.component)
            restart = resource.restart_time(slot.component)
            susceptible = (spare_modes[slot.component]
                           is OperationalMode.ACTIVE)
            for failure in component.failure_modes:
                repair = resolve_mttr(failure)
                mttr_total = failure.detect_time + repair + restart
                failover = (failure.detect_time + resource.reconfig_time
                            + activation)
                modes.append(FailureModeEntry(
                    name="%s.%s" % (slot.component, failure.name),
                    mtbf=failure.mtbf,
                    mttr=mttr_total,
                    failover_time=failover,
                    spare_susceptible=susceptible))
        return modes

    def minimum_active(self, tier_design: TierDesign,
                       required_throughput: Optional[float]) -> int:
        """The paper's ``m`` (section 4.2 item 2)."""
        option = self._option(tier_design)
        from ..model import FailureScope, Sizing
        if (option.sizing is Sizing.STATIC
                or option.failure_scope is FailureScope.TIER):
            return tier_design.n_active
        if required_throughput is None:
            raise EvaluationError(
                "tier %r has dynamic sizing; a throughput requirement is "
                "needed to compute m" % tier_design.tier)
        m = option.min_active_for(required_throughput)
        if m is None:
            raise EvaluationError(
                "tier %r cannot meet throughput %g with any allowed "
                "resource count" % (tier_design.tier, required_throughput))
        if m > tier_design.n_active:
            raise EvaluationError(
                "tier %r design has %d active resources but needs %d for "
                "throughput %g" % (tier_design.tier, tier_design.n_active,
                                   m, required_throughput))
        return m

    def _resolve_mttr(self, tier_design: TierDesign, failure) -> Duration:
        mechanism_name = failure.mttr_mechanism
        if mechanism_name is None:
            return failure.mttr
        config = tier_design.mechanism_config(mechanism_name)
        return config.duration_attribute("mttr")

    def _option(self, tier_design: TierDesign) -> ResourceOption:
        return self.service.tier(tier_design.tier).option_for(
            tier_design.resource)

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------

    def tier_cost(self, tier_design: TierDesign) -> CostBreakdown:
        # Cost is a pure function of the design against the static
        # infrastructure; the search asks for the same design's cost
        # several times (prefetch filter, cost pruning, decision loop),
        # so memoize per design instance.
        cached = self._tier_cost_cache.get(tier_design)
        if cached is not None:
            return cached
        resource = self.infrastructure.resource(tier_design.resource)
        spare_modes = resource.modes_for_prefix(
            tier_design.spare_active_prefix)
        cost = tier_cost(self.infrastructure, resource,
                         tier_design.n_active, tier_design.n_spare,
                         spare_modes, tier_design.mechanism_configs)
        self._tier_cost_cache[tier_design] = cost
        return cost

    def design_cost(self, design: Design) -> CostBreakdown:
        total = None
        for tier_design in design.tiers:
            cost = self.tier_cost(tier_design)
            total = cost if total is None else total + cost
        return total

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------

    def availability(self, design: Design,
                     required_throughput: Optional[float] = None) \
            -> AvailabilityResult:
        models = [self.tier_model(tier_design, required_throughput)
                  for tier_design in design.tiers]
        return self.engine.evaluate(models)

    def evaluate(self, design: Design, requirements) -> DesignEvaluation:
        """Evaluate cost, availability and (for jobs) completion time."""
        obs = _obs_current()
        if obs.enabled:
            with obs.span("verify-design", tiers=len(design.tiers)):
                return self._evaluate(design, requirements)
        return self._evaluate(design, requirements)

    def _evaluate(self, design: Design, requirements) -> DesignEvaluation:
        throughput = (requirements.throughput
                      if isinstance(requirements, ServiceRequirements)
                      else None)
        cost = self.design_cost(design)
        availability = self.availability(design, throughput)
        job_time = None
        if self.service.is_finite_job:
            job_time = self.job_time(design, availability)
        return DesignEvaluation(design, cost, availability, job_time)

    # ------------------------------------------------------------------
    # Job completion time (paper section 4.2, Eq. 1)
    # ------------------------------------------------------------------

    def job_time(self, design: Design,
                 availability: Optional[AvailabilityResult] = None) \
            -> JobTimeEstimate:
        """Expected completion time of the service's finite job."""
        if not self.service.is_finite_job:
            raise EvaluationError("service %r is not a finite job"
                                  % self.service.name)
        if availability is None:
            availability = self.availability(design)

        tier_design, loss_window = self._loss_window(design)
        option = self._option(tier_design)
        n = tier_design.n_active
        throughput = option.performance.throughput(n)
        if throughput <= 0:
            raise EvaluationError("tier %r has zero throughput at n=%d"
                                  % (tier_design.tier, n))
        overhead = self._overhead_factor(tier_design, option)
        model = self.tier_model(tier_design)
        tier_mtbf = model.tier_mtbf()
        if loss_window is None:
            # No checkpointing: worst case, the whole job can be lost.
            loss_window = Duration.hours(
                self.service.job_size / (throughput / overhead))
        elif isinstance(loss_window, WorkAmount):
            # Work-unit window (paper footnote 1): convert via the
            # performance model at the effective (overhead-adjusted)
            # processing rate.
            loss_window = loss_window.time_at(throughput / overhead)
        return estimate_job_time(
            job_size=self.service.job_size,
            throughput_per_hour=throughput,
            overhead_factor=overhead,
            loss_window=loss_window,
            tier_mtbf=tier_mtbf,
            uptime_fraction=availability.availability)

    def _loss_window(self, design: Design) \
            -> Tuple[TierDesign, Optional[Duration]]:
        """Locate the design's loss window and the tier that owns it.

        Exactly one tier may carry loss-window components; if none does,
        the first (single) tier is the compute tier and the loss window
        is "the whole job" (returned as None for the caller to derive).
        """
        owner: Optional[TierDesign] = None
        window: Optional[Duration] = None
        for tier_design in design.tiers:
            resource = self.infrastructure.resource(tier_design.resource)
            for slot in resource.slots:
                component = self.infrastructure.component(slot.component)
                if component.loss_window is None:
                    continue
                if owner is not None and owner.tier != tier_design.tier:
                    raise EvaluationError(
                        "loss windows in multiple tiers (%r and %r) are "
                        "not supported" % (owner.tier, tier_design.tier))
                owner = tier_design
                value = component.loss_window
                mechanism_name = component.loss_window_mechanism
                if mechanism_name is not None:
                    config = tier_design.mechanism_config(mechanism_name)
                    value = config.attribute("loss_window")
                    if isinstance(value, str):
                        value = (WorkAmount.parse(value)
                                 if value.endswith("u")
                                 else Duration.parse(value))
                if window is not None and \
                        type(value) is not type(window):
                    raise EvaluationError(
                        "cannot combine time and work-unit loss windows "
                        "in one design")
                if window is None or value > window:
                    window = value
        if owner is None:
            if len(design.tiers) != 1:
                raise EvaluationError(
                    "no loss window found and the design has several "
                    "tiers; cannot locate the compute tier")
            return design.tiers[0], None
        return owner, window

    def _overhead_factor(self, tier_design: TierDesign,
                         option: ResourceOption) -> float:
        factor = 1.0
        for use in option.mechanisms:
            if not tier_design.has_mechanism(use.mechanism):
                continue
            config = tier_design.mechanism_config(use.mechanism)
            factor *= use.overhead.factor(config.settings,
                                          tier_design.n_active)
        return factor

    # ------------------------------------------------------------------
    # Mechanism bookkeeping for the search
    # ------------------------------------------------------------------

    def required_mechanisms(self, tier_name: str, resource_name: str) \
            -> Tuple[List[str], List[str]]:
        """Mechanisms a design for this tier/resource must configure.

        Returns ``(structural, performance)``: *structural* mechanisms
        change the availability model (component MTTRs); *performance*
        mechanisms change only loss windows / execution overhead, so
        the search can sweep them without re-solving availability.
        """
        option = self.service.tier(tier_name).option_for(resource_name)
        resource = self.infrastructure.resource(resource_name)
        structural: List[str] = []
        performance: List[str] = []
        for slot in resource.slots:
            component = self.infrastructure.component(slot.component)
            for failure in component.failure_modes:
                name = failure.mttr_mechanism
                if name is not None and name not in structural:
                    structural.append(name)
            lw_name = component.loss_window_mechanism
            if lw_name is not None and lw_name not in performance:
                performance.append(lw_name)
        for use in option.mechanisms:
            if (use.mechanism not in performance
                    and use.mechanism not in structural):
                performance.append(use.mechanism)
        # A mechanism that is both structural and performance is treated
        # as structural (availability must be re-solved when it moves).
        performance = [name for name in performance
                       if name not in structural]
        return structural, performance
