"""The design engine core: designs, evaluation, search, and the facade."""

from .controller import (ControllerReport, ControllerStep,
                         RedesignController)
from .design import Design, EvaluatedTierDesign, TierDesign
from .engine import Aved, DesignOutcome
from .evaluation import DesignEvaluation, DesignEvaluator
from .explain import DesignExplanation, explain_tier_choice
from .families import DesignFamily, checkpoint_settings, family_of
from .frontier import (FrontierPoint, RequirementSpaceMap,
                       build_requirement_map)
from .search import (JobSearch, SearchLimits, SearchStats, TierSearch,
                     combine_tier_frontiers, pareto_filter,
                     refine_tier_frontiers_greedy)

__all__ = [
    "TierDesign", "Design", "EvaluatedTierDesign",
    "DesignEvaluator", "DesignEvaluation",
    "TierSearch", "JobSearch", "SearchLimits", "SearchStats",
    "combine_tier_frontiers", "pareto_filter",
    "refine_tier_frontiers_greedy",
    "DesignFamily", "family_of", "checkpoint_settings",
    "FrontierPoint", "RequirementSpaceMap", "build_requirement_map",
    "Aved", "DesignOutcome",
    "RedesignController", "ControllerReport", "ControllerStep",
    "DesignExplanation", "explain_tier_choice",
]
