"""The Aved engine facade (paper Fig. 1).

:class:`Aved` wires the pieces together: it takes the infrastructure
model, a service model, and a requirements object; validates the pair;
runs the appropriate search (tier search + frontier combination for
enterprise services, job search for finite applications); and returns
the minimum-cost design with its full evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..availability import AvailabilityEngine, MarkovEngine
from ..errors import InfeasibleError, ModelError, SearchError
from ..lint import Diagnostic, LintReport
from ..model import (InfrastructureModel, JobRequirements, ServiceModel,
                     ServiceRequirements, validate_pair)
from ..obs import current as _obs_current
from .design import Design
from .evaluation import DesignEvaluation, DesignEvaluator
from .search import (JobSearch, SearchLimits, SearchStats, TierSearch,
                     combine_tier_frontiers,
                     refine_tier_frontiers_greedy)


@dataclass(frozen=True)
class DesignOutcome:
    """The engine's output: the chosen design plus its evaluation.

    ``degradation`` reports what the resilience runtime had to do to
    produce the result -- engine fallbacks, breaker trips, retries,
    checkpoint resumption (``AVD3xx``) and parallel-runtime events
    such as worker crashes, quarantines, and pool restarts
    (``AVD4xx``); None when the run used a plain engine with no
    checkpoint or parallel runtime, empty when a resilient run saw no
    faults.

    ``metrics`` is the run's :mod:`repro.obs` metrics snapshot (a
    plain nested dict -- counters, gauges, histograms); None unless an
    observer was installed (``repro design --metrics-out``,
    ``repro profile``, or :func:`repro.obs.observing`).  Its
    ``search.*`` counters mirror :attr:`stats` field for field.

    ``pruning`` records what static dominance pruning skipped
    (``AVD506`` provenance, one diagnostic per pruned enumeration
    group); None when pruning was off or nothing was pruned.  Kept
    separate from ``degradation`` on purpose: pruning is a *proof*,
    not a fault, and must not mark the outcome :attr:`degraded`.

    ``cache`` is the tier-evaluation store's per-run counter snapshot
    (hits, misses, writes, corrupt entries quarantined, ...); None
    when the run had no cache attached.  Cache trouble -- corruption,
    failed writes, degradation to off, a verification mismatch --
    additionally lands on ``degradation`` as ``AVD6xx`` diagnostics.
    """

    design: Design
    evaluation: DesignEvaluation
    stats: SearchStats
    degradation: Optional[LintReport] = None
    metrics: Optional[Mapping] = None
    pruning: Optional[LintReport] = None
    cache: Optional[Mapping] = None

    @property
    def annual_cost(self) -> float:
        return self.evaluation.annual_cost

    @property
    def downtime_minutes(self) -> float:
        return self.evaluation.downtime_minutes

    @property
    def degraded(self) -> bool:
        """True when any fallback/trip/retry happened during the run."""
        return self.degradation is not None and len(self.degradation) > 0

    def summary(self) -> str:
        from .report import outcome_summary
        return outcome_summary(self)


class Aved:
    """Automated system design engine for availability (the paper's Aved).

    >>> from repro.spec.paper import paper_infrastructure, ecommerce_service
    >>> from repro.model import ServiceRequirements
    >>> from repro.units import Duration
    >>> engine = Aved(paper_infrastructure(), ecommerce_service())
    >>> outcome = engine.design(ServiceRequirements(
    ...     throughput=1000, max_annual_downtime=Duration.minutes(100)))
    """

    def __init__(self, infrastructure: InfrastructureModel,
                 service: ServiceModel,
                 availability_engine: Optional[AvailabilityEngine] = None,
                 limits: Optional[SearchLimits] = None,
                 combination: str = "exact",
                 repair_crew: Optional[int] = None,
                 lint: str = "warn",
                 checkpoint=None,
                 jobs: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 parallel=None,
                 prune=False,
                 cache=None,
                 cache_verify: bool = False,
                 batch: bool = False):
        """``combination`` picks the multi-tier assembly strategy:
        ``"exact"`` (branch-and-bound over the frontier product) or
        ``"greedy"`` (the paper's incremental per-tier tightening).
        ``repair_crew`` optionally bounds concurrent repairs per tier.

        ``checkpoint`` (a :class:`repro.resilience.SearchCheckpoint`)
        makes searches durable: progress snapshots to disk as the
        search runs, and a checkpoint loaded from a previous
        interrupted run resumes instead of restarting.

        ``jobs`` enables the supervised evaluation runtime
        (:mod:`repro.parallel`): ``jobs > 1`` fans availability solves
        out across a worker pool (deterministically -- the resulting
        :class:`DesignOutcome` is identical to a serial run);
        ``jobs=1`` supervises in-process (timeouts, retry, poison
        quarantine, no pool); the default None keeps the legacy
        unsupervised path.  ``task_timeout`` is the per-candidate
        wall-clock budget in seconds (requires ``jobs``).  A
        pre-built :class:`repro.parallel.ParallelEvaluationRuntime`
        can be injected via ``parallel`` instead (the caller then owns
        its lifecycle); runtimes the engine builds itself are closed
        when :meth:`design` returns.

        ``lint`` controls the static-analysis pass that runs before any
        search: ``"warn"`` (default) stores findings on
        :attr:`lint_report`; ``"error"`` additionally raises
        :class:`~repro.errors.ModelError` when any error-severity
        finding exists; ``"off"`` skips the pass (``lint_report`` is
        None).  Gating reference checks (:func:`validate_pair`) always
        run regardless.

        ``prune`` controls static dominance pruning
        (:mod:`repro.lint.space`): ``False`` (default) disables it;
        ``"auto"`` enables it when the availability engine is
        deterministic and MTTR-monotone (Markov or analytic -- the
        engines the certificates are sound for) and silently disables
        it otherwise (simulation noise or cross-run engine fallback
        could make a probe bound unreliable); ``True`` forces it on
        regardless of engine (the caller vouches for soundness).  A
        pruned run reaches the same :class:`DesignOutcome` as the
        unpruned one with fewer availability solves; provenance lands
        on :attr:`DesignOutcome.pruning`.

        ``cache`` attaches a persistent tier-evaluation store
        (:mod:`repro.cache`): a directory path or a pre-opened
        :class:`~repro.cache.TierEvaluationStore`.  Deterministic
        engines (and the deterministic rungs of a fallback chain) then
        serve repeat solves from disk; a warm cache reaches the same
        :class:`DesignOutcome` as a cold or cache-off run.
        ``cache_verify`` additionally re-solves a seeded sample of
        cache hits after the search and quarantines the whole store on
        any divergence (``AVD604``) -- the paranoid mode for stores on
        untrusted media.

        ``batch`` routes each prefetch wavefront through the
        vectorized stacked tier solver (:mod:`repro.batch`) instead of
        N independent scalar solves; the resulting
        :class:`DesignOutcome` is bit-identical (see
        ``docs/BATCHING.md``).  Only the pure Markov engine (bare or
        cached) supports batching; any other engine degrades
        gracefully to the scalar path and reports ``AVD801``.
        """
        validate_pair(infrastructure, service)
        if combination not in ("exact", "greedy"):
            raise SearchError("combination must be 'exact' or 'greedy', "
                              "got %r" % combination)
        if prune not in (False, True, "auto"):
            raise SearchError("prune must be False, True, or 'auto', "
                              "got %r" % (prune,))
        if lint not in ("off", "warn", "error"):
            raise SearchError("lint must be 'off', 'warn', or 'error', "
                              "got %r" % lint)
        self.lint_report = None
        if lint != "off":
            from ..lint import lint_pair
            self.lint_report = lint_pair(infrastructure, service)
            if lint == "error" and self.lint_report.has_errors:
                raise ModelError(
                    "lint found %d error(s) in the model pair:\n  - %s"
                    % (len(self.lint_report.errors),
                       "\n  - ".join(d.format()
                                     for d in self.lint_report.errors)))
        if jobs is not None and jobs < 1:
            raise SearchError("jobs must be >= 1, got %r" % (jobs,))
        if task_timeout is not None and jobs is None and parallel is None:
            raise SearchError("task_timeout requires jobs")
        self.infrastructure = infrastructure
        self.service = service
        self.limits = limits or SearchLimits()
        self.combination = combination
        self.checkpoint = checkpoint
        self.prune = prune
        self.evaluator = DesignEvaluator(
            infrastructure, service,
            availability_engine if availability_engine is not None
            else MarkovEngine(),
            repair_crew=repair_crew)
        if cache_verify and cache is None:
            raise SearchError("cache_verify requires a cache")
        self.cache_store = None
        self.cache_verify = cache_verify
        if cache is not None:
            from ..cache import TierEvaluationStore, attach_cache
            store = (cache if isinstance(cache, TierEvaluationStore)
                     else TierEvaluationStore(str(cache)))
            if cache_verify and store.verify_sample <= 0:
                store.verify_sample = 8
            self.cache_store = store
            self.evaluator.engine = attach_cache(self.evaluator.engine,
                                                 store)
        self.parallel = parallel
        self._owns_runtime = False
        if parallel is None and jobs is not None:
            from ..parallel import make_runtime
            self.parallel = make_runtime(self.evaluator.engine, jobs,
                                         task_timeout=task_timeout)
            self._owns_runtime = True
        # Batching is resolved AFTER cache attachment so the batcher
        # sees the cache-wrapped engine and keeps warm-path lookup
        # counts identical to the scalar path.
        self.batcher = None
        self._batch_log = None
        if batch:
            from ..batch import TierBatcher, batch_target
            from ..resilience.events import (BATCH_UNSUPPORTED,
                                             DegradationLog)
            self._batch_log = DegradationLog()
            target = batch_target(self.evaluator.engine)
            if target is None:
                self._batch_log.add(
                    BATCH_UNSUPPORTED,
                    engine=type(self.evaluator.engine).__name__,
                    detail="engine does not support vectorized batch "
                           "solves; searching on the scalar path")
            else:
                self.batcher = TierBatcher(target, log=self._batch_log)

    # ------------------------------------------------------------------

    def design(self, requirements) -> DesignOutcome:
        """Find the minimum-cost design satisfying ``requirements``.

        Raises :class:`InfeasibleError` when no design in the modeled
        space satisfies them.
        """
        obs = _obs_current()
        if obs.enabled:
            with obs.span("design", service=self.service.name,
                          requirements=requirements.describe()
                          if hasattr(requirements, "describe")
                          else str(requirements)):
                return self._design(requirements)
        return self._design(requirements)

    def _design(self, requirements) -> DesignOutcome:
        try:
            if isinstance(requirements, ServiceRequirements):
                return self._design_service(requirements)
            if isinstance(requirements, JobRequirements):
                return self._design_job(requirements)
        finally:
            # A crashed search keeps its progress: whatever was
            # recorded since the last autosave hits the disk here.
            if self.checkpoint is not None:
                self.checkpoint.flush()
            if self.parallel is not None and self._owns_runtime:
                self.parallel.close()
        raise SearchError("unsupported requirements type %r"
                          % type(requirements).__name__)

    def _degradation_report(self) -> Optional[LintReport]:
        """Collect the resilience runtime's record of this run.

        Drains the evaluation engine's degradation log (when the
        engine keeps one -- :class:`repro.resilience.FallbackEngine`
        does) and notes checkpoint resumption.  Returns None when
        neither applies, so plain runs stay report-free.
        """
        report: Optional[LintReport] = None
        drain = getattr(self.evaluator.engine, "drain_log", None)
        if drain is not None:
            report = drain().to_lint_report()
        if self._batch_log is not None and len(self._batch_log):
            batch_report = self._batch_log.to_lint_report()
            self._batch_log.clear()
            if report is None:
                report = batch_report
            else:
                report.extend(batch_report)
        if self.parallel is not None:
            runtime_log = self.parallel.drain_log()
            if len(runtime_log):
                runtime_report = runtime_log.to_lint_report()
                if report is None:
                    report = runtime_report
                else:
                    report.extend(runtime_report)
        if self.cache_store is not None:
            # Drained store-side (not via the engine wrapper): several
            # wrappers -- fallback rungs, worker copies -- may share
            # the one store, and its log must be reported exactly once.
            cache_log = self.cache_store.drain_log()
            if len(cache_log):
                cache_report = cache_log.to_lint_report()
                if report is None:
                    report = cache_report
                else:
                    report.extend(cache_report)
        if self.checkpoint is not None:
            drain_checkpoint = getattr(self.checkpoint, "drain_log",
                                       None)
            if drain_checkpoint is not None:
                checkpoint_log = drain_checkpoint()
                if len(checkpoint_log):
                    checkpoint_report = checkpoint_log.to_lint_report()
                    if report is None:
                        report = checkpoint_report
                    else:
                        report.extend(checkpoint_report)
        if self.checkpoint is not None and self.checkpoint.resumed:
            if report is None:
                report = LintReport()
            report.add(Diagnostic.new(
                "AVD308",
                "resumed from checkpoint: %d prior solve(s), %d "
                "completed frontier(s) reused"
                % (self.checkpoint.resumed_evaluations,
                   len(self.checkpoint.completed_tiers))))
        return report

    def _prune_enabled(self) -> bool:
        """Resolve the ``prune`` setting against the active engine.

        The dominance lemma holds for deterministic, MTTR-monotone
        engines; ``"auto"`` therefore enables pruning only for the
        Markov and analytic engines, never for simulation (seeded
        noise breaks the probe bound) or a resilience fallback stack
        (the answering engine can differ per candidate).
        """
        if self.prune is True:
            return True
        if self.prune == "auto":
            from ..availability import AnalyticEngine
            from ..cache import CachedEngine
            engine = self.evaluator.engine
            if isinstance(engine, CachedEngine):
                engine = engine.inner   # caching preserves determinism
            return isinstance(engine, (MarkovEngine, AnalyticEngine))
        return False

    @staticmethod
    def _pruning_report(search) -> Optional[LintReport]:
        """AVD506 provenance for everything the search pruned."""
        regions = getattr(search, "pruned_regions", None)
        if not regions:
            return None
        report = LintReport()
        for region in regions:
            report.add(Diagnostic.new("AVD506", region.describe(),
                                      context="dominance pruning"))
        return report

    def _outcome(self, design: Design, evaluation: DesignEvaluation,
                 search) -> DesignOutcome:
        """Assemble the outcome: degradation report + metrics snapshot.

        With an observer installed, the search's own counters are
        mirrored into the registry (``search.*``) just before the
        snapshot, so the outcome's metrics always agree with its
        ``stats`` -- the invariant the observability tests pin.
        """
        stats = search.stats
        self._verify_cache()
        degradation = self._degradation_report()
        metrics = None
        obs = _obs_current()
        if obs.enabled:
            obs.metrics.publish_search_stats(stats)
            metrics = obs.metrics.snapshot()
        cache = (self.cache_store.snapshot()
                 if self.cache_store is not None else None)
        return DesignOutcome(design, evaluation, stats,
                             degradation=degradation, metrics=metrics,
                             pruning=self._pruning_report(search),
                             cache=cache)

    def _verify_cache(self) -> None:
        """Paranoid mode (``cache_verify``): re-solve sampled hits.

        Delegated to :func:`repro.cache.verify_sampled_hits`; a
        divergence quarantines the whole store, and the resulting
        ``AVD604`` event reaches the outcome via the store's
        degradation log (drained next in :meth:`_degradation_report`).
        """
        if self.cache_store is None or not self.cache_verify:
            return
        from ..cache import verify_sampled_hits
        verify_sampled_hits(self.cache_store, self.evaluator.engine)

    # ------------------------------------------------------------------

    def _design_service(self, requirements: ServiceRequirements) \
            -> DesignOutcome:
        search = TierSearch(self.evaluator, self.limits,
                            checkpoint=self.checkpoint,
                            runtime=self.parallel,
                            prune=self._prune_enabled(),
                            batcher=self.batcher)
        tier_names = [tier.name for tier in self.service.tiers]

        if len(tier_names) == 1:
            best = search.best_tier_design(tier_names[0],
                                           requirements.throughput,
                                           requirements.max_annual_downtime)
            if best is None:
                raise InfeasibleError(
                    "no design meets %s" % requirements.describe())
            design = Design((best.design,))
        else:
            # Per-tier Pareto frontiers, then exact series combination.
            # Exact combination may statically drop frontier entries
            # provably above the service target (a tier's downtime
            # lower-bounds the series downtime); greedy refinement is
            # path-dependent over the full ladder, so it gets none.
            dominance_target = (requirements.max_annual_downtime
                                if self.combination == "exact" else None)
            frontiers: List = []
            for name in tier_names:
                frontier = search.tier_frontier(
                    name, requirements.throughput,
                    dominance_target=dominance_target)
                if not frontier:
                    raise InfeasibleError(
                        "tier %r cannot carry load %g"
                        % (name, requirements.throughput))
                frontiers.append(frontier)
            obs = _obs_current()
            if obs.enabled:
                with obs.span("combine-frontiers", tiers=len(frontiers),
                              strategy=self.combination):
                    design = self._combine(frontiers, requirements)
            else:
                design = self._combine(frontiers, requirements)
            if design is None:
                raise InfeasibleError(
                    "no tier combination meets %s"
                    % requirements.describe())

        evaluation = self.evaluator.evaluate(design, requirements)
        if not evaluation.meets(requirements):
            raise InfeasibleError(
                "search result fails verification against %s"
                % requirements.describe(), best_infeasible=evaluation)
        return self._outcome(design, evaluation, search)

    def _combine(self, frontiers: List, requirements: ServiceRequirements):
        if self.combination == "greedy":
            return refine_tier_frontiers_greedy(
                frontiers, requirements.max_annual_downtime)
        return combine_tier_frontiers(
            frontiers, requirements.max_annual_downtime)

    def _design_job(self, requirements: JobRequirements) -> DesignOutcome:
        search = JobSearch(self.evaluator, self.limits,
                           checkpoint=self.checkpoint,
                           runtime=self.parallel,
                           batcher=self.batcher)
        evaluation = search.best_design(requirements)
        if evaluation is None:
            raise InfeasibleError(
                "no design meets %s" % requirements.describe())
        return self._outcome(evaluation.design, evaluation, search)
