"""Design representations: the resolved choices the search produces.

A design resolves, per tier (paper section 4): the resource type, the
number of active resources, the number of spares, the operational mode
of each component in the spares (represented as a dependency-respecting
*activation prefix*), and the value of every availability-mechanism
parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ModelError
from ..model import MechanismConfig


@dataclass(frozen=True)
class TierDesign:
    """All resolved choices for one tier."""

    tier: str
    resource: str
    n_active: int
    n_spare: int
    #: Components kept active in each spare, a prefix of the resource's
    #: startup order; () = cold spares.  Meaningless when n_spare == 0.
    spare_active_prefix: Tuple[str, ...] = ()
    mechanism_configs: Tuple[MechanismConfig, ...] = ()

    def __post_init__(self):
        if self.n_active < 1:
            raise ModelError("tier %r design: n_active must be >= 1"
                             % self.tier)
        if self.n_spare < 0:
            raise ModelError("tier %r design: n_spare cannot be negative"
                             % self.tier)
        seen = set()
        for config in self.mechanism_configs:
            if config.name in seen:
                raise ModelError(
                    "tier %r design: mechanism %r configured twice"
                    % (self.tier, config.name))
            seen.add(config.name)
        # Canonicalize: mechanism order is not semantically meaningful,
        # so normalize it for equality/hashing and serialization.
        object.__setattr__(
            self, "mechanism_configs",
            tuple(sorted(self.mechanism_configs,
                         key=lambda config: config.name)))

    @property
    def total_resources(self) -> int:
        return self.n_active + self.n_spare

    def mechanism_config(self, name: str) -> MechanismConfig:
        for config in self.mechanism_configs:
            if config.name == name:
                return config
        raise ModelError("tier %r design has no configuration for "
                         "mechanism %r" % (self.tier, name))

    def has_mechanism(self, name: str) -> bool:
        return any(config.name == name
                   for config in self.mechanism_configs)

    def describe(self) -> str:
        parts = ["%s: %s x%d" % (self.tier, self.resource, self.n_active)]
        if self.n_spare:
            spare_kind = ("cold" if not self.spare_active_prefix else
                          "warm[%s]" % ",".join(self.spare_active_prefix))
            parts.append("+%d %s spare%s" % (self.n_spare, spare_kind,
                                             "s" if self.n_spare > 1
                                             else ""))
        for config in self.mechanism_configs:
            parts.append(config.describe())
        return " ".join(parts)

    def __repr__(self) -> str:
        return "TierDesign(%s)" % self.describe()


@dataclass(frozen=True)
class Design:
    """A complete design: one :class:`TierDesign` per service tier."""

    tiers: Tuple[TierDesign, ...]

    def __post_init__(self):
        if not self.tiers:
            raise ModelError("a design needs at least one tier")
        seen = set()
        for tier in self.tiers:
            if tier.tier in seen:
                raise ModelError("duplicate tier %r in design" % tier.tier)
            seen.add(tier.tier)

    def tier(self, name: str) -> TierDesign:
        for tier_design in self.tiers:
            if tier_design.tier == name:
                return tier_design
        raise ModelError("design has no tier %r" % name)

    def describe(self) -> str:
        return "; ".join(tier.describe() for tier in self.tiers)

    def __repr__(self) -> str:
        return "Design(%s)" % self.describe()


@dataclass(frozen=True)
class EvaluatedTierDesign:
    """A tier design with its evaluated cost and downtime attached."""

    design: TierDesign
    annual_cost: float
    unavailability: float

    @property
    def downtime_minutes(self) -> float:
        from ..units import MINUTES_PER_YEAR
        return self.unavailability * MINUTES_PER_YEAR

    def dominates(self, other: "EvaluatedTierDesign") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        if self.annual_cost > other.annual_cost:
            return False
        if self.unavailability > other.unavailability:
            return False
        return (self.annual_cost < other.annual_cost
                or self.unavailability < other.unavailability)
