"""Design families: the paper's Fig. 6 grouping of optimal designs.

Fig. 6 groups designs into families identified by tuples
``(resource, contract, n_extra, n_spare)``: the resource type, the
maintenance contract level, the number of active machines beyond the
failure-free minimum, and the number of spares.  A family's member at a
given load uses however many primary machines the load requires plus
the family's fixed redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..model import MechanismConfig
from .design import TierDesign


@dataclass(frozen=True, order=True)
class DesignFamily:
    """The redundancy/contract signature of a tier design."""

    resource: str
    contract: str             # maintenance level, or "-" if none
    n_extra: int              # active resources beyond the minimum
    n_spare: int
    spare_level: Tuple[str, ...] = ()   # active prefix in spares

    def label(self) -> str:
        spare = str(self.n_spare)
        if self.n_spare and self.spare_level:
            spare += " (warm)"
        return "%s, %s, %d, %s" % (self.resource, self.contract,
                                   self.n_extra, spare)

    def __str__(self) -> str:
        return self.label()


def family_of(design: TierDesign, n_min: int,
              contract_mechanisms: Tuple[str, ...] = ("maintenanceA",
                                                      "maintenanceB")) \
        -> DesignFamily:
    """Classify a tier design into its family.

    ``n_min`` is the failure-free minimum active count at the load the
    design was generated for; ``contract_mechanisms`` names the
    mechanisms whose ``level`` parameter is reported as the contract.
    """
    contract = _contract_level(design, contract_mechanisms)
    return DesignFamily(resource=design.resource,
                        contract=contract,
                        n_extra=design.n_active - n_min,
                        n_spare=design.n_spare,
                        spare_level=design.spare_active_prefix)


def _contract_level(design: TierDesign,
                    contract_mechanisms: Tuple[str, ...]) -> str:
    for config in design.mechanism_configs:
        if config.name in contract_mechanisms:
            level = config.settings.get("level")
            if level is not None:
                return str(level)
    return "-"


def checkpoint_settings(design: TierDesign,
                        mechanism: str = "checkpoint") \
        -> Optional[MechanismConfig]:
    """The design's checkpoint configuration, if it has one."""
    if design.has_mechanism(mechanism):
        return design.mechanism_config(mechanism)
    return None
