"""A redesign controller for utility-computing deployments.

The paper's closing argument: "in self-managing environments, an engine
such as Aved is needed to automatically reevaluate and reconfigure
designs in response to changes" (section 7).  This module supplies the
controller loop around the engine:

* follow a load trajectory, re-running the tier search at each step;
* apply **hysteresis** so the deployment does not flap between designs
  of near-identical cost (reconfigurations are not free in practice);
* account the results against the obvious alternative -- statically
  provisioning for the peak -- yielding the cost saving that justifies
  the utility-computing vision.

The controller is deliberately simple (the paper proposes no specific
policy); it is exercised by the redesign benchmark and an example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import SearchError
from ..obs import current as _obs_current
from ..units import Duration
from .design import EvaluatedTierDesign
from .evaluation import DesignEvaluator
from .search import SearchLimits, TierSearch


@dataclass(frozen=True)
class ControllerStep:
    """One sampling interval's decision."""

    index: int
    load: float
    design: Optional[EvaluatedTierDesign]   # None = infeasible
    reconfigured: bool


@dataclass
class ControllerReport:
    """Outcome of running the controller over a trajectory."""

    steps: List[ControllerStep] = field(default_factory=list)
    reconfigurations: int = 0
    infeasible_steps: int = 0
    #: Mean annual-cost-rate over the trajectory (time-weighted).
    average_cost: float = 0.0
    #: Cost of statically provisioning the peak design throughout.
    static_peak_cost: float = 0.0
    #: Total one-time reconfiguration charges incurred (annualized by
    #: the caller's choice of per-switch cost; 0 when switches are free).
    reconfiguration_charges: float = 0.0

    @property
    def average_cost_with_charges(self) -> float:
        """Mean cost-rate including amortized reconfiguration charges."""
        feasible = len(self.steps) - self.infeasible_steps
        if feasible <= 0:
            return self.average_cost
        return self.average_cost + self.reconfiguration_charges / feasible

    @property
    def saving_fraction(self) -> float:
        """Relative saving of dynamic redesign vs static peak."""
        if self.static_peak_cost <= 0:
            return 0.0
        return 1.0 - self.average_cost_with_charges \
            / self.static_peak_cost


class RedesignController:
    """Re-runs the tier search along a load trajectory with hysteresis.

    ``hysteresis`` is the fractional cost improvement a new design must
    offer before the controller abandons a still-feasible incumbent
    (0.0 = always switch to the optimum; 0.1 = switch only for >=10%
    savings or on infeasibility).
    """

    def __init__(self, evaluator: DesignEvaluator, tier: str,
                 max_downtime: Duration,
                 limits: Optional[SearchLimits] = None,
                 hysteresis: float = 0.05,
                 reconfiguration_cost: float = 0.0,
                 jobs: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 cache_dir: Optional[str] = None):
        if hysteresis < 0:
            raise SearchError("hysteresis cannot be negative")
        if reconfiguration_cost < 0:
            raise SearchError("reconfiguration cost cannot be negative")
        # A persistent tier-evaluation store (repro.cache) makes the
        # repeated searches along a trajectory -- and across controller
        # runs, e.g. successive watcher epochs -- share their solves.
        # Attached before the parallel runtime so workers inherit the
        # cached engine.
        self.cache_store = None
        if cache_dir is not None:
            from ..cache import TierEvaluationStore, attach_cache
            self.cache_store = TierEvaluationStore(cache_dir)
            evaluator = DesignEvaluator(
                evaluator.infrastructure, evaluator.service,
                attach_cache(evaluator.engine, self.cache_store),
                evaluator.repair_crew)
        self.evaluator = evaluator
        self.tier = tier
        self.max_downtime = max_downtime
        self.limits = limits or SearchLimits()
        self.hysteresis = hysteresis
        self.reconfiguration_cost = reconfiguration_cost
        # The supervised runtime (repro.parallel) persists across
        # trajectory steps so the worker pool is paid for once.
        self.parallel = None
        if jobs is not None:
            from ..parallel import make_runtime
            self.parallel = make_runtime(evaluator.engine, jobs,
                                         task_timeout=task_timeout)
        self._search = TierSearch(evaluator, self.limits,
                                  runtime=self.parallel)

    # ------------------------------------------------------------------

    def run(self, loads: Sequence[float]) -> ControllerReport:
        """Walk the trajectory and return the accounting report."""
        if not loads:
            raise SearchError("empty load trajectory")
        report = ControllerReport()
        current: Optional[EvaluatedTierDesign] = None
        total_cost = 0.0
        obs = _obs_current()
        try:
            for index, load in enumerate(loads):
                decision, reconfigured = self._step(current, load)
                if obs.enabled:
                    obs.inc("controller.steps")
                if decision is None:
                    report.infeasible_steps += 1
                    current = None
                    if obs.enabled:
                        obs.inc("controller.infeasible_steps")
                else:
                    if reconfigured:
                        report.reconfigurations += 1
                        if obs.enabled:
                            obs.inc("controller.reconfigurations")
                    total_cost += decision.annual_cost
                    current = decision
                report.steps.append(ControllerStep(index, load, decision,
                                                   reconfigured))
            feasible_steps = len(loads) - report.infeasible_steps
            report.average_cost = (total_cost / feasible_steps
                                   if feasible_steps else 0.0)
            report.reconfiguration_charges = (report.reconfigurations
                                              * self.reconfiguration_cost)
            report.static_peak_cost = self._static_peak_cost(loads)
        finally:
            if self.parallel is not None:
                self.parallel.close()
        return report

    # ------------------------------------------------------------------

    def _step(self, current: Optional[EvaluatedTierDesign], load: float):
        optimum = self._search.best_tier_design(self.tier, load,
                                                self.max_downtime)
        if optimum is None:
            return None, False
        if current is None:
            return optimum, True
        if self._still_adequate(current, load) and \
                optimum.annual_cost >= current.annual_cost \
                * (1.0 - self.hysteresis):
            return current, False
        return optimum, True

    def _still_adequate(self, current: EvaluatedTierDesign,
                        load: float) -> bool:
        """Can the incumbent design carry ``load`` within the SLO?

        The design's resource counts are fixed; only ``m`` (and hence
        availability) moves with load.  Re-evaluate its downtime at the
        new load; infeasible performance (n_active too small) means no.
        """
        option = self.evaluator.service.tier(self.tier).option_for(
            current.design.resource)
        needed = option.min_active_for(load)
        if needed is None or needed > current.design.n_active:
            return False
        model = self.evaluator.tier_model(current.design, load)
        result = self.evaluator.engine.evaluate_tier(model)
        return result.annual_downtime <= self.max_downtime

    def _static_peak_cost(self, loads: Sequence[float]) -> float:
        peak = max(loads)
        best = self._search.best_tier_design(self.tier, peak,
                                             self.max_downtime)
        if best is None:
            return 0.0
        return best.annual_cost
