"""Explaining a design choice: what was rejected, and why.

An automated designer earns trust by showing its work.  Given a
requirement point and the chosen design, this module reconstructs the
local neighborhood of the decision from the tier frontier:

* the **runner-up**: the next-cheapest feasible design (what you would
  deploy if the winner were unavailable), and the premium it costs;
* the **near miss**: the most expensive *infeasible* design cheaper
  than the winner -- the design a naive cost-first process would have
  picked, and the downtime by which it misses;
* the **upgrade**: the next point up the frontier, and what one more
  "nine" (or fraction of one) would cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SearchError
from ..units import Duration
from .design import EvaluatedTierDesign
from .evaluation import DesignEvaluator
from .search import SearchLimits, TierSearch


@dataclass(frozen=True)
class DesignExplanation:
    """The decision neighborhood around a chosen tier design."""

    chosen: EvaluatedTierDesign
    runner_up: Optional[EvaluatedTierDesign]
    near_miss: Optional[EvaluatedTierDesign]
    upgrade: Optional[EvaluatedTierDesign]
    target_minutes: float

    def render(self) -> str:
        lines = ["chosen:    %s" % _line(self.chosen)]
        if self.near_miss is not None:
            gap = (self.near_miss.downtime_minutes
                   - self.target_minutes)
            lines.append("near miss: %s -- $%s cheaper but misses the "
                         "target by %.1f min/yr"
                         % (_line(self.near_miss),
                            format(round(self.chosen.annual_cost
                                         - self.near_miss.annual_cost),
                                   ",d"),
                            gap))
        if self.runner_up is not None:
            lines.append("runner-up: %s -- feasible at a $%s premium"
                         % (_line(self.runner_up),
                            format(round(self.runner_up.annual_cost
                                         - self.chosen.annual_cost),
                                   ",d")))
        if self.upgrade is not None:
            improvement = (self.chosen.downtime_minutes
                           - self.upgrade.downtime_minutes)
            lines.append("upgrade:   %s -- %.2f min/yr less downtime "
                         "for $%s more"
                         % (_line(self.upgrade), improvement,
                            format(round(self.upgrade.annual_cost
                                         - self.chosen.annual_cost),
                                   ",d")))
        return "\n".join(lines)


def _line(candidate: EvaluatedTierDesign) -> str:
    return "%-52s $%s at %.2f min/yr" % (
        candidate.design.describe()[:52],
        format(round(candidate.annual_cost), ",d"),
        candidate.downtime_minutes)


def explain_tier_choice(evaluator: DesignEvaluator, tier: str,
                        load: float, max_downtime: Duration,
                        limits: Optional[SearchLimits] = None) \
        -> DesignExplanation:
    """Reconstruct the decision neighborhood for one requirement point."""
    search = TierSearch(evaluator, limits)
    frontier = search.tier_frontier(tier, load)
    if not frontier:
        raise SearchError("no designs can carry load %g on tier %r"
                          % (load, tier))
    target = max_downtime.as_minutes
    feasible = sorted(
        (candidate for candidate in frontier
         if candidate.downtime_minutes <= target),
        key=lambda candidate: candidate.annual_cost)
    if not feasible:
        raise SearchError(
            "no frontier design meets %.3g min/yr at load %g; the best "
            "achieves %.3g"
            % (target, load,
               min(c.downtime_minutes for c in frontier)))
    chosen = feasible[0]
    runner_up = feasible[1] if len(feasible) > 1 else None

    infeasible_cheaper = [candidate for candidate in frontier
                          if candidate.downtime_minutes > target
                          and candidate.annual_cost
                          < chosen.annual_cost]
    near_miss = (max(infeasible_cheaper,
                     key=lambda candidate: candidate.annual_cost)
                 if infeasible_cheaper else None)

    better = sorted(
        (candidate for candidate in frontier
         if candidate.unavailability < chosen.unavailability),
        key=lambda candidate: candidate.annual_cost)
    upgrade = better[0] if better else None

    return DesignExplanation(chosen=chosen, runner_up=runner_up,
                             near_miss=near_miss, upgrade=upgrade,
                             target_minutes=target)
