"""Human-readable reports of designs, evaluations, and frontiers.

These formatters back the example scripts and the benchmark harnesses;
they render the same rows/series the paper's figures report.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..units import Duration
from .design import EvaluatedTierDesign
from .evaluation import DesignEvaluation


def format_cost(value: float) -> str:
    return "$%s" % format(round(value), ",d")


def format_downtime(minutes: float) -> str:
    if minutes >= 60.0:
        return "%.1f h/yr" % (minutes / 60.0)
    if minutes >= 1.0:
        return "%.1f min/yr" % minutes
    return "%.2f min/yr" % minutes


def evaluation_summary(evaluation: DesignEvaluation) -> str:
    lines = ["design: %s" % evaluation.design.describe(),
             "annual cost: %s (components %s + spares %s + mechanisms %s)"
             % (format_cost(evaluation.cost.total),
                format_cost(evaluation.cost.active_components),
                format_cost(evaluation.cost.spare_components),
                format_cost(evaluation.cost.mechanisms)),
             "expected annual downtime: %s"
             % format_downtime(evaluation.downtime_minutes)]
    degraded = [(tier.name, tier.provenance)
                for tier in evaluation.availability.tiers
                if tier.provenance is not None
                and tier.provenance.degraded]
    for tier_name, provenance in degraded:
        lines.append("  tier %s evaluated by %s"
                     % (tier_name, provenance.describe()))
    if evaluation.job_time is not None:
        job = evaluation.job_time
        lines.append(
            "expected job time: %s (useful %.1f%%, overhead x%.2f, "
            "uptime %.4f%%)"
            % (job.expected_time.format(), job.useful_fraction * 100.0,
               job.overhead_factor, job.uptime_fraction * 100.0))
    return "\n".join(lines)


def outcome_summary(outcome) -> str:
    stats = outcome.stats
    search_line = ("search: %d structures, %d availability solves "
                   "(%d cache hits, %d cost-pruned)"
                   % (stats.structures_enumerated,
                      stats.availability_evaluations, stats.cache_hits,
                      stats.cost_pruned))
    if getattr(stats, "resumed_evaluations", 0):
        search_line += (", %d solve(s) resumed from checkpoint"
                        % stats.resumed_evaluations)
    if getattr(stats, "dominance_pruned", 0):
        search_line += (", %d dominance-pruned via %d probe(s)"
                        % (stats.dominance_pruned, stats.dominance_probes))
    lines = [evaluation_summary(outcome.evaluation), search_line]
    cache = getattr(outcome, "cache", None)
    if cache is not None:
        hits = cache.get("hits", 0)
        attempts = hits + cache.get("misses", 0)
        cache_line = ("cache: %d/%d tier solves served from cache"
                      % (hits, attempts))
        if not cache.get("enabled", True):
            cache_line += " (degraded to off)"
        lines.append(cache_line)
    pruning = getattr(outcome, "pruning", None)
    if pruning is not None and len(pruning):
        lines.append("pruning certificates: %s" % pruning.summary())
    degradation = getattr(outcome, "degradation", None)
    if degradation is not None and len(degradation):
        lines.append("degradation: %s" % degradation.summary())
        for diagnostic in degradation:
            lines.append("  %s" % diagnostic.format())
    return "\n".join(lines)


def frontier_table(frontier: Sequence[EvaluatedTierDesign],
                   title: Optional[str] = None) -> str:
    """Render a tier Pareto frontier as an aligned text table."""
    header = "%-58s %14s %16s" % ("design", "annual cost", "downtime")
    rows: List[str] = []
    if title:
        rows.append(title)
    rows.append(header)
    rows.append("-" * len(header))
    for candidate in sorted(frontier, key=lambda c: c.annual_cost):
        rows.append("%-58s %14s %16s"
                    % (candidate.design.describe()[:58],
                       format_cost(candidate.annual_cost),
                       format_downtime(candidate.downtime_minutes)))
    return "\n".join(rows)


def describe_infrastructure(infrastructure) -> str:
    """A human-readable inventory of an infrastructure model."""
    lines = ["infrastructure: %d components, %d mechanisms, %d resources"
             % (len(infrastructure.components),
                len(infrastructure.mechanisms),
                len(infrastructure.resources)), ""]
    lines.append("components:")
    for component in infrastructure.components:
        modes = ", ".join(
            "%s (MTBF %s, repair %s)"
            % (mode.name, mode.mtbf.format(),
               "via <%s>" % mode.mttr_mechanism
               if mode.mttr_mechanism else mode.mttr.format())
            for mode in component.failure_modes)
        lines.append("  %-14s $%g/$%g per year (inactive/active)%s"
                     % (component.name, component.cost.inactive,
                        component.cost.active,
                        "; loss window via <%s>"
                        % component.loss_window_mechanism
                        if component.loss_window_mechanism else ""))
        if modes:
            lines.append("    failures: %s" % modes)
    lines.append("")
    lines.append("mechanisms:")
    for mechanism in infrastructure.mechanisms:
        parameters = ", ".join(
            "%s (%d settings)" % (parameter.name, len(parameter.values))
            for parameter in mechanism.parameters)
        lines.append("  %-14s params: %s; affects: %s"
                     % (mechanism.name, parameters or "none",
                        ", ".join(sorted(mechanism.effects))))
    lines.append("")
    lines.append("resources:")
    for resource in infrastructure.resources:
        chain = " -> ".join(resource.startup_order)
        lines.append("  %-6s %s (full startup %s, reconfig %s)"
                     % (resource.name, chain,
                        resource.full_startup_time().format(),
                        resource.reconfig_time.format()))
    return "\n".join(lines)


def describe_service(service) -> str:
    """A human-readable summary of a service model."""
    kind = ("finite job (size %g)" % service.job_size
            if service.is_finite_job else "always-on service")
    lines = ["service %r: %s, %d tier(s)"
             % (service.name, kind, len(service.tiers))]
    for tier in service.tiers:
        lines.append("  tier %s:" % tier.name)
        for option in tier.options:
            counts = option.active_counts()
            mechanisms = ", ".join(use.mechanism
                                   for use in option.mechanisms)
            lines.append(
                "    %-6s sizing=%s scope=%s n=[%d..%d]%s"
                % (option.resource, option.sizing, option.failure_scope,
                   counts[0], counts[-1],
                   " mechanisms: " + mechanisms if mechanisms else ""))
    return "\n".join(lines)


def requirement_grid(map_obj, downtime_grid: Sequence[float]) -> str:
    """Fig. 6 as text: optimal family label per (load, downtime) cell."""
    loads = map_obj.loads
    width = max(len("%g" % load) for load in loads) + 2
    label_width = 44
    lines = ["optimal design family per (downtime requirement, load):"]
    header = "%12s" % "downtime"
    header += "".join("%*s" % (width, "%g" % load) for load in loads)
    lines.append(header)
    for downtime in downtime_grid:
        row = "%10.4g m" % downtime
        labels = []
        for load in loads:
            point = map_obj.optimal_for(load, Duration.minutes(downtime))
            labels.append("-" if point is None else
                          _family_index(map_obj, point))
        row += "".join("%*s" % (width, label) for label in labels)
        lines.append(row)
    families = _family_legend(map_obj)
    lines.append("")
    lines.append("families:")
    for index, family in enumerate(families, start=1):
        lines.append("  %2d - %s" % (index, family.label()[:label_width]))
    return "\n".join(lines)


def _family_legend(map_obj):
    seen = []
    # Order families by (typical downtime descending) so that indexes
    # resemble the paper's top-to-bottom legend.
    curves = map_obj.family_curves()
    averages = []
    for family, points in curves.items():
        mean = sum(d for _, d in points) / len(points)
        averages.append((-mean, family))
    for _, family in sorted(averages, key=lambda item: item[0]):
        seen.append(family)
    return seen


def _family_index(map_obj, point) -> str:
    families = _family_legend(map_obj)
    try:
        return str(families.index(point.family) + 1)
    except ValueError:
        return "?"
