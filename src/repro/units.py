"""Time quantities and value ranges used throughout the Aved models.

The paper's specification language (Fig. 3) writes durations with unit
suffixes (``650d``, ``38h``, ``2m``, ``30s``) and parameter ranges in
three forms:

* enumerated:   ``[bronze,silver,gold,platinum]``
* arithmetic:   ``[1-1000,+1]``      (start, stop, additive step)
* geometric:    ``[1m-24h;*1.05]``   (start, stop, multiplicative step)

This module provides :class:`Duration` (an immutable quantity of time
stored in seconds) and the three range classes, plus parsing helpers.
All model code holds durations as :class:`Duration` rather than bare
floats so that unit mistakes fail loudly at construction time.
"""

from __future__ import annotations

import functools
import math
import re
from typing import Iterator, List, Sequence, Union

from .errors import UnitError

#: Seconds per supported unit suffix.
_UNIT_SECONDS = {
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "y": 365.0 * 86400.0,
}

_DURATION_RE = re.compile(r"^\s*([+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*([smhdy]?)\s*$")

#: Minutes in a (365-day) year -- the unit Fig. 6/8 report downtime in.
MINUTES_PER_YEAR = 365.0 * 24.0 * 60.0
SECONDS_PER_YEAR = MINUTES_PER_YEAR * 60.0
HOURS_PER_YEAR = 365.0 * 24.0


@functools.total_ordering
class Duration:
    """An immutable span of time, stored internally in seconds.

    Supports arithmetic with other durations (``+``, ``-``), scaling by
    numbers (``*``, ``/``), and ratio of two durations (``/``), which
    yields a dimensionless float.
    """

    __slots__ = ("_seconds",)

    def __init__(self, seconds: float):
        if isinstance(seconds, Duration):
            seconds = seconds._seconds
        seconds = float(seconds)
        if math.isnan(seconds):
            raise UnitError("duration cannot be NaN")
        self._seconds = seconds

    # -- constructors -------------------------------------------------

    @classmethod
    def parse(cls, text: Union[str, float, int, "Duration"]) -> "Duration":
        """Parse ``"650d"``, ``"2m"``, ``"38h"``, ``"30s"``, or a bare number.

        A bare number (no suffix) is interpreted as seconds.  Numeric
        inputs and existing :class:`Duration` objects pass through.
        """
        if isinstance(text, Duration):
            return text
        if isinstance(text, (int, float)):
            return cls(float(text))
        match = _DURATION_RE.match(text)
        if not match:
            raise UnitError("cannot parse duration: %r" % (text,))
        value, suffix = match.groups()
        scale = _UNIT_SECONDS[suffix] if suffix else 1.0
        return cls(float(value) * scale)

    @classmethod
    def seconds(cls, value: float) -> "Duration":
        return cls(value)

    @classmethod
    def minutes(cls, value: float) -> "Duration":
        return cls(value * 60.0)

    @classmethod
    def hours(cls, value: float) -> "Duration":
        return cls(value * 3600.0)

    @classmethod
    def days(cls, value: float) -> "Duration":
        return cls(value * 86400.0)

    @classmethod
    def years(cls, value: float) -> "Duration":
        return cls(value * SECONDS_PER_YEAR)

    ZERO: "Duration"

    # -- accessors ----------------------------------------------------

    @property
    def as_seconds(self) -> float:
        return self._seconds

    @property
    def as_minutes(self) -> float:
        return self._seconds / 60.0

    @property
    def as_hours(self) -> float:
        return self._seconds / 3600.0

    @property
    def as_days(self) -> float:
        return self._seconds / 86400.0

    @property
    def as_years(self) -> float:
        return self._seconds / SECONDS_PER_YEAR

    def is_zero(self) -> bool:
        return self._seconds == 0.0

    def is_finite(self) -> bool:
        return math.isfinite(self._seconds)

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        return Duration(self._seconds + other._seconds)

    def __sub__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        return Duration(self._seconds - other._seconds)

    def __mul__(self, factor: float) -> "Duration":
        if isinstance(factor, Duration):
            raise UnitError("cannot multiply two durations")
        return Duration(self._seconds * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Duration):
            if other._seconds == 0.0:
                raise ZeroDivisionError("division by zero duration")
            return self._seconds / other._seconds
        return Duration(self._seconds / float(other))

    def __neg__(self) -> "Duration":
        return Duration(-self._seconds)

    def __eq__(self, other) -> bool:
        return isinstance(other, Duration) and self._seconds == other._seconds

    def __lt__(self, other: "Duration") -> bool:
        if not isinstance(other, Duration):
            return NotImplemented
        return self._seconds < other._seconds

    def __hash__(self) -> int:
        return hash(("Duration", self._seconds))

    def __bool__(self) -> bool:
        return self._seconds != 0.0

    # -- formatting ---------------------------------------------------

    def __repr__(self) -> str:
        return "Duration(%r)" % (self.format(),)

    def format(self) -> str:
        """Render in the largest unit that yields a clean value.

        The result is canonical: formatting the parsed-back value gives
        the same string, so ``format`` is a fixed point under
        ``parse``/``format`` round trips even when it rounds (values
        are rendered to 4 significant figures when no unit is exact).
        """
        text = self._format_once()
        if not math.isfinite(self._seconds):
            return text
        rounded = Duration.parse(text)
        if rounded._seconds != self._seconds:
            return rounded._format_once()
        return text

    def _format_once(self) -> str:
        seconds = self._seconds
        if seconds == 0.0:
            return "0s"
        if not math.isfinite(seconds):
            return "inf" if seconds > 0 else "-inf"
        for suffix in ("y", "d", "h", "m"):
            scaled = seconds / _UNIT_SECONDS[suffix]
            # Prefer an exact integer value, but not absurd ones like
            # "903456m" for what is readably "627.4d".
            if 1.0 <= abs(scaled) < 10000.0 \
                    and abs(scaled - round(scaled)) < 1e-9:
                return "%g%s" % (round(scaled), suffix)
        for suffix in ("d", "h", "m"):
            scaled = seconds / _UNIT_SECONDS[suffix]
            if abs(scaled) >= 1.0:
                return "%.4g%s" % (scaled, suffix)
        return "%.4g%s" % (seconds, "s")


Duration.ZERO = Duration(0.0)


@functools.total_ordering
class WorkAmount:
    """An amount of application work, in service-specific units.

    The paper (footnote 1) allows loss windows "either in units of
    application work or in units of time", converting via the
    performance model.  ``WorkAmount`` is the work-unit form; written
    ``500u`` in specs.
    """

    __slots__ = ("_units",)

    def __init__(self, units: float):
        units = float(units)
        if math.isnan(units) or units < 0:
            raise UnitError("work amount must be a non-negative number")
        self._units = units

    @classmethod
    def parse(cls, text: Union[str, float, int,
                               "WorkAmount"]) -> "WorkAmount":
        if isinstance(text, WorkAmount):
            return text
        if isinstance(text, (int, float)):
            return cls(float(text))
        text = text.strip()
        if not text.endswith("u"):
            raise UnitError("work amounts end in 'u', got %r" % (text,))
        try:
            return cls(float(text[:-1]))
        except ValueError:
            raise UnitError("cannot parse work amount: %r" % (text,))

    @property
    def units(self) -> float:
        return self._units

    def time_at(self, throughput_per_hour: float) -> Duration:
        """Convert to wall time at a given processing rate."""
        if throughput_per_hour <= 0:
            raise UnitError("throughput must be positive to convert "
                            "work to time")
        return Duration.hours(self._units / throughput_per_hour)

    def format(self) -> str:
        return "%.12gu" % self._units

    def __eq__(self, other) -> bool:
        return isinstance(other, WorkAmount) and \
            self._units == other._units

    def __lt__(self, other: "WorkAmount") -> bool:
        if not isinstance(other, WorkAmount):
            return NotImplemented
        return self._units < other._units

    def __hash__(self) -> int:
        return hash(("WorkAmount", self._units))

    def __repr__(self) -> str:
        return "WorkAmount(%g)" % self._units


def rate_per_hour(mtbf: Duration) -> float:
    """Convert a mean-time-between-failures into an hourly event rate."""
    if mtbf.as_seconds <= 0:
        raise UnitError("MTBF must be positive, got %r" % (mtbf,))
    return 1.0 / mtbf.as_hours


def canonical_scalar(value: object) -> object:
    """Encode one attribute value as a JSON-stable primitive.

    The canonicalization contract (consumed by
    :mod:`repro.lint.canonical`): equal values encode to byte-identical
    JSON fragments regardless of the unit or spelling they were written
    in (``90s`` and ``1.5m`` are the same Duration), and the encoding
    never depends on ``dict`` iteration order or the builtin ``hash``,
    so it is stable across processes and ``PYTHONHASHSEED`` values.
    Floats are rendered via :meth:`float.hex` -- an exact, locale- and
    platform-independent spelling of the IEEE-754 value.
    """
    if isinstance(value, Duration):
        return ["dur", float(value.as_seconds).hex()]
    if isinstance(value, WorkAmount):
        return ["work", float(value.units).hex()]
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return ["f", value.hex()]
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    if value is None:
        return None
    return ["repr", repr(value)]


# ----------------------------------------------------------------------
# Parameter ranges
# ----------------------------------------------------------------------


class ValueRange:
    """Base class for a parameter's set of allowed values.

    Iterating a range yields the allowed settings in order.  Ranges are
    finite by construction (geometric/arithmetic ranges have explicit
    endpoints).
    """

    def values(self) -> List:
        raise NotImplementedError

    def __iter__(self) -> Iterator:
        return iter(self.values())

    def __len__(self) -> int:
        return len(self.values())

    def __contains__(self, value) -> bool:
        return value in self.values()


class EnumeratedRange(ValueRange):
    """An explicit list of allowed values, e.g. maintenance levels."""

    def __init__(self, options: Sequence):
        if not options:
            raise UnitError("enumerated range must have at least one value")
        self._options = list(options)

    def values(self) -> List:
        return list(self._options)

    def __repr__(self) -> str:
        return "EnumeratedRange(%r)" % (self._options,)


class ArithmeticRange(ValueRange):
    """``[start-stop,+step]`` -- integers (or floats) by additive steps."""

    def __init__(self, start: float, stop: float, step: float):
        if step <= 0:
            raise UnitError("arithmetic range step must be positive")
        if stop < start:
            raise UnitError("arithmetic range stop < start")
        self.start = start
        self.stop = stop
        self.step = step

    def values(self) -> List[float]:
        # Endpoints are immutable after construction, so the expansion
        # is computed once; a copy keeps callers free to mutate.
        cached = getattr(self, "_values", None)
        if cached is None:
            cached = []
            value = self.start
            # Tolerate float drift on the final step.
            while value <= self.stop + 1e-9:
                cached.append(int(value)
                              if float(value).is_integer() else value)
                value += self.step
            self._values = cached
        return list(cached)

    def __contains__(self, value) -> bool:
        if value < self.start - 1e-9 or value > self.stop + 1e-9:
            return False
        steps = (value - self.start) / self.step
        return abs(steps - round(steps)) < 1e-9

    def __len__(self) -> int:
        return int(math.floor((self.stop - self.start) / self.step + 1e-9)) + 1

    def __repr__(self) -> str:
        return "ArithmeticRange(%g, %g, +%g)" % (self.start, self.stop, self.step)


class GeometricRange(ValueRange):
    """``[1m-24h;*1.05]`` -- durations by multiplicative steps.

    Values are :class:`Duration` objects starting at ``start`` and
    multiplying by ``factor`` until ``stop`` is exceeded; ``stop``
    itself is appended if not already the final value, so the declared
    endpoint is always searchable.
    """

    def __init__(self, start: Duration, stop: Duration, factor: float):
        if factor <= 1.0:
            raise UnitError("geometric range factor must be > 1")
        if stop < start:
            raise UnitError("geometric range stop < start")
        if start.as_seconds <= 0:
            raise UnitError("geometric range start must be positive")
        self.start = start
        self.stop = stop
        self.factor = factor

    def values(self) -> List[Duration]:
        cached = getattr(self, "_values", None)
        if cached is None:
            cached = []
            seconds = self.start.as_seconds
            stop = self.stop.as_seconds
            while seconds <= stop * (1.0 + 1e-12):
                cached.append(Duration(seconds))
                seconds *= self.factor
            if not cached or cached[-1].as_seconds < stop * (1.0 - 1e-12):
                cached.append(Duration(stop))
            self._values = cached
        return list(cached)

    def __len__(self) -> int:
        return len(self.values())

    def __repr__(self) -> str:
        return "GeometricRange(%s, %s, *%g)" % (
            self.start.format(), self.stop.format(), self.factor)


_GEOMETRIC_RE = re.compile(r"^\[([^;\]]+)-([^;\]]+);\s*\*\s*([\d.eE+-]+)\]$")
_ARITHMETIC_RE = re.compile(r"^\[([^,\]]+)-([^,\]]+),\s*\+\s*([\d.eE+-]+)\]$")
_SINGLETON_RE = re.compile(r"^\[([^,;\]]+)\]$")


def parse_range(text: str) -> ValueRange:
    """Parse any of the paper's range syntaxes into a :class:`ValueRange`.

    ``[a-b,+s]`` is arithmetic over numbers; ``[a-b;*f]`` is geometric
    over durations; ``[x,y,z]`` is enumerated (numbers are converted,
    other tokens stay strings); ``[x]`` is a one-element enumeration.
    """
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise UnitError("range must be bracketed: %r" % (text,))

    match = _GEOMETRIC_RE.match(text)
    if match:
        start, stop, factor = match.groups()
        return GeometricRange(Duration.parse(start), Duration.parse(stop),
                              float(factor))

    match = _ARITHMETIC_RE.match(text)
    if match:
        start, stop, step = match.groups()
        try:
            return ArithmeticRange(float(start), float(stop), float(step))
        except ValueError as exc:
            raise UnitError("bad arithmetic range %r: %s" % (text, exc))

    match = _SINGLETON_RE.match(text)
    if match:
        return EnumeratedRange([_coerce_token(match.group(1))])

    body = text[1:-1]
    if not body.strip():
        raise UnitError("empty range: %r" % (text,))
    options = [_coerce_token(tok) for tok in body.split(",")]
    return EnumeratedRange(options)


def _coerce_token(token: str):
    """Turn a range token into int/float when numeric, else a string."""
    token = token.strip()
    try:
        value = float(token)
    except ValueError:
        return token
    if value.is_integer() and "." not in token and "e" not in token.lower():
        return int(value)
    return value
