"""Line lexer for the Aved specification DSL (paper Figs. 3-5).

A specification is a sequence of lines; each line carries one or more
*pairs* of the form::

    key=value
    key(args)=value

Values may be scalars (``650d``, ``0``, ``dynamic``), mechanism
references (``<maintenanceA>``), bracketed lists with space- or
comma-separated elements (``[2400 2640]``, ``[bronze,silver]``), or
bracketed ranges (``[1m-24h;*1.05]``).  Comments start with ``\\\\`` or
``#`` and run to end of line.  Indentation is not significant; the
parser reconstructs nesting from the keys themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..errors import SpecError

#: A parsed value: either a raw scalar string or a list of scalar strings.
RawValue = Union[str, List[str]]


@dataclass(frozen=True)
class Pair:
    """One ``key(args)=value`` item with its source position.

    ``column`` is the 0-based column of the key in the physical line
    (-1 for pairs built outside the lexer); diagnostics use it to point
    at the exact item on multi-pair lines.
    """

    key: str
    args: Tuple[str, ...]   # empty when written without parentheses
    value: RawValue
    line: int
    column: int = -1

    @property
    def is_list(self) -> bool:
        return isinstance(self.value, list)

    def scalar(self) -> str:
        if isinstance(self.value, list):
            raise SpecError("%r expects a scalar value, got a list"
                            % self.key, self.line)
        return self.value

    def list_value(self) -> List[str]:
        if isinstance(self.value, list):
            return self.value
        raise SpecError("%r expects a bracketed list" % self.key, self.line)


@dataclass(frozen=True)
class Line:
    """All pairs found on one physical line."""

    number: int
    pairs: Tuple[Pair, ...]

    @property
    def head(self) -> Pair:
        return self.pairs[0]


def lex(text: str) -> List[Line]:
    """Lex a full specification document into non-empty lines."""
    lines: List[Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        content = _strip_comment(raw)
        stripped = content.strip()
        if not stripped:
            continue
        lead = len(content) - len(content.lstrip())
        pairs = tuple(_lex_line(stripped, number, lead))
        if pairs:
            lines.append(Line(number, pairs))
    return lines


def _strip_comment(raw: str) -> str:
    for marker in ("\\\\", "#"):
        index = raw.find(marker)
        if index >= 0:
            raw = raw[:index]
    return raw


def _lex_line(text: str, number: int, offset: int = 0) -> List[Pair]:
    pairs: List[Pair] = []
    i = 0
    length = len(text)
    while i < length:
        if text[i].isspace():
            i += 1
            continue
        start = i
        key, args, i = _lex_key(text, i, number)
        if i >= length or text[i] != "=":
            raise SpecError("expected '=' after %r" % key, number)
        i += 1  # consume '='
        while i < length and text[i] == " ":
            i += 1
        value, i = _lex_value(text, i, number, key)
        pairs.append(Pair(key, args, value, number, column=offset + start))
    return pairs


def _lex_key(text: str, i: int, number: int) -> Tuple[str, Tuple[str, ...], int]:
    start = i
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    key = text[start:i]
    if not key:
        raise SpecError("expected a key at column %d" % (i + 1), number)
    args: Tuple[str, ...] = ()
    if i < len(text) and text[i] == "(":
        close = _matching(text, i, "(", ")", number)
        inner = text[i + 1:close].strip()
        # args may themselves be bracketed, e.g. cost([inactive,active])
        if inner.startswith("[") and inner.endswith("]"):
            inner = inner[1:-1]
        args = tuple(part.strip() for part in inner.split(",") if part.strip())
        i = close + 1
    return key, args, i


def _lex_value(text: str, i: int, number: int, key: str) -> Tuple[RawValue, int]:
    if i >= len(text):
        raise SpecError("missing value for %r" % key, number)
    ch = text[i]
    if ch == "[":
        close = _matching(text, i, "[", "]", number)
        body = text[i:close + 1]
        return _interpret_bracketed(body), close + 1
    if ch == "<":
        close = text.find(">", i)
        if close < 0:
            raise SpecError("unterminated '<' in value for %r" % key, number)
        return text[i:close + 1], close + 1
    if text.startswith("expr:", i):
        # Inline expressions may contain spaces; they run to end of line.
        return text[i:].rstrip(), len(text)
    start = i
    while i < len(text) and not text[i].isspace():
        i += 1
    return text[start:i], i


def _interpret_bracketed(body: str) -> RawValue:
    """Decide whether a bracketed value is a list or a range literal.

    Range syntaxes (``[a-b,+s]``, ``[a-b;*f]``) are kept as raw strings
    for :func:`repro.units.parse_range`; anything else becomes a list of
    element strings (elements separated by spaces or commas).
    """
    inner = body[1:-1].strip()
    if ";" in inner:
        return body  # geometric range
    if "," in inner and "-" in inner.split(",", 1)[0] \
            and inner.split(",", 1)[1].lstrip().startswith("+"):
        return body  # arithmetic range
    separators = "," if "," in inner else None
    elements = [element for element in inner.split(separators) if element]
    return elements


def _matching(text: str, start: int, open_ch: str, close_ch: str,
              number: int) -> int:
    depth = 0
    for index in range(start, len(text)):
        if text[index] == open_ch:
            depth += 1
        elif text[index] == close_ch:
            depth -= 1
            if depth == 0:
                return index
    raise SpecError("unbalanced %r" % open_ch, number)


def maybe_mechanism_ref(value: str) -> Optional[str]:
    """Return the mechanism name if ``value`` is ``<name>``, else None."""
    if value.startswith("<") and value.endswith(">"):
        return value[1:-1]
    return None
