"""Parser for the Aved specification DSL.

Two entry points:

* :func:`parse_infrastructure` -- parses a Fig. 3 style document into an
  :class:`~repro.model.InfrastructureModel`;
* :func:`parse_service` -- parses a Fig. 4/5 style document into a
  :class:`~repro.model.ServiceModel`.  Performance references such as
  ``perfA.dat`` are resolved through a :class:`Resolver`; the paper's
  Table 1 closed forms ship as a ready-made resolver in
  :mod:`repro.spec.paper`.

The grammar is line-oriented and context-sensitive: a ``component=``
line opens a component definition at top level but declares a slot
inside a ``resource=`` block (distinguished by the presence of
``depend``/``startup`` keys, matching the paper's usage).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..errors import ExpressionError, ModelError, SpecError, UnitError
from ..model import (AvailabilityMechanism, ComponentSlot, ComponentType,
                     ConstantEffect, ConstantPerformance, CostSchedule,
                     ExpressionPerformance, FailureMode, FailureScope,
                     InfrastructureModel, MechanismParameter, MechanismRef,
                     MechanismUse, OverheadModel, ParameterEffect,
                     PerformanceModel, ResourceOption, ResourceType,
                     ServiceModel, Sizing, TableEffect, TabulatedPerformance,
                     Tier, UnityOverhead)
from ..units import Duration, WorkAmount, parse_range
from .lexer import Line, Pair, lex, maybe_mechanism_ref

# ----------------------------------------------------------------------
# Resolvers for external performance data
# ----------------------------------------------------------------------


class Resolver:
    """Resolves ``performance``/``mperformance`` references to models."""

    def performance(self, ref: str) -> PerformanceModel:
        raise SpecError("no resolver available for performance ref %r" % ref)

    def overhead(self, ref: str) -> OverheadModel:
        raise SpecError("no resolver available for mperformance ref %r" % ref)


class DictResolver(Resolver):
    """Resolves references from in-memory dictionaries."""

    def __init__(self,
                 performance: Optional[Dict[str, PerformanceModel]] = None,
                 overhead: Optional[Dict[str, OverheadModel]] = None):
        self._performance = dict(performance or {})
        self._overhead = dict(overhead or {})

    def performance(self, ref: str) -> PerformanceModel:
        try:
            return self._performance[ref]
        except KeyError as exc:
            raise SpecError("unknown performance reference %r" % ref) from exc

    def overhead(self, ref: str) -> OverheadModel:
        try:
            return self._overhead[ref]
        except KeyError as exc:
            raise SpecError("unknown mperformance reference %r" % ref) from exc


class FileResolver(Resolver):
    """Loads ``.dat`` files relative to a base directory.

    Performance files hold ``n throughput`` sample pairs, one per line.
    Overhead files hold ``category: expression`` lines defining a
    :class:`~repro.model.CategoricalOverhead` keyed on the mechanism's
    first categorical parameter.
    """

    def __init__(self, base_dir: str, category_param: str = "storage_location"):
        self.base_dir = base_dir
        self.category_param = category_param

    def performance(self, ref: str) -> PerformanceModel:
        path = os.path.join(self.base_dir, ref)
        samples: List[Tuple[int, float]] = []
        try:
            with open(path) as handle:
                for raw in handle:
                    raw = raw.split("#", 1)[0].strip()
                    if not raw:
                        continue
                    fields = raw.split()
                    if len(fields) != 2:
                        raise SpecError("bad sample line %r in %s"
                                        % (raw, path))
                    samples.append((int(fields[0]), float(fields[1])))
        except OSError as exc:
            raise SpecError("cannot read performance file %s: %s"
                            % (path, exc)) from exc
        return TabulatedPerformance(samples)

    def overhead(self, ref: str) -> OverheadModel:
        from ..model import CategoricalOverhead
        path = os.path.join(self.base_dir, ref)
        expressions: Dict[str, str] = {}
        try:
            with open(path) as handle:
                for raw in handle:
                    raw = raw.split("#", 1)[0].strip()
                    if not raw:
                        continue
                    if ":" not in raw:
                        raise SpecError("bad overhead line %r in %s"
                                        % (raw, path))
                    category, expression = raw.split(":", 1)
                    expressions[category.strip()] = expression.strip()
        except OSError as exc:
            raise SpecError("cannot read overhead file %s: %s"
                            % (path, exc)) from exc
        return CategoricalOverhead(self.category_param, expressions)


# ----------------------------------------------------------------------
# Infrastructure document
# ----------------------------------------------------------------------

_STRUCTURAL_KEYS = {"component", "failure", "mechanism", "param", "resource",
                    "application", "tier"}


def parse_infrastructure(text: str,
                         validate: bool = True) -> InfrastructureModel:
    """Parse a Fig. 3 style infrastructure specification.

    ``validate=False`` skips the cross-reference check on the finished
    model; the lint pass uses this to report *all* dangling references
    with source positions instead of failing on the first.
    """
    builder = _InfrastructureBuilder()
    for line in lex(text):
        builder.feed(line)
    return builder.finish(validate)


class _InfrastructureBuilder:
    def __init__(self):
        self.model = InfrastructureModel()
        self._component: Optional[dict] = None
        self._mechanism: Optional[dict] = None
        self._resource: Optional[dict] = None

    # -- dispatch -------------------------------------------------------

    def feed(self, line: Line) -> None:
        head = line.head
        if head.key == "component":
            if self._resource is not None and _is_slot_line(line):
                self._add_slot(line)
                return
            self._flush()
            self._start_component(line)
        elif head.key == "failure":
            if self._component is None:
                raise SpecError("failure= outside a component block",
                                line.number)
            self._add_failure(line)
        elif head.key == "mechanism":
            self._flush()
            self._start_mechanism(line)
        elif head.key == "param":
            if self._mechanism is None:
                raise SpecError("param= outside a mechanism block",
                                line.number)
            self._add_param(line)
        elif head.key == "resource":
            self._flush()
            self._start_resource(line)
        elif self._mechanism is not None:
            for pair in line.pairs:
                self._add_effect(pair)
        else:
            raise SpecError("unexpected %r at top level" % head.key,
                            line.number)

    def finish(self, validate: bool = True) -> InfrastructureModel:
        self._flush()
        if validate:
            self.model.validate()
        return self.model

    def _flush(self) -> None:
        if self._component is not None:
            self.model.add_component(_build_component(self._component))
            self.model.source_lines["component:%s" % self._component["name"]] \
                = self._component["line"]
            self._component = None
        if self._mechanism is not None:
            self.model.add_mechanism(_build_mechanism(self._mechanism))
            self.model.source_lines["mechanism:%s" % self._mechanism["name"]] \
                = self._mechanism["line"]
            self._mechanism = None
        if self._resource is not None:
            self.model.add_resource(_build_resource(self._resource))
            self.model.source_lines["resource:%s" % self._resource["name"]] \
                = self._resource["line"]
            self._resource = None

    # -- component ------------------------------------------------------

    def _start_component(self, line: Line) -> None:
        spec = {"name": line.head.scalar(), "line": line.number,
                "cost": None, "loss_window": None, "max_instances": None,
                "failures": []}
        for pair in line.pairs[1:]:
            if pair.key == "cost":
                spec["cost"] = _parse_cost(pair)
            elif pair.key == "loss_window":
                spec["loss_window"] = _parse_duration_or_ref(pair)
            elif pair.key == "max_instances":
                spec["max_instances"] = _parse_int(pair)
            else:
                raise SpecError("unknown component attribute %r" % pair.key,
                                pair.line)
        self._component = spec

    def _add_failure(self, line: Line) -> None:
        attrs = {"name": line.head.scalar(), "mtbf": None, "mttr": None,
                 "detect_time": Duration.ZERO}
        for pair in line.pairs[1:]:
            if pair.key == "mtbf":
                attrs["mtbf"] = _parse_duration(pair)
            elif pair.key == "mttr":
                attrs["mttr"] = _parse_duration_or_ref(pair)
            elif pair.key == "detect_time":
                attrs["detect_time"] = _parse_duration(pair)
            else:
                raise SpecError("unknown failure attribute %r" % pair.key,
                                pair.line)
        if attrs["mtbf"] is None:
            raise SpecError("failure mode %r needs mtbf=" % attrs["name"],
                            line.number)
        if attrs["mttr"] is None:
            raise SpecError("failure mode %r needs mttr=" % attrs["name"],
                            line.number)
        self._component["failures"].append(attrs)

    # -- mechanism --------------------------------------------------------

    def _start_mechanism(self, line: Line) -> None:
        self._mechanism = {"name": line.head.scalar(), "line": line.number,
                           "params": [], "effects": {}}
        for pair in line.pairs[1:]:
            self._add_effect(pair)

    def _add_param(self, line: Line) -> None:
        name = line.head.scalar()
        values = None
        for pair in line.pairs[1:]:
            if pair.key == "range":
                values = _parse_range_pair(pair)
            else:
                raise SpecError("unknown param attribute %r" % pair.key,
                                pair.line)
        if values is None:
            raise SpecError("param %r needs range=" % name, line.number)
        self._mechanism["params"].append(MechanismParameter(name, values))

    def _add_effect(self, pair: Pair) -> None:
        if pair.key in _STRUCTURAL_KEYS:
            raise SpecError("unexpected %r inside mechanism block" % pair.key,
                            pair.line)
        effects = self._mechanism["effects"]
        if pair.key in effects:
            raise SpecError("duplicate effect %r" % pair.key, pair.line)
        effects[pair.key] = pair

    # -- resource -----------------------------------------------------------

    def _start_resource(self, line: Line) -> None:
        spec = {"name": line.head.scalar(), "line": line.number,
                "reconfig_time": Duration.ZERO, "slots": []}
        for pair in line.pairs[1:]:
            if pair.key == "reconfig_time":
                spec["reconfig_time"] = _parse_duration(pair)
            else:
                raise SpecError("unknown resource attribute %r" % pair.key,
                                pair.line)
        self._resource = spec

    def _add_slot(self, line: Line) -> None:
        component = line.head.scalar()
        depends: Optional[str] = None
        startup = Duration.ZERO
        for pair in line.pairs[1:]:
            if pair.key == "depend":
                value = pair.scalar()
                depends = None if value in ("null", "none") else value
            elif pair.key == "startup":
                startup = _parse_duration(pair)
            else:
                raise SpecError("unknown slot attribute %r" % pair.key,
                                pair.line)
        self._resource["slots"].append(
            ComponentSlot(component, depends, startup))


def _is_slot_line(line: Line) -> bool:
    keys = {pair.key for pair in line.pairs[1:]}
    return bool(keys & {"depend", "startup"})


def _build_component(spec: dict) -> ComponentType:
    failures = tuple(
        FailureMode(f["name"], f["mtbf"], f["mttr"], f["detect_time"])
        for f in spec["failures"])
    cost = spec["cost"] if spec["cost"] is not None else CostSchedule.flat(0.0)
    return ComponentType(spec["name"], cost=cost, failure_modes=failures,
                         loss_window=spec["loss_window"],
                         max_instances=spec["max_instances"])


def _build_resource(spec: dict) -> ResourceType:
    return ResourceType(spec["name"], spec["slots"],
                        reconfig_time=spec["reconfig_time"])


def _build_mechanism(spec: dict) -> AvailabilityMechanism:
    params = tuple(spec["params"])
    by_name = {param.name: param for param in params}
    effects = {}
    for attribute, pair in spec["effects"].items():
        effects[attribute] = _build_effect(attribute, pair, by_name)
    return AvailabilityMechanism(spec["name"], params, effects)


def _build_effect(attribute: str, pair: Pair,
                  params: Dict[str, MechanismParameter]):
    as_duration = attribute != "cost"
    if pair.args:
        if len(pair.args) != 1:
            raise SpecError("effect %r may only be keyed by one parameter"
                            % attribute, pair.line)
        key = pair.args[0]
        if key not in params:
            raise SpecError("effect %r keyed by unknown parameter %r"
                            % (attribute, key), pair.line)
        values = [_convert_scalar(v, as_duration, pair.line)
                  for v in pair.list_value()]
        try:
            return TableEffect.from_values(params[key], values)
        except ModelError as exc:
            raise SpecError(str(exc), pair.line) from exc
    if not pair.is_list:
        value = pair.scalar()
        if value in params:
            return ParameterEffect(value)
        return ConstantEffect(_convert_scalar(value, as_duration, pair.line))
    raise SpecError("effect %r: a list value requires a parameter key, "
                    "e.g. %s(level)=[...]" % (attribute, attribute),
                    pair.line)


def _convert_scalar(value: str, as_duration: bool, line: int):
    try:
        if as_duration:
            if value.endswith("u"):
                return WorkAmount.parse(value)
            return Duration.parse(value)
        return float(value)
    except (UnitError, ValueError) as exc:
        raise SpecError(str(exc), line) from exc


def _parse_cost(pair: Pair) -> CostSchedule:
    if not pair.args:
        return CostSchedule.flat(_parse_float(pair))
    modes = tuple(pair.args)
    values = [float(v) for v in pair.list_value()]
    if len(values) != len(modes):
        raise SpecError("cost: %d modes but %d values"
                        % (len(modes), len(values)), pair.line)
    table = dict(zip(modes, values))
    unknown = set(table) - {"inactive", "active"}
    if unknown:
        raise SpecError("cost: unknown operational modes %s"
                        % sorted(unknown), pair.line)
    active = table.get("active", table.get("inactive", 0.0))
    inactive = table.get("inactive", active)
    return CostSchedule(inactive=inactive, active=active)


def _parse_duration(pair: Pair) -> Duration:
    try:
        return Duration.parse(pair.scalar())
    except UnitError as exc:
        raise SpecError(str(exc), pair.line) from exc


def _parse_duration_or_ref(pair: Pair):
    value = pair.scalar()
    ref = maybe_mechanism_ref(value)
    if ref is not None:
        return MechanismRef(ref)
    if value.endswith("u"):
        try:
            return WorkAmount.parse(value)
        except UnitError as exc:
            raise SpecError(str(exc), pair.line) from exc
    try:
        return Duration.parse(value)
    except UnitError as exc:
        raise SpecError(str(exc), pair.line) from exc


def _parse_float(pair: Pair) -> float:
    try:
        return float(pair.scalar())
    except ValueError as exc:
        raise SpecError("expected a number for %r, got %r"
                        % (pair.key, pair.value), pair.line) from exc


def _parse_int(pair: Pair) -> int:
    try:
        return int(pair.scalar())
    except ValueError as exc:
        raise SpecError("expected an integer for %r, got %r"
                        % (pair.key, pair.value), pair.line) from exc


def _parse_range_pair(pair: Pair):
    raw = pair.value
    if isinstance(raw, list):
        raw = "[" + ",".join(raw) + "]"
    try:
        return parse_range(raw)
    except UnitError as exc:
        raise SpecError(str(exc), pair.line) from exc


# ----------------------------------------------------------------------
# Service document
# ----------------------------------------------------------------------


def parse_service(text: str, resolver: Optional[Resolver] = None) \
        -> ServiceModel:
    """Parse a Fig. 4/5 style service specification."""
    builder = _ServiceBuilder(resolver or Resolver())
    for line in lex(text):
        builder.feed(line)
    return builder.finish()


class _ServiceBuilder:
    def __init__(self, resolver: Resolver):
        self.resolver = resolver
        self.name: Optional[str] = None
        self.job_size: Optional[float] = None
        self.tiers: List[Tier] = []
        self._tier_name: Optional[str] = None
        self._tier_line: int = -1
        self._options: List[ResourceOption] = []
        self._option: Optional[dict] = None
        self._source_lines: Dict[str, int] = {}

    def feed(self, line: Line) -> None:
        head = line.head
        if head.key == "application":
            if self.name is not None:
                raise SpecError("duplicate application= line", line.number)
            self.name = head.scalar()
            for pair in line.pairs[1:]:
                if pair.key == "jobsize":
                    self.job_size = _parse_float(pair)
                else:
                    raise SpecError("unknown application attribute %r"
                                    % pair.key, pair.line)
        elif head.key == "tier":
            self._flush_tier()
            self._tier_name = head.scalar()
            self._tier_line = line.number
        elif head.key == "resource":
            if self._tier_name is None:
                raise SpecError("resource= outside a tier block", line.number)
            self._flush_option()
            self._start_option(line)
        elif head.key == "mechanism":
            if self._option is None:
                raise SpecError("mechanism= outside a resource option",
                                line.number)
            self._add_mechanism_use(line)
        elif self._option is not None:
            for pair in line.pairs:
                self._option_attribute(pair)
        else:
            raise SpecError("unexpected %r in service spec" % head.key,
                            line.number)

    def finish(self) -> ServiceModel:
        self._flush_tier()
        if self.name is None:
            raise SpecError("service spec has no application= line")
        model = ServiceModel(self.name, self.tiers, job_size=self.job_size)
        model.source_lines.update(self._source_lines)
        return model

    # -- helpers ----------------------------------------------------------

    def _flush_tier(self) -> None:
        self._flush_option()
        if self._tier_name is not None:
            self.tiers.append(Tier(self._tier_name, self._options))
            self._source_lines["tier:%s" % self._tier_name] = self._tier_line
            self._tier_name = None
            self._options = []

    def _flush_option(self) -> None:
        if self._option is not None:
            self._options.append(_build_option(self._option))
            key = "%s/%s" % (self._tier_name, self._option["resource"])
            self._source_lines["option:" + key] = self._option["line"]
            if self._option["performance_line"] is not None:
                self._source_lines["performance:" + key] \
                    = self._option["performance_line"]
            for name, number in self._option["mperformance_lines"].items():
                self._source_lines["mperformance:%s/%s" % (key, name)] \
                    = number
            self._option = None

    def _start_option(self, line: Line) -> None:
        self._option = {"resource": line.head.scalar(), "line": line.number,
                        "sizing": None, "failure_scope": None,
                        "n_active": None, "performance": None,
                        "performance_line": None, "mechanisms": [],
                        "mperformance_lines": {}}
        for pair in line.pairs[1:]:
            self._option_attribute(pair)

    def _option_attribute(self, pair: Pair) -> None:
        option = self._option
        if pair.key == "sizing":
            option["sizing"] = _parse_enum(Sizing, pair)
        elif pair.key == "failurescope":
            option["failure_scope"] = _parse_enum(FailureScope, pair)
        elif pair.key == "nActive":
            option["n_active"] = _parse_range_pair(pair)
        elif pair.key == "performance":
            option["performance"] = self._resolve_performance(pair)
            option["performance_line"] = pair.line
        elif pair.key == "mperformance":
            if not option["mechanisms"]:
                raise SpecError("mperformance= before any mechanism=",
                                pair.line)
            name, _ = option["mechanisms"][-1]
            option["mechanisms"][-1] = (name, self._resolve_overhead(pair))
            option["mperformance_lines"][name] = pair.line
        else:
            raise SpecError("unknown option attribute %r" % pair.key,
                            pair.line)

    def _add_mechanism_use(self, line: Line) -> None:
        name = line.head.scalar()
        self._option["mechanisms"].append((name, None))
        for pair in line.pairs[1:]:
            self._option_attribute(pair)

    def _resolve_performance(self, pair: Pair) -> PerformanceModel:
        value = pair.scalar()
        if value.startswith("expr:"):
            try:
                return ExpressionPerformance(value[len("expr:"):])
            except (ModelError, ExpressionError) as exc:
                # Bad embedded expression (syntax error, variables other
                # than 'n'): report it at the spec line it came from.
                raise SpecError(str(exc), pair.line) from exc
        try:
            return ConstantPerformance(float(value))
        except ValueError:
            pass
        return _locate(self.resolver.performance, value, pair.line)

    def _resolve_overhead(self, pair: Pair) -> OverheadModel:
        value = pair.scalar()
        if value in ("none", "unity"):
            return UnityOverhead()
        return _locate(self.resolver.overhead, value, pair.line)


def _locate(resolve, ref: str, line: int):
    """Run a resolver, attaching the spec line to otherwise-unlocated
    errors so diagnostics can point into the document."""
    try:
        return resolve(ref)
    except SpecError as exc:
        if exc.line < 0:
            raise SpecError(str(exc), line) from exc
        raise
    except (ModelError, ExpressionError) as exc:
        raise SpecError(str(exc), line) from exc


def _parse_enum(enum_cls, pair: Pair):
    value = pair.scalar()
    for member in enum_cls:
        if member.value == value:
            return member
    raise SpecError("%r is not a valid %s (expected one of %s)"
                    % (value, enum_cls.__name__,
                       [m.value for m in enum_cls]), pair.line)


def _build_option(spec: dict) -> ResourceOption:
    for required in ("sizing", "failure_scope", "n_active", "performance"):
        if spec[required] is None:
            raise SpecError("resource option %r is missing %s="
                            % (spec["resource"],
                               {"failure_scope": "failurescope",
                                "n_active": "nActive"}.get(required,
                                                           required)),
                            spec["line"])
    mechanisms = tuple(
        MechanismUse(name, overhead if overhead is not None
                     else UnityOverhead())
        for name, overhead in spec["mechanisms"])
    return ResourceOption(spec["resource"], spec["sizing"],
                          spec["failure_scope"], spec["n_active"],
                          spec["performance"], mechanisms)
