"""Serialize model objects back to the specification DSL.

``parse(write(model))`` round-trips: the writer emits exactly the
subset of the language the parser understands, which the test suite
exercises as a property (write -> parse -> write is a fixed point).

Performance models serialize as ``expr:`` inline forms where possible;
tabulated models (which came from ``.dat`` files) cannot be inlined and
are emitted as a reference that the caller must resolve again.
"""

from __future__ import annotations

from typing import List

from ..errors import ModelError
from ..model import (AvailabilityMechanism, ComponentType, ConstantEffect,
                     ConstantPerformance, CostSchedule, ExpressionPerformance,
                     InfrastructureModel, MechanismRef, ParameterEffect,
                     ResourceType, ServiceModel, TableEffect)
from ..units import (ArithmeticRange, Duration, EnumeratedRange,
                     GeometricRange, ValueRange, WorkAmount)


def write_infrastructure(model: InfrastructureModel) -> str:
    """Render an infrastructure model as a Fig. 3 style document."""
    lines: List[str] = []
    for component in model.components:
        lines.extend(_component_lines(component))
    for mechanism in model.mechanisms:
        lines.extend(_mechanism_lines(mechanism))
    for resource in model.resources:
        lines.extend(_resource_lines(resource))
    return "\n".join(lines) + "\n"


def _component_lines(component: ComponentType) -> List[str]:
    head = "component=%s %s" % (component.name, _cost_text(component.cost))
    if component.loss_window is not None:
        head += " loss_window=%s" % _duration_or_ref(component.loss_window)
    if component.max_instances is not None:
        head += " max_instances=%d" % component.max_instances
    lines = [head]
    for mode in component.failure_modes:
        lines.append(
            " failure=%s mtbf=%s mttr=%s detect_time=%s"
            % (mode.name, mode.mtbf.format(), _duration_or_ref(mode.mttr),
               mode.detect_time.format()))
    return lines


def _cost_text(cost: CostSchedule) -> str:
    if cost.inactive == cost.active:
        return "cost=%g" % cost.active
    return "cost([inactive,active])=[%g %g]" % (cost.inactive, cost.active)


def _duration_or_ref(value) -> str:
    if isinstance(value, MechanismRef):
        return str(value)
    return value.format()  # Duration and WorkAmount both format()


def _mechanism_lines(mechanism: AvailabilityMechanism) -> List[str]:
    lines = ["mechanism=%s" % mechanism.name]
    for parameter in mechanism.parameters:
        lines.append(" param=%s range=%s"
                     % (parameter.name, _range_text(parameter.values)))
    for attribute in sorted(mechanism.effects):
        effect = mechanism.effects[attribute]
        lines.append(" " + _effect_text(attribute, effect))
    return lines


def _effect_text(attribute: str, effect) -> str:
    if isinstance(effect, ConstantEffect):
        return "%s=%s" % (attribute, _value_text(effect.value))
    if isinstance(effect, ParameterEffect):
        return "%s=%s" % (attribute, effect.parameter)
    if isinstance(effect, TableEffect):
        values = " ".join(_value_text(value) for _, value in effect.table)
        return "%s(%s)=[%s]" % (attribute, effect.parameter, values)
    raise ModelError("cannot serialize effect type %r"
                     % type(effect).__name__)


def _value_text(value) -> str:
    if isinstance(value, (Duration, WorkAmount)):
        return value.format()
    if isinstance(value, float) and value.is_integer():
        return "%d" % int(value)
    return str(value)


def _range_text(values: ValueRange) -> str:
    if isinstance(values, GeometricRange):
        return "[%s-%s;*%g]" % (values.start.format(), values.stop.format(),
                                values.factor)
    if isinstance(values, ArithmeticRange):
        return "[%g-%g,+%g]" % (values.start, values.stop, values.step)
    if isinstance(values, EnumeratedRange):
        return "[%s]" % ",".join(_value_text(v) for v in values.values())
    raise ModelError("cannot serialize range type %r"
                     % type(values).__name__)


def _resource_lines(resource: ResourceType) -> List[str]:
    lines = ["resource=%s reconfig_time=%s"
             % (resource.name, resource.reconfig_time.format())]
    for slot in resource.slots:
        lines.append(" component=%s depend=%s startup=%s"
                     % (slot.component, slot.depends_on or "null",
                        slot.startup.format()))
    return lines


def write_service(service: ServiceModel) -> str:
    """Render a service model as a Fig. 4/5 style document."""
    head = "application=%s" % service.name
    if service.job_size is not None:
        head += " jobsize=%g" % service.job_size
    lines = [head]
    for tier in service.tiers:
        lines.append("tier=%s" % tier.name)
        for option in tier.options:
            lines.append(" resource=%s sizing=%s failurescope=%s"
                         % (option.resource, option.sizing,
                            option.failure_scope))
            lines.append("  nActive=%s performance=%s"
                         % (_range_text(option.n_active),
                            _performance_text(option.performance)))
            for use in option.mechanisms:
                lines.append("  mechanism=%s" % use.mechanism)
    return "\n".join(lines) + "\n"


def _performance_text(model) -> str:
    if isinstance(model, ConstantPerformance):
        return "%g" % model.capacity
    if isinstance(model, ExpressionPerformance):
        return "expr:%s" % model.expression.source.replace(" ", "")
    raise ModelError(
        "cannot inline performance model %r; keep its .dat reference"
        % type(model).__name__)
