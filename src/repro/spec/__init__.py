"""The Aved specification DSL: parse and serialize Fig. 3-5 documents.

* :func:`parse_infrastructure`, :func:`parse_service` -- text to models.
* :func:`write_infrastructure`, :func:`write_service` -- models to text.
* :mod:`repro.spec.paper` -- the paper's own specs and Table 1 forms.
"""

from .lexer import Line, Pair, lex
from .parser import (DictResolver, FileResolver, Resolver,
                     parse_infrastructure, parse_service)
from .writer import write_infrastructure, write_service

__all__ = [
    "lex", "Line", "Pair",
    "parse_infrastructure", "parse_service",
    "Resolver", "DictResolver", "FileResolver",
    "write_infrastructure", "write_service",
]
