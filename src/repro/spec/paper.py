"""The paper's own models, embedded: Fig. 3, Fig. 4, Fig. 5 and Table 1.

The specification texts below transcribe the paper's figures with two
classes of amendment, both documented here:

* **Dependency typos fixed.**  Fig. 3 as printed gives machineB-based
  resources (rB, rF, rG) components that ``depend=machineA`` or
  ``depend=linux`` -- components those resources do not contain.  These
  are evident transcription errors (rE and rI, the other machineB
  resources, use ``machineB``/``unix`` correctly); we use the corrected
  parents.
* **Web-tier performance functions added.**  Table 1 only lists
  performance functions for the tiers exercised in the paper's two
  examples (application and computation).  The web tier's ``perfA`` /
  ``perfB`` are given linear forms with the same machineA:machineB
  per-unit-cost flavor so the full e-commerce model is usable; the
  paper's experiments never consult them.

All throughputs are work units per hour; ``cpi`` in the overhead
expressions is the checkpoint interval in minutes (Table 1's note).
"""

from __future__ import annotations

from ..model import (CategoricalOverhead, ExpressionPerformance,
                     InfrastructureModel, ServiceModel)
from .parser import DictResolver, parse_infrastructure, parse_service

INFRASTRUCTURE_SPEC = """
\\\\ Units - s:seconds, m:minutes, h:hours, d:days
\\\\ COMPONENTS DESCRIPTION
component=machineA cost([inactive,active])=[2400 2640]
 failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m
 failure=soft mtbf=75d mttr=0 detect_time=0
component=machineB cost([inactive,active])=[85000 93500]
 failure=hard mtbf=1300d mttr=<maintenanceB> detect_time=2m
 failure=soft mtbf=150d mttr=0 detect_time=0
component=linux cost=0
 failure=soft mtbf=60d mttr=0 detect_time=0
component=unix cost([inactive,active])=[0 200]
 failure=soft mtbf=60d mttr=0 detect_time=0
component=webserver cost=0
 failure=soft mtbf=60d mttr=0 detect_time=0
component=appserverA cost([inactive,active])=[0 1700]
 failure=soft mtbf=60d mttr=0 detect_time=0
component=appserverB cost([inactive,active])=[0 2000]
 failure=soft mtbf=60d mttr=0 detect_time=0
component=database cost([inactive,active])=[0 20000]
 failure=soft mtbf=60d mttr=0 detect_time=0
component=mpi cost=0 loss_window=<checkpoint>
 failure=soft mtbf=60d mttr=0 detect_time=0

\\\\ AVAILABILITY MECHANISMS
mechanism=maintenanceA
 param=level range=[bronze,silver,gold,platinum]
 cost(level)=[380 580 760 1500]
 mttr(level)=[38h 15h 8h 6h]
mechanism=maintenanceB
 param=level range=[bronze,silver,gold,platinum]
 cost(level)=[10100 12600 15800 25300]
 mttr(level)=[38h 15h 8h 6h]
mechanism=checkpoint
 param=storage_location range=[central,peer]
 param=checkpoint_interval range=[1m-24h;*1.05]
 cost=0
 loss_window=checkpoint_interval

\\\\ RESOURCES DESCRIPTION
resource=rA reconfig_time=0
 component=machineA depend=null startup=30s
 component=linux depend=machineA startup=2m
 component=webserver depend=linux startup=30s
resource=rB reconfig_time=0
 component=machineB depend=null startup=60s
 component=unix depend=machineB startup=4m
 component=webserver depend=unix startup=30s
resource=rC reconfig_time=0
 component=machineA depend=null startup=30s
 component=linux depend=machineA startup=2m
 component=appserverA depend=linux startup=2m
resource=rD reconfig_time=0
 component=machineA depend=null startup=30s
 component=linux depend=machineA startup=2m
 component=appserverB depend=linux startup=30s
resource=rE reconfig_time=0
 component=machineB depend=null startup=60s
 component=unix depend=machineB startup=4m
 component=appserverA depend=unix startup=2m
resource=rF reconfig_time=0
 component=machineB depend=null startup=60s
 component=unix depend=machineB startup=4m
 component=appserverB depend=unix startup=30s
resource=rG reconfig_time=0
 component=machineB depend=null startup=60s
 component=unix depend=machineB startup=4m
 component=database depend=unix startup=30s
resource=rH reconfig_time=0
 component=machineA depend=null startup=30s
 component=linux depend=machineA startup=2m
 component=mpi depend=linux startup=2s
resource=rI reconfig_time=0
 component=machineB depend=null startup=60s
 component=unix depend=machineB startup=4m
 component=mpi depend=unix startup=2s
"""

ECOMMERCE_SPEC = """
application=ecommerce
tier=web
 resource=rA sizing=dynamic failurescope=resource
  nActive=[1-1000,+1] performance(nActive)=perfA.dat
 resource=rB sizing=dynamic failurescope=resource
  nActive=[1-1000,+1] performance(nActive)=perfB.dat
tier=application
 resource=rC sizing=dynamic failurescope=resource
  nActive=[1-1000,+1] performance(nActive)=perfC.dat
 resource=rD sizing=dynamic failurescope=resource
  nActive=[1-1000,+1] performance(nActive)=perfD.dat
 resource=rE sizing=dynamic failurescope=resource
  nActive=[1-1000,+1] performance(nActive)=perfE.dat
 resource=rF sizing=dynamic failurescope=resource
  nActive=[1-1000,+1] performance(nActive)=perfF.dat
tier=database
 resource=rG sizing=static failurescope=resource
  nActive=[1] performance=10000
"""

SCIENTIFIC_SPEC = """
application=scientific jobsize=10000
tier=computation
 resource=rH sizing=static failurescope=tier
  nActive=[1-1000,+1] performance(nActive)=perfH.dat
  mechanism=checkpoint mperformance(storage_location,checkpoint_interval,nActive)=mperfH.dat
 resource=rI sizing=static failurescope=tier
  nActive=[1-1000,+1] performance(nActive)=perfI.dat
  mechanism=checkpoint mperformance(storage_location,checkpoint_interval,nActive)=mperfI.dat
"""

#: Table 1 performance functions, keyed by the Fig. 4/5 file references.
TABLE1_PERFORMANCE = {
    # Web tier (not in Table 1; see module docstring).
    "perfA.dat": "200*n",
    "perfB.dat": "1600*n",
    # Application tier (Table 1).
    "perfC.dat": "200*n",
    "perfD.dat": "200*n",
    "perfE.dat": "1600*n",
    "perfF.dat": "1600*n",
    # Computation tier (Table 1): sublinear scaling.
    "perfH.dat": "(10*n)/(1+0.004*n)",
    "perfI.dat": "(100*n)/(1+0.004*n)",
}

#: Table 1 mperformance functions: execution-time slowdown factors, by
#: checkpoint storage location; ``cpi`` is the interval in minutes.
TABLE1_OVERHEAD = {
    "mperfH.dat": {
        "central": "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)",
        "peer": "max(20/cpi, 100%)",
    },
    "mperfI.dat": {
        "central": "n < 30 ? max(5/cpi, 100%) : max(n/(6*cpi), 100%)",
        "peer": "max(100/cpi, 100%)",
    },
}


def table1_resolver() -> DictResolver:
    """Resolver mapping the figures' ``.dat`` references to Table 1 forms."""
    performance = {ref: ExpressionPerformance(source)
                   for ref, source in TABLE1_PERFORMANCE.items()}
    overhead = {ref: CategoricalOverhead("storage_location", expressions)
                for ref, expressions in TABLE1_OVERHEAD.items()}
    return DictResolver(performance=performance, overhead=overhead)


def paper_infrastructure() -> InfrastructureModel:
    """The Fig. 3 infrastructure model (freshly parsed each call)."""
    return parse_infrastructure(INFRASTRUCTURE_SPEC)


def ecommerce_service() -> ServiceModel:
    """The Fig. 4 e-commerce service model with Table 1 performance."""
    return parse_service(ECOMMERCE_SPEC, table1_resolver())


def scientific_service() -> ServiceModel:
    """The Fig. 5 scientific application model with Table 1 performance."""
    return parse_service(SCIENTIFIC_SPEC, table1_resolver())
