"""The metrics registry: counters, gauges, and histograms.

Names are dotted strings (``search.cache_hits``,
``engine_solve_seconds.markov``); instruments are created on first
use.  A :meth:`MetricsRegistry.snapshot` is a plain nested dict with
every key sorted, so two identical runs produce identical snapshots
except for timing-valued histogram sums -- which is what lets tests
assert on counter equality (e.g. against
:class:`repro.core.SearchStats`) while timings float.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Tuple

#: Default histogram bucket upper bounds, in seconds: log-spaced from
#: 100 microseconds to 100 seconds, wide enough for spec parsing and
#: Markov solves alike.  The overflow bucket is implicit (+inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0,
    10.0, 30.0, 100.0)


class Counter:
    """A monotonically increasing integer.

    Mutation is lock-protected: the serving daemon increments
    counters from request-handler and worker threads concurrently,
    and ``value += amount`` is a read-modify-write that can lose
    updates under the interpreter's thread switching.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins numeric value (with lock-safe deltas)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        """Adjust by ``delta`` -- queue-depth style up/down tracking."""
        with self._lock:
            self.value += delta


class Histogram:
    """Fixed-bucket distribution of observed values (e.g. solve times)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        buckets = {}
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            if bucket_count:
                buckets["le_%g" % bound] = bucket_count
        if self.bucket_counts[-1]:
            buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum_seconds": self.total,
            "min_seconds": self.min if self.count else None,
            "max_seconds": self.max if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    Instrument creation is guarded by a registry lock so concurrent
    first uses of the same name from different threads resolve to one
    shared instrument rather than two racing ones.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instruments ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_BUCKETS) \
            -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(bounds)
        return histogram

    # -- conveniences --------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def counter_value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def publish_search_stats(self, stats: Any,
                             prefix: str = "search") -> None:
        """Mirror a :class:`repro.core.SearchStats` into counters.

        Counter names are ``<prefix>.<field>`` for every dataclass
        field, so the snapshot's evaluation/cache-hit counts are equal
        to the search's own bookkeeping *by construction*.
        """
        import dataclasses
        for field in dataclasses.fields(stats):
            value = getattr(stats, field.name)
            counter = self.counter("%s.%s" % (prefix, field.name))
            counter.value = int(value)

    # -- output --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministically-ordered plain-dict view of everything."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].to_dict()
                           for name in sorted(self._histograms)},
        }

    def summary_lines(self) -> List[str]:
        """Human-readable one-liners (CLI ``repro profile`` output)."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append("%-44s %d" % (name, self._counters[name].value))
        for name in sorted(self._gauges):
            lines.append("%-44s %g" % (name, self._gauges[name].value))
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            if not histogram.count:
                continue
            lines.append(
                "%-44s n=%d mean=%.3fms min=%.3fms max=%.3fms"
                % (name, histogram.count, histogram.mean * 1e3,
                   histogram.min * 1e3, histogram.max * 1e3))
        return lines


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]
