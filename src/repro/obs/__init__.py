"""repro.obs: zero-dependency observability for the design engine.

Three pieces (see docs/OBSERVABILITY.md for the span model and metric
catalogue):

* **Trace spans** (:mod:`repro.obs.trace`) -- a hierarchical, timed
  record of one engine run: ``design`` -> ``tier-search`` ->
  ``tier-solve`` -> ``engine-solve``, with worker-process spans
  re-parented under their submitting ``parallel-batch`` span.
* **Metrics** (:mod:`repro.obs.metrics`) -- counters, gauges and
  histograms (evaluations, cache hits, prunes, retries, breaker
  trips, per-engine solve-time distributions), snapshotted into
  :class:`repro.core.DesignOutcome`.
* **Profiles** (:mod:`repro.obs.profile`) -- self/cumulative phase
  tables and ``BENCH_*.json`` records derived from a trace.

Observability is off by default and costs one global read plus one
attribute check per instrumentation site (``bench_obs.py`` holds that
to <3% of a Markov solve).  Enable it for a scope::

    from repro.obs import Observer, observing

    with observing() as obs:
        outcome = engine.design(requirements)
    print(obs.tracer.to_json())          # the span tree
    print(obs.metrics.snapshot())        # the counters

or from the CLI: ``repro design ... --trace t.json --metrics-out
m.json`` and ``repro profile ...``.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_BUCKETS)
from .observer import (NullObserver, Observer, current, disabled,
                       install, observing, snapshot_metrics)
from .profile import (BENCH_FORMAT, PhaseProfile, bench_record,
                      profile_bench_record, profile_spans,
                      profile_table, write_bench_record)
from .trace import Span, Tracer

__all__ = [
    "Span", "Tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Observer", "NullObserver", "current", "install", "observing",
    "disabled", "snapshot_metrics",
    "PhaseProfile", "profile_spans", "profile_table",
    "bench_record", "write_bench_record", "profile_bench_record",
    "BENCH_FORMAT",
]
