"""Phase profiles computed from a recorded span forest.

``repro profile`` turns a trace into the classic profiler view: per
span name, how many times it ran, its **cumulative** time (wall time
with a span of that name open, counting each name once per subtree so
recursion does not double-count) and its **self** time (cumulative
minus time attributed to child spans).  The same numbers serialize as
a ``BENCH_obs.json`` record so perf PRs can diff phase budgets
machine-readably.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from .trace import Span


@dataclass
class PhaseProfile:
    """Aggregated timings for one span name."""

    name: str
    count: int = 0
    self_ms: float = 0.0
    cumulative_ms: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "count": self.count,
                "self_ms": round(self.self_ms, 3),
                "cumulative_ms": round(self.cumulative_ms, 3)}


def profile_spans(roots: Iterable[Any]) -> List[PhaseProfile]:
    """Aggregate a span forest into per-name phase profiles.

    Accepts :class:`Span` objects or their serialized dicts (a trace
    JSON file read back).  Sorted by self time, largest first (ties
    broken by name so the ordering is deterministic).
    """
    roots = [Span.from_dict(root) if isinstance(root, dict) else root
             for root in roots]
    phases: Dict[str, PhaseProfile] = {}

    def walk(span: Span, ancestors: frozenset) -> None:
        phase = phases.get(span.name)
        if phase is None:
            phase = phases[span.name] = PhaseProfile(span.name)
        phase.count += 1
        child_ms = sum(child.duration_ms for child in span.children)
        phase.self_ms += max(span.duration_ms - child_ms, 0.0)
        if span.name not in ancestors:
            phase.cumulative_ms += span.duration_ms
        nested = ancestors | {span.name}
        for child in span.children:
            walk(child, nested)

    for root in roots:
        walk(root, frozenset())
    return sorted(phases.values(),
                  key=lambda phase: (-phase.self_ms, phase.name))


def profile_table(roots: Iterable[Span],
                  top: Optional[int] = None) -> str:
    """Render the profile as an aligned text table."""
    phases = profile_spans(roots)
    if top is not None:
        phases = phases[:top]
    total_self = sum(phase.self_ms for phase in phases) or 1.0
    lines = ["%-22s %8s %12s %12s %7s"
             % ("phase", "calls", "self(ms)", "cum(ms)", "self%")]
    for phase in phases:
        lines.append("%-22s %8d %12.3f %12.3f %6.1f%%"
                     % (phase.name, phase.count, phase.self_ms,
                        phase.cumulative_ms,
                        100.0 * phase.self_ms / total_self))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# BENCH_*.json records
# ----------------------------------------------------------------------

#: Schema version of the BENCH record format; bump on shape changes.
BENCH_FORMAT = 1


def bench_record(name: str, results: Dict[str, Any],
                 meta: Optional[Dict[str, Any]] = None) \
        -> Dict[str, Any]:
    """A machine-readable benchmark record (``BENCH_<name>.json``).

    Every benchmark artifact in this repo -- ``repro profile``'s
    output and each ``benchmarks/bench_*.py`` smoke leg -- shares
    this envelope so downstream tooling can consume them uniformly:
    ``bench`` (the benchmark name), ``format`` (envelope version),
    ``results`` (benchmark-specific numbers) and optional ``meta``
    (parameters, not measurements).
    """
    record: Dict[str, Any] = {
        "bench": name,
        "format": BENCH_FORMAT,
        "results": results,
    }
    if meta:
        record["meta"] = meta
    return record


def write_bench_record(path: str, record: Dict[str, Any]) -> str:
    """Write a BENCH record as deterministic, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def profile_bench_record(roots: Iterable[Span],
                         metrics_snapshot: Optional[Dict[str, Any]]
                         = None,
                         meta: Optional[Dict[str, Any]] = None) \
        -> Dict[str, Any]:
    """The ``repro profile`` BENCH record: phases + metrics counters."""
    results: Dict[str, Any] = {
        "phases": [phase.to_dict() for phase in profile_spans(roots)],
    }
    if metrics_snapshot is not None:
        results["counters"] = metrics_snapshot.get("counters", {})
    return bench_record("obs", results, meta=meta)


__all__ = ["PhaseProfile", "profile_spans", "profile_table",
           "bench_record", "write_bench_record", "profile_bench_record",
           "BENCH_FORMAT"]
