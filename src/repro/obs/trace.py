"""Hierarchical trace spans for the design engine.

A :class:`Tracer` records a tree of timed :class:`Span` objects:
``design`` at the root, ``tier-search`` under it, ``tier-solve`` per
candidate structure, ``engine-solve`` per availability engine call,
``parallel-batch`` per prefetch batch with the worker-side
``engine-solve`` spans re-parented under it on merge.

Design constraints (see docs/OBSERVABILITY.md):

* **Zero dependencies** -- stdlib only, importable everywhere
  (including worker processes).
* **Deterministic modulo timestamps** -- the span tree's structure,
  names, and attributes depend only on what the engine did, never on
  scheduling; serialization sorts every key, so two runs of the same
  search differ only in ``start_ms``/``duration_ms`` values.
* **Cheap when off** -- a tracer only exists inside an enabled
  :class:`~repro.obs.observer.Observer`; disabled call sites never
  construct spans (see the ``if obs.enabled`` convention).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Span attribute values are restricted to JSON scalars so traces
#: serialize without surprises; everything else is stringified.
_SCALARS = (str, int, float, bool, type(None))


def _clean(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else str(value)


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attributes", "start_ms", "duration_ms",
                 "children")

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, Any]] = None,
                 start_ms: float = 0.0, duration_ms: float = 0.0):
        self.name = name
        self.attributes: Dict[str, Any] = {
            key: _clean(value)
            for key, value in (attributes or {}).items()}
        self.start_ms = start_ms
        self.duration_ms = duration_ms
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; keys and attributes deterministically
        ordered, only the ``*_ms`` fields carry timing."""
        return {
            "name": self.name,
            "attributes": {key: self.attributes[key]
                           for key in sorted(self.attributes)},
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(str(data.get("name", "")),
                   dict(data.get("attributes", {})),
                   float(data.get("start_ms", 0.0)),
                   float(data.get("duration_ms", 0.0)))
        span.children = [cls.from_dict(child)
                         for child in data.get("children", ())]
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All spans named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, %d children, %.3fms)" % (
            self.name, len(self.children), self.duration_ms)


class _ActiveSpan:
    """Context manager that opens a span on entry, times it on exit."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self.tracer._pop(self.span)


class Tracer:
    """Builds the span tree; one instance per observed run."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a child of the current span (or a new root)."""
        span = Span(name, attributes,
                    start_ms=(self._clock() - self._epoch) * 1e3)
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.duration_ms = ((self._clock() - self._epoch) * 1e3
                            - span.start_ms)
        # Tolerate exception-driven unwinding: pop through to `span`.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def attach(self, data: Dict[str, Any], **extra: Any) -> Span:
        """Re-parent a serialized subtree under the current span.

        Used to merge worker-process spans into the submitting span:
        the worker serializes its local span tree
        (:meth:`Span.to_dict`), ships it over the result pipe, and the
        parent attaches it here.  ``extra`` attributes (e.g.
        ``worker=True``) are stamped on the subtree root.  Worker-side
        ``*_ms`` values are kept verbatim -- they are durations on the
        worker's own clock, not offsets on the parent timeline.
        """
        span = Span.from_dict(data)
        for key, value in extra.items():
            span.attributes[key] = _clean(value)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- reading -------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._stack)

    def find(self, name: str) -> List[Span]:
        """All spans named ``name`` anywhere in the recorded forest."""
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [root.to_dict() for root in self.roots]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The whole forest as deterministic JSON (modulo timestamps)."""
        return json.dumps({"spans": self.to_dicts()}, indent=indent,
                          sort_keys=True)


__all__ = ["Span", "Tracer"]
