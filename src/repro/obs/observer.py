"""The observer: one object bundling a tracer and a metrics registry.

Instrumented code follows one convention everywhere::

    obs = current()
    if obs.enabled:
        with obs.span("tier-solve", tier=..., n=..., m=..., s=...):
            ...hot work...
    else:
        ...hot work...

``current()`` returns the installed :class:`Observer` or the shared
:class:`NullObserver`, whose ``enabled`` is False -- so the disabled
cost at every instrumentation site is one module-global read plus one
attribute check, verified to be <3% of a Markov solve by
``benchmarks/bench_obs.py``.

Installation is process-global and scoped::

    with observing(Observer()) as obs:
        outcome = engine.design(requirements)
    print(obs.tracer.to_json())

Worker processes inherit the default (disabled) state; the parallel
executor passes an explicit per-task flag instead (see
:func:`repro.parallel.executor._evaluate_candidate`), which keeps
enabling race-free without any pool re-initialization.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Dict, Iterator, Optional

from .metrics import MetricsRegistry
from .trace import Tracer


class _NoopSpan:
    """A reusable, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NullObserver:
    """The disabled observer: every operation is a no-op.

    Instrumented call sites are expected to check :attr:`enabled`
    before doing anything; the methods below exist only so that code
    holding an observer reference never needs a None check.
    """

    enabled = False
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def engine_span(self, engine: str, model: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def inc(self, name: str, amount: int = 1) -> None:
        return None


class Observer:
    """An enabled recorder: hierarchical spans plus a metrics registry."""

    enabled = True

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def engine_span(self, engine: str, model: Any):
        """Span + per-engine solve-time histogram for one tier solve.

        ``model`` is a
        :class:`~repro.availability.TierAvailabilityModel`; its
        structure parameters become span attributes, and the wall
        time lands in the ``engine_solve_seconds.<engine>``
        histogram with a matching ``engine_solves.<engine>`` counter.
        """
        return _EngineSpan(self, engine, model)

    def inc(self, name: str, amount: int = 1) -> None:
        self.metrics.inc(name, amount)


class _EngineSpan:
    """Context manager composing a span with a solve-time histogram."""

    __slots__ = ("observer", "engine", "model", "active", "started")

    def __init__(self, observer: Observer, engine: str, model: Any):
        self.observer = observer
        self.engine = engine
        self.model = model

    def __enter__(self) -> None:
        model = self.model
        self.active = self.observer.tracer.span(
            "engine-solve", engine=self.engine,
            tier=getattr(model, "name", ""),
            n=getattr(model, "n", None), m=getattr(model, "m", None),
            s=getattr(model, "s", None))
        self.active.__enter__()
        self.started = time.perf_counter()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        elapsed = time.perf_counter() - self.started
        metrics = self.observer.metrics
        metrics.observe("engine_solve_seconds.%s" % self.engine, elapsed)
        metrics.inc("engine_solves.%s" % self.engine)
        if exc_type is not None:
            metrics.inc("engine_errors.%s" % self.engine)
        self.active.__exit__(exc_type, exc, tb)


#: The process-wide current observer.  Disabled by default; the CLI
#: (or a test) swaps in a recording one via :func:`observing` /
#: :func:`install`.
_NULL = NullObserver()
_CURRENT: Any = _NULL


def current() -> Any:
    """The installed observer, or the shared disabled one."""
    return _CURRENT


def install(observer: Optional[Any]) -> Any:
    """Install ``observer`` (None restores the disabled default).

    Returns the previously installed observer so callers can restore
    it; prefer :func:`observing` for scoped use.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = observer if observer is not None else _NULL
    return previous


@contextlib.contextmanager
def observing(observer: Optional[Observer] = None) -> Iterator[Any]:
    """Scoped installation: record within the block, restore after.

    With no argument a fresh :class:`Observer` is created (and
    yielded, so the caller can read its tracer/metrics afterwards).
    """
    installed = observer if observer is not None else Observer()
    previous = install(installed)
    try:
        yield installed
    finally:
        install(previous)


@contextlib.contextmanager
def disabled() -> Iterator[Any]:
    """Scoped force-disable, regardless of the surrounding state."""
    previous = install(_NULL)
    try:
        yield _NULL
    finally:
        install(previous)


def snapshot_metrics(observer: Any) -> Optional[Dict[str, Any]]:
    """The observer's metrics snapshot, or None when disabled."""
    if not getattr(observer, "enabled", False):
        return None
    return observer.metrics.snapshot()


__all__ = ["Observer", "NullObserver", "current", "install",
           "observing", "disabled", "snapshot_metrics"]
