"""Synthetic demand trajectories for utility-computing studies.

The paper argues (sections 1, 5.1) that in a utility computing
environment Aved would re-run as service load fluctuates.  Studying
that quantitatively needs load trajectories; real traces are
proprietary, so this module generates the standard synthetic shapes the
capacity-planning literature uses:

* :func:`diurnal` -- a smooth day/night cycle with configurable peak
  ratio and optional weekly modulation;
* :func:`flash_crowd` -- a baseline with a sudden arrival spike and
  exponential decay (slashdot/launch events);
* :func:`ramp` -- steady organic growth between two levels;
* :func:`noisy` -- multiplicative lognormal noise on any trajectory,
  seeded and reproducible.

All functions return plain lists of load values (work units per hour,
the paper's service-specific unit), one per sampling interval.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .errors import ModelError


def _check_positive(value: float, label: str) -> None:
    if value <= 0:
        raise ModelError("%s must be positive, got %g" % (label, value))


def diurnal(base_load: float, peak_ratio: float = 3.0,
            samples_per_day: int = 24, days: int = 1,
            peak_hour: float = 14.0,
            weekend_factor: float = 1.0) -> List[float]:
    """A day/night cycle: sinusoid between ``base`` and ``base*peak``.

    ``peak_hour`` sets where the maximum falls; with ``days > 1`` the
    cycle repeats, scaled by ``weekend_factor`` on days 5 and 6 of each
    week (Saturday/Sunday of a Monday-start week).
    """
    _check_positive(base_load, "base load")
    if peak_ratio < 1.0:
        raise ModelError("peak ratio must be >= 1")
    if samples_per_day < 1 or days < 1:
        raise ModelError("need at least one sample and one day")
    amplitude = base_load * (peak_ratio - 1.0) / 2.0
    midline = base_load + amplitude
    loads: List[float] = []
    for day in range(days):
        scale = weekend_factor if day % 7 in (5, 6) else 1.0
        for sample in range(samples_per_day):
            hour = 24.0 * sample / samples_per_day
            phase = 2.0 * math.pi * (hour - peak_hour) / 24.0
            loads.append(scale * (midline + amplitude * math.cos(phase)))
    return loads


def flash_crowd(base_load: float, spike_ratio: float = 10.0,
                total_samples: int = 48, spike_at: int = 12,
                decay_samples: float = 6.0) -> List[float]:
    """A flash crowd: flat base, a spike, exponential decay back."""
    _check_positive(base_load, "base load")
    if spike_ratio < 1.0:
        raise ModelError("spike ratio must be >= 1")
    if not 0 <= spike_at < total_samples:
        raise ModelError("spike must fall inside the trajectory")
    _check_positive(decay_samples, "decay constant")
    loads = []
    for sample in range(total_samples):
        if sample < spike_at:
            loads.append(base_load)
        else:
            decay = math.exp(-(sample - spike_at) / decay_samples)
            loads.append(base_load * (1.0 + (spike_ratio - 1.0) * decay))
    return loads


def ramp(start_load: float, end_load: float,
         total_samples: int = 24) -> List[float]:
    """Linear growth (or decline) between two load levels."""
    _check_positive(start_load, "start load")
    _check_positive(end_load, "end load")
    if total_samples < 2:
        raise ModelError("a ramp needs at least 2 samples")
    step = (end_load - start_load) / (total_samples - 1)
    return [start_load + step * index for index in range(total_samples)]


def noisy(loads: Sequence[float], sigma: float = 0.1,
          seed: Optional[int] = None) -> List[float]:
    """Multiplicative lognormal noise: ``load * exp(N(0, sigma))``."""
    if sigma < 0:
        raise ModelError("noise sigma cannot be negative")
    rng = np.random.default_rng(seed)
    factors = np.exp(rng.normal(0.0, sigma, size=len(loads)))
    return [float(load * factor) for load, factor in zip(loads, factors)]
