"""Sensitivity of designs and evaluations to model parameters.

The paper's future work (section 7) motivates continuously refining
models from monitoring data; the practical prerequisite is knowing how
sensitive the chosen design is to the numbers the model guessed
(software MTBFs, in the paper's own admission, came from "the authors'
intuition").  This module answers two questions:

* :func:`downtime_sensitivity` -- how does a tier's downtime move when
  one failure mode's MTBF or MTTR is scaled?
* :func:`design_switch_points` -- along a load sweep, where does the
  *optimal design family* change?  (The paper: "the optimal design
  family may change as the load level fluctuates", and a utility
  computing environment would redesign at those points.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..availability import FailureModeEntry, TierAvailabilityModel
from ..availability.markov import evaluate_tier
from ..core.design import TierDesign
from ..core.evaluation import DesignEvaluator
from ..core.families import DesignFamily, family_of
from ..core.search import SearchLimits, TierSearch
from ..errors import EvaluationError
from ..units import Duration


@dataclass(frozen=True)
class SensitivityPoint:
    """Tier downtime at one scaling of one parameter."""

    mode: str
    parameter: str       # "mtbf" | "mttr"
    factor: float
    downtime_minutes: float


def downtime_sensitivity(evaluator: DesignEvaluator,
                         tier_design: TierDesign,
                         mode_name: str,
                         parameter: str,
                         factors: Sequence[float],
                         required_throughput: Optional[float] = None) \
        -> List[SensitivityPoint]:
    """Tier downtime as one mode's MTBF or MTTR is scaled by ``factors``.

    ``parameter`` is ``"mtbf"`` or ``"mttr"``; a factor of 1.0
    reproduces the nominal evaluation.
    """
    if parameter not in ("mtbf", "mttr"):
        raise EvaluationError("parameter must be 'mtbf' or 'mttr'")
    model = evaluator.tier_model(tier_design, required_throughput)
    if all(mode.name != mode_name for mode in model.modes):
        raise EvaluationError("design has no failure mode %r (have: %s)"
                              % (mode_name,
                                 [mode.name for mode in model.modes]))
    points = []
    for factor in factors:
        if factor <= 0:
            raise EvaluationError("scaling factors must be positive")
        scaled = _scale_mode(model, mode_name, parameter, factor)
        result = evaluate_tier(scaled)
        points.append(SensitivityPoint(mode_name, parameter, factor,
                                       result.downtime_minutes))
    return points


def _scale_mode(model: TierAvailabilityModel, mode_name: str,
                parameter: str, factor: float) -> TierAvailabilityModel:
    modes = []
    for mode in model.modes:
        if mode.name != mode_name:
            modes.append(mode)
            continue
        mtbf = mode.mtbf * factor if parameter == "mtbf" else mode.mtbf
        mttr = mode.mttr * factor if parameter == "mttr" else mode.mttr
        modes.append(FailureModeEntry(mode.name, mtbf, mttr,
                                      mode.failover_time,
                                      mode.spare_susceptible))
    return TierAvailabilityModel(model.name, n=model.n, m=model.m,
                                 s=model.s, modes=tuple(modes))


@dataclass(frozen=True)
class SwitchPoint:
    """A load at which the optimal design family changes."""

    load: float
    previous: DesignFamily
    current: DesignFamily


def design_switch_points(evaluator: DesignEvaluator, tier: str,
                         loads: Sequence[float],
                         max_downtime: Duration,
                         limits: Optional[SearchLimits] = None) \
        -> Tuple[List[Tuple[float, Optional[DesignFamily]]],
                 List[SwitchPoint]]:
    """Optimal family along a load sweep, plus where it switches.

    Returns ``(trajectory, switches)``: the family at each load (None
    where infeasible) and the detected change points.  This is the
    computation a utility-computing controller would run as client
    demand moves (paper sections 1 and 5.1).
    """
    search = TierSearch(evaluator, limits)
    trajectory: List[Tuple[float, Optional[DesignFamily]]] = []
    switches: List[SwitchPoint] = []
    previous: Optional[DesignFamily] = None
    option_cache = evaluator.service.tier(tier)
    for load in loads:
        best = search.best_tier_design(tier, load, max_downtime)
        family: Optional[DesignFamily] = None
        if best is not None:
            n_min = option_cache.option_for(best.design.resource) \
                .min_active_for(load)
            family = family_of(best.design, n_min)
        trajectory.append((load, family))
        if family is not None and previous is not None \
                and family != previous:
            switches.append(SwitchPoint(load, previous, family))
        if family is not None:
            previous = family
    return trajectory, switches


def tornado_table(evaluator: DesignEvaluator, tier_design: TierDesign,
                  factors: Sequence[float] = (0.5, 2.0),
                  required_throughput: Optional[float] = None) -> str:
    """A tornado-style text table: downtime swing per mode parameter."""
    model = evaluator.tier_model(tier_design, required_throughput)
    nominal = evaluate_tier(model).downtime_minutes
    lines = ["sensitivity of %s (nominal %.2f min/yr)"
             % (tier_design.describe(), nominal)]
    lines.append("%-24s %-6s" % ("mode", "param")
                 + "".join("%14s" % ("x%g" % f) for f in factors))
    rows = []
    for mode in model.modes:
        for parameter in ("mtbf", "mttr"):
            values = [point.downtime_minutes for point in
                      downtime_sensitivity(evaluator, tier_design,
                                           mode.name, parameter, factors,
                                           required_throughput)]
            swing = max(values) - min(values)
            rows.append((swing, mode.name, parameter, values))
    rows.sort(reverse=True)
    for _, name, parameter, values in rows:
        lines.append("%-24s %-6s" % (name, parameter)
                     + "".join("%11.2f m/y" % v for v in values))
    return "\n".join(lines)
