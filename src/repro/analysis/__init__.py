"""Post-design analysis: importance, sensitivity, and redesign points.

These build on the paper's models to answer the questions that follow
design selection: where the downtime budget goes, how fragile the
choice is to guessed parameters, and where along a load trajectory a
utility-computing controller should re-run the design engine.
"""

from .importance import (ModeImportance, downtime_budget_table,
                         mode_importances)
from .whatif import (Improvement, WhatIfResult, apply_improvement,
                     evaluate_improvements, whatif_table)
from .sensitivity import (SensitivityPoint, SwitchPoint,
                          design_switch_points, downtime_sensitivity,
                          tornado_table)

__all__ = [
    "ModeImportance", "mode_importances", "downtime_budget_table",
    "SensitivityPoint", "downtime_sensitivity",
    "SwitchPoint", "design_switch_points", "tornado_table",
    "Improvement", "WhatIfResult", "apply_improvement",
    "evaluate_improvements", "whatif_table",
]
