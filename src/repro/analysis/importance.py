"""Failure-mode importance analysis for a chosen design.

Once Aved picks a design, the natural next question is *where the
downtime comes from* and which component improvements would pay.  Two
measures are provided per failure mode:

* **contribution**: the mode's share of the tier's downtime under the
  Markov decomposition (modes compose nearly additively in the
  rare-failure regime);
* **improvement potential**: the downtime that disappears if the mode
  is suppressed entirely (MTBF to infinity) -- a Birnbaum-flavoured
  "what is this failure mode costing me" number.

This is reproduction-side tooling (the paper stops at design
selection), but it uses only the paper's own models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..availability import TierAvailabilityModel
from ..availability.markov import evaluate_tier
from ..core.design import TierDesign
from ..core.evaluation import DesignEvaluator
from ..units import MINUTES_PER_YEAR


@dataclass(frozen=True)
class ModeImportance:
    """Importance measures for one failure mode of one tier design."""

    mode: str
    downtime_minutes: float          # mode's own contribution
    contribution: float              # share of the tier total, [0, 1]
    improvement_minutes: float       # tier downtime removed if suppressed
    failures_per_year: float

    def __str__(self) -> str:
        return ("%-24s %8.2f min/yr (%5.1f%%), %6.1f failures/yr"
                % (self.mode, self.downtime_minutes,
                   100.0 * self.contribution, self.failures_per_year))


def mode_importances(evaluator: DesignEvaluator, tier_design: TierDesign,
                     required_throughput: Optional[float] = None) \
        -> List[ModeImportance]:
    """Importance of each failure mode, most damaging first."""
    model = evaluator.tier_model(tier_design, required_throughput)
    base = evaluate_tier(model)
    total_minutes = base.downtime_minutes

    results: List[ModeImportance] = []
    for mode_result in base.mode_results:
        mode_minutes = mode_result.downtime_minutes
        reduced = _without_mode(model, mode_result.mode)
        if reduced is None:
            improvement = total_minutes
        else:
            improvement = total_minutes \
                - evaluate_tier(reduced).downtime_minutes
        contribution = (mode_minutes / total_minutes
                        if total_minutes > 0 else 0.0)
        results.append(ModeImportance(
            mode=mode_result.mode,
            downtime_minutes=mode_minutes,
            contribution=contribution,
            improvement_minutes=max(improvement, 0.0),
            failures_per_year=mode_result.failures_per_year))
    results.sort(key=lambda item: -item.downtime_minutes)
    return results


def _without_mode(model: TierAvailabilityModel,
                  mode_name: str) -> Optional[TierAvailabilityModel]:
    remaining = tuple(mode for mode in model.modes
                      if mode.name != mode_name)
    if not remaining:
        return None
    return TierAvailabilityModel(model.name, n=model.n, m=model.m,
                                 s=model.s, modes=remaining)


def downtime_budget_table(evaluator: DesignEvaluator,
                          tier_design: TierDesign,
                          required_throughput: Optional[float] = None) \
        -> str:
    """Render the importance analysis as an aligned text table."""
    importances = mode_importances(evaluator, tier_design,
                                   required_throughput)
    total = sum(item.downtime_minutes for item in importances)
    lines = ["downtime budget for %s" % tier_design.describe(),
             "%-24s %14s %8s %14s"
             % ("failure mode", "downtime", "share", "failures/yr")]
    for item in importances:
        lines.append("%-24s %10.2f m/y %7.1f%% %14.1f"
                     % (item.mode, item.downtime_minutes,
                        100.0 * item.contribution,
                        item.failures_per_year))
    lines.append("%-24s %10.2f m/y" % ("total (approx.)", total))
    return "\n".join(lines)
