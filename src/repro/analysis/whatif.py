"""What-if analysis: which infrastructure improvement pays best?

Designers rarely control requirements, but they often control the
catalog: qualify a sturdier machine, negotiate a faster contract tier,
harden the OS image.  This module re-runs the design engine against
modified infrastructure models and reports, per candidate improvement,
the change in the minimum cost of meeting the same requirement -- the
improvement's *design-level* return, which can differ wildly from its
component-level effect (a 2x machine MTBF is worthless if software
crashes dominate the optimal design's downtime).

Infrastructure copies are rebuilt through the spec writer/parser round
trip, so what-if runs can never mutate the caller's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.engine import Aved
from ..core.search import SearchLimits
from ..errors import AvedError, InfeasibleError, ModelError
from ..model import (ComponentType, FailureMode, InfrastructureModel,
                     ServiceModel)
from ..spec import parse_infrastructure, write_infrastructure
from ..units import Duration


@dataclass(frozen=True)
class Improvement:
    """A candidate infrastructure change to evaluate."""

    label: str
    component: str
    failure_mode: Optional[str] = None  # None = affects all modes
    mtbf_factor: float = 1.0            # >1 improves
    mttr_factor: float = 1.0            # <1 improves
    annual_cost_delta: float = 0.0      # extra per active instance

    def __post_init__(self):
        if self.mtbf_factor <= 0 or self.mttr_factor <= 0:
            raise ModelError("scaling factors must be positive")


@dataclass(frozen=True)
class WhatIfResult:
    """Design-level outcome of one candidate improvement."""

    improvement: Improvement
    baseline_cost: float
    improved_cost: Optional[float]      # None = still infeasible
    baseline_downtime: float
    improved_downtime: Optional[float]

    @property
    def annual_saving(self) -> Optional[float]:
        if self.improved_cost is None:
            return None
        return self.baseline_cost - self.improved_cost


def _clone_infrastructure(infrastructure: InfrastructureModel) \
        -> InfrastructureModel:
    return parse_infrastructure(write_infrastructure(infrastructure))


def apply_improvement(infrastructure: InfrastructureModel,
                      improvement: Improvement) -> InfrastructureModel:
    """A fresh infrastructure model with the improvement applied."""
    clone = _clone_infrastructure(infrastructure)
    component = clone.component(improvement.component)
    modes = []
    for mode in component.failure_modes:
        if improvement.failure_mode is not None \
                and mode.name != improvement.failure_mode:
            modes.append(mode)
            continue
        mttr = mode.mttr
        if isinstance(mttr, Duration):
            mttr = mttr * improvement.mttr_factor
        elif improvement.mttr_factor != 1.0:
            raise ModelError(
                "cannot scale mechanism-supplied MTTR of %s.%s; change "
                "the mechanism's table instead"
                % (component.name, mode.name))
        modes.append(FailureMode(mode.name,
                                 mode.mtbf * improvement.mtbf_factor,
                                 mttr, mode.detect_time))
    if improvement.failure_mode is not None and \
            all(mode.name != improvement.failure_mode
                for mode in component.failure_modes):
        raise ModelError("component %r has no failure mode %r"
                         % (improvement.component,
                            improvement.failure_mode))
    from ..model import CostSchedule
    cost = CostSchedule(
        inactive=component.cost.inactive,
        active=component.cost.active + improvement.annual_cost_delta)
    clone.replace_component(ComponentType(
        component.name, cost=cost, failure_modes=tuple(modes),
        loss_window=component.loss_window,
        max_instances=component.max_instances))
    return clone


def evaluate_improvements(infrastructure: InfrastructureModel,
                          service: ServiceModel,
                          requirements,
                          improvements: Sequence[Improvement],
                          limits: Optional[SearchLimits] = None) \
        -> List[WhatIfResult]:
    """Design-level value of each improvement, best saving first."""
    baseline = _design_or_none(infrastructure, service, requirements,
                               limits)
    if baseline is None:
        raise AvedError("the baseline requirement is infeasible; "
                        "what-if savings are undefined")
    results = []
    for improvement in improvements:
        improved_infrastructure = apply_improvement(infrastructure,
                                                    improvement)
        outcome = _design_or_none(improved_infrastructure, service,
                                  requirements, limits)
        results.append(WhatIfResult(
            improvement=improvement,
            baseline_cost=baseline.annual_cost,
            improved_cost=(outcome.annual_cost if outcome else None),
            baseline_downtime=baseline.downtime_minutes,
            improved_downtime=(outcome.downtime_minutes if outcome
                               else None)))
    results.sort(key=lambda result: -(result.annual_saving
                                      if result.annual_saving is not None
                                      else float("-inf")))
    return results


def _design_or_none(infrastructure, service, requirements, limits):
    engine = Aved(infrastructure, service, limits=limits)
    try:
        return engine.design(requirements)
    except InfeasibleError:
        return None


def whatif_table(results: Sequence[WhatIfResult]) -> str:
    """Render what-if results as an aligned text table."""
    lines = ["%-36s %12s %12s %12s"
             % ("improvement", "new cost", "saving", "downtime")]
    if results:
        lines.insert(0, "baseline: $%s at %.1f min/yr"
                     % (format(round(results[0].baseline_cost), ",d"),
                        results[0].baseline_downtime))
    for result in results:
        if result.improved_cost is None:
            lines.append("%-36s %12s %12s %12s"
                         % (result.improvement.label, "infeasible",
                            "-", "-"))
            continue
        lines.append("%-36s %12s %12s %9.1f m"
                     % (result.improvement.label,
                        "$" + format(round(result.improved_cost), ",d"),
                        "$" + format(round(result.annual_saving), ",d"),
                        result.improved_downtime))
    return "\n".join(lines)
