"""The persistent, content-addressed tier-evaluation store.

A :class:`TierEvaluationStore` maps ``(engine id, canonical model
key)`` to a serialized :class:`~repro.availability.TierResult`.  Keys
come from :mod:`repro.lint.canonical` (byte-stable across processes
and ``PYTHONHASHSEED``), so any process that generates the same
availability model -- a later CLI run, a ``repro serve`` worker, a
parallel search worker -- addresses the same entry.

Layout (under ``root``)::

    meta.json                   store format + canonical version
    objects/<kk>/<key>.json     one entry per solve (kk = key[:2])
    quarantine/<key>.json       entries that failed validation
    QUARANTINED                 store-level marker (verify mismatch)

Durability and integrity discipline:

* every entry is written via temp file + fsync + ``os.replace`` under
  a pid-stamped sidecar lock (:mod:`repro.fsio`), so concurrent
  writers never interleave and a ``kill -9`` at any instant leaves
  either no entry or a complete one;
* reads are lock-free and **zero-trust**: an entry is a SHA-256 digest
  header line over the raw body bytes that follow it, and every read
  re-derives the digest before believing a single field -- torn,
  truncated, bit-flipped, or stale-version entries are detected, moved
  to ``quarantine/``, and reported as a miss (``AVD601`` / ``AVD605``),
  never served;
* writes are best effort: ``ENOSPC``/``EACCES``/contention degrade the
  store (``AVD602``; after ``fail_limit`` storage faults the store
  turns itself off with ``AVD603``) instead of failing the search;
* the store is bounded: beyond ``max_entries`` on disk the oldest
  entries are evicted, and the startup scrub removes crash residue
  (orphaned temp files, stale locks).

An in-memory LRU tier fronts the disk.  Cache hits rebuild a *fresh*
:class:`~repro.availability.TierResult` per call (never aliasing a
previously returned object), so downstream mutation -- e.g.
:class:`~repro.resilience.FallbackEngine` annotating provenance in
place -- cannot retroactively poison cached state.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import random
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..availability import (ModeResult, TierAvailabilityModel, TierResult)
from ..errors import CacheError
from ..fsio import (LockContention, acquire_lock, atomic_write_bytes,
                    release_lock)
from ..lint.canonical import CANONICAL_VERSION, canonical_json, canonical_key
from ..resilience.events import (CACHE_CORRUPT, CACHE_DISABLED, CACHE_STALE,
                                 CACHE_VERIFY_MISMATCH, CACHE_WRITE_FAILED,
                                 DegradationLog)

#: On-disk entry format; bump on any layout change so old stores can
#: never alias new readers.
STORE_FORMAT = 1

#: Storage faults (failed writes/evictions) after which the store
#: turns itself off for the rest of the process (AVD603).
DEFAULT_FAIL_LIMIT = 5

#: Corrupt-entry detections after which the store turns itself off --
#: a corruption *storm* means the medium cannot be trusted at all.
DEFAULT_CORRUPT_LIMIT = 16

_QUARANTINE_MARKER = "QUARANTINED"
_COUNTER_NAMES = ("hits", "misses", "writes", "write_failures", "corrupt",
                  "stale", "evicted", "verify_checked", "verify_mismatch")


# ----------------------------------------------------------------------
# TierResult <-> plain-data payload (exact float round-trip: json floats
# serialize via repr, the shortest round-tripping decimal form)
# ----------------------------------------------------------------------

def tier_result_to_payload(result: TierResult) -> Dict[str, Any]:
    """Serialize a tier result to the store's payload form.

    Runtime fallback provenance (which resilience rung answered) is
    deliberately dropped: the store persists *engine* answers, and
    rung choice is per-run fault state.  Provenance the engine itself
    attached -- e.g. the Markov solver noting a dense solve that
    degraded to least squares, a function of the model alone -- IS
    persisted, so a warm hit reproduces the cold result exactly,
    degradation notes included.
    """
    payload = {
        "name": result.name,
        "unavailability": result.unavailability,
        "modes": [
            {"mode": mode.mode,
             "unavailability": mode.unavailability,
             "failures_per_year": mode.failures_per_year,
             "used_failover": mode.used_failover}
            for mode in result.mode_results],
    }
    if result.provenance is not None:
        payload["provenance"] = {
            "engine": result.provenance.engine,
            "attempts": result.provenance.attempts,
            "fallback_from": list(result.provenance.fallback_from),
            "cause": result.provenance.cause,
        }
    return payload


def tier_result_from_payload(payload: Dict[str, Any]) -> TierResult:
    """Rebuild a tier result; raises on any shape/value problem."""
    modes = tuple(
        ModeResult(mode=str(entry["mode"]),
                   unavailability=float(entry["unavailability"]),
                   failures_per_year=float(entry["failures_per_year"]),
                   used_failover=bool(entry["used_failover"]))
        for entry in payload["modes"])
    provenance = None
    stored = payload.get("provenance")
    if stored is not None:
        from ..availability.model import EngineProvenance
        provenance = EngineProvenance(
            engine=str(stored["engine"]),
            attempts=int(stored["attempts"]),
            fallback_from=tuple(str(name)
                                for name in stored["fallback_from"]),
            cause=str(stored["cause"]))
    return TierResult(name=str(payload["name"]),
                      unavailability=float(payload["unavailability"]),
                      mode_results=modes, provenance=provenance)


def entry_key(engine_id: str, model_key: str) -> str:
    """Content address of one (engine, model) evaluation."""
    text = canonical_json({"v": CANONICAL_VERSION, "engine": engine_id,
                           "model": model_key})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode_entry(engine_id: str, model_key: str,
                  payload: Dict[str, Any],
                  version: int = CANONICAL_VERSION) -> bytes:
    body = {"format": STORE_FORMAT, "v": version, "engine": engine_id,
            "model": model_key, "payload": payload}
    body_bytes = canonical_json(body).encode("utf-8")
    digest = hashlib.sha256(body_bytes).hexdigest()
    return digest.encode("ascii") + b"\n" + body_bytes


def _decode_entry(data: bytes, engine_id: str,
                  model_key: str) -> Tuple[Optional[Dict[str, Any]], str]:
    """Validate entry bytes; returns ``(payload, reason)``.

    ``payload`` is None when the entry must not be trusted; ``reason``
    is ``""`` (valid), ``"stale"`` (old canonical version, checksum
    fine), or a corruption description.  Validation order matters: the
    checksum covers the *raw stored body bytes* and is checked before
    any field is believed -- so every single-byte change to the file is
    detected (a checksum over a parse/re-serialize round trip would let
    semantically-neutral flips, e.g. in a float's last repr digit, slip
    through), and a flipped byte can never re-route an entry to a
    different key or version.
    """
    header, sep, body_bytes = data.partition(b"\n")
    if not sep or len(header) != 64:
        return None, "missing or malformed digest header"
    expected = hashlib.sha256(body_bytes).hexdigest().encode("ascii")
    if header != expected:
        return None, "checksum mismatch (payload corrupted)"
    try:
        body = json.loads(body_bytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        return None, "undecodable entry: %s" % exc
    if not isinstance(body, dict):
        return None, "entry body is not an object"
    if body.get("format") != STORE_FORMAT:
        return None, "unsupported entry format %r" % body.get("format")
    if body.get("v") != CANONICAL_VERSION:
        return None, "stale"
    if body.get("engine") != engine_id or body.get("model") != model_key:
        return None, "entry keyed for a different evaluation"
    payload = body.get("payload")
    if not isinstance(payload, dict):
        return None, "entry payload is not an object"
    return payload, ""


class TierEvaluationStore:
    """Crash-safe shared cache of tier availability solves.

    Thread-safe (the serving daemon shares one store across worker
    threads) and multi-process-safe (parallel search workers and
    repeated CLI runs share the directory).  Picklable: a copy sent to
    a pool worker reopens the same directory with fresh in-memory
    state and no startup scrub.
    """

    def __init__(self, root: str,
                 max_entries: int = 100_000,
                 memory_entries: int = 4096,
                 fail_limit: int = DEFAULT_FAIL_LIMIT,
                 corrupt_limit: int = DEFAULT_CORRUPT_LIMIT,
                 durable: bool = True,
                 scrub: bool = True,
                 verify_sample: int = 0,
                 verify_seed: int = 1,
                 fault_plan=None):
        if max_entries < 1:
            raise CacheError("max_entries must be >= 1")
        if memory_entries < 0:
            raise CacheError("memory_entries cannot be negative")
        if fail_limit < 1 or corrupt_limit < 1:
            raise CacheError("fault limits must be >= 1")
        self.root = root
        self.max_entries = max_entries
        self.memory_entries = memory_entries
        self.fail_limit = fail_limit
        self.corrupt_limit = corrupt_limit
        self.durable = durable
        self.verify_sample = verify_sample
        self.verify_seed = verify_seed
        self.fault_plan = fault_plan
        self.enabled = True
        self.log = DegradationLog()
        self.counters: Dict[str, int] = {name: 0
                                         for name in _COUNTER_NAMES}
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._storage_faults = 0
        self._write_ops = 0
        self._entry_count = 0
        self._samples: List[Tuple[str, TierAvailabilityModel,
                                  Dict[str, Any]]] = []
        self._sample_seen = 0
        self._sample_rng = random.Random(verify_seed)
        self._open(scrub=scrub)

    # -- filesystem layout ---------------------------------------------

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    @property
    def marker_path(self) -> str:
        return os.path.join(self.root, _QUARANTINE_MARKER)

    def entry_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], "%s.json" % key)

    # -- open / scrub ---------------------------------------------------

    def _open(self, scrub: bool) -> None:
        try:
            os.makedirs(self.objects_dir, exist_ok=True)
            os.makedirs(self.quarantine_dir, exist_ok=True)
        except OSError as exc:
            raise CacheError("cannot open cache at %r: %s"
                             % (self.root, exc)) from exc
        if os.path.exists(self.marker_path):
            self.enabled = False
            self.log.add(CACHE_VERIFY_MISMATCH,
                         detail="store %r is quarantined by an earlier "
                                "verification mismatch; caching is off "
                                "(purge to reuse the directory)"
                         % self.root)
            return
        meta = self._read_meta()
        if meta is None:
            self._write_meta()
        elif (meta.get("format") != STORE_FORMAT
              or meta.get("canonical_version") != CANONICAL_VERSION):
            # A store written by an incompatible version: never trust
            # or touch its entries, just run cache-off.
            self.enabled = False
            self.log.add(CACHE_STALE,
                         detail="store %r has format %r / canonical "
                                "version %r (need %d/%d); caching is off"
                         % (self.root, meta.get("format"),
                            meta.get("canonical_version"), STORE_FORMAT,
                            CANONICAL_VERSION))
            return
        if scrub:
            self.scrub()
        else:
            self._entry_count = self._count_entries()

    def _read_meta(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.meta_path) as handle:
                meta = json.load(handle)
        except OSError:
            return None
        except ValueError:
            return {}
        return meta if isinstance(meta, dict) else {}

    def _write_meta(self) -> None:
        data = canonical_json({"format": STORE_FORMAT,
                               "canonical_version": CANONICAL_VERSION
                               }).encode("utf-8")
        try:
            atomic_write_bytes(self.meta_path, data, durable=self.durable)
        except OSError as exc:
            self._storage_fault("cannot write store metadata: %s" % exc)

    def _count_entries(self) -> int:
        count = 0
        for _, _, names in os.walk(self.objects_dir):
            count += sum(1 for name in names if name.endswith(".json"))
        return count

    def scrub(self) -> Dict[str, int]:
        """Startup compaction: drop crash residue, enforce the bound.

        Removes orphaned temp files and stale sidecar locks left by
        killed writers, deletes entries that are not even JSON-shaped
        names, and evicts the oldest entries beyond ``max_entries``.
        Full checksum validation is deliberately *not* done here (it
        is O(store) -- that is :meth:`verify_all`); a bad entry left
        behind is still caught by the zero-trust read path.
        """
        removed_tmp = 0
        removed_locks = 0
        entries: List[Tuple[float, str]] = []
        for directory, _, names in os.walk(self.objects_dir):
            for name in names:
                path = os.path.join(directory, name)
                if name.endswith(".tmp"):
                    removed_tmp += self._unlink(path)
                elif name.endswith(".lock"):
                    # A *live* writer's lock must survive the scrub.
                    from ..fsio import lock_holder, pid_alive
                    holder = lock_holder(path)
                    if holder is None or not pid_alive(holder):
                        removed_locks += self._unlink(path)
                elif name.endswith(".json"):
                    try:
                        entries.append((os.path.getmtime(path), path))
                    except OSError:
                        pass
        evicted = 0
        if len(entries) > self.max_entries:
            entries.sort()
            for _, path in entries[:len(entries) - self.max_entries]:
                evicted += self._unlink(path)
        with self._lock:
            self._entry_count = len(entries) - evicted
            self.counters["evicted"] += evicted
        return {"removed_tmp": removed_tmp,
                "removed_locks": removed_locks, "evicted": evicted,
                "entries": self._entry_count}

    @staticmethod
    def _unlink(path: str) -> int:
        try:
            os.unlink(path)
        except OSError:
            return 0
        return 1

    # -- lookups --------------------------------------------------------

    def get(self, engine_id: str,
            model: TierAvailabilityModel) -> Optional[TierResult]:
        """The cached result for ``model`` under ``engine_id``, or None.

        Counts a hit or a miss; every disk hit is checksum-verified
        and a failed verification quarantines the entry and reports a
        miss.
        """
        if not self.enabled:
            return None
        model_key = canonical_key(model)
        key = entry_key(engine_id, model_key)
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self.counters["hits"] += 1
        if payload is not None:
            self._record_sample(engine_id, model, payload)
            self._obs_inc("cache.hits")
            return tier_result_from_payload(payload)
        payload = self._disk_get(key, engine_id, model_key)
        if payload is None:
            with self._lock:
                self.counters["misses"] += 1
            self._obs_inc("cache.misses")
            return None
        with self._lock:
            self.counters["hits"] += 1
            self._memory_put(key, payload)
        self._record_sample(engine_id, model, payload)
        self._obs_inc("cache.hits")
        return tier_result_from_payload(payload)

    def _disk_get(self, key: str, engine_id: str,
                  model_key: str) -> Optional[Dict[str, Any]]:
        path = self.entry_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        payload, reason = _decode_entry(data, engine_id, model_key)
        if payload is not None:
            try:
                tier_result_from_payload(payload)
            except Exception as exc:
                payload, reason = None, "invalid payload: %s" % exc
        if payload is not None:
            return payload
        if reason == "stale":
            with self._lock:
                self.counters["stale"] += 1
            self.log.add(CACHE_STALE,
                         detail="ignored stale-version entry %s"
                         % key[:12])
            self._obs_inc("cache.stale")
            self._quarantine_entry(path, key)
            return None
        with self._lock:
            self.counters["corrupt"] += 1
            corrupt = self.counters["corrupt"]
        self.log.add(CACHE_CORRUPT,
                     detail="quarantined entry %s: %s" % (key[:12], reason))
        self._obs_inc("cache.corrupt")
        self._quarantine_entry(path, key)
        if corrupt >= self.corrupt_limit and self.enabled:
            self._disable("corruption storm: %d corrupt entries detected"
                          % corrupt)
        return None

    def _quarantine_entry(self, path: str, key: str) -> None:
        destination = os.path.join(self.quarantine_dir, "%s.json" % key)
        try:
            os.replace(path, destination)
        except OSError:
            self._unlink(path)
        with self._lock:
            self._entry_count = max(0, self._entry_count - 1)

    # -- writes ---------------------------------------------------------

    def put(self, engine_id: str, model: TierAvailabilityModel,
            result: TierResult) -> bool:
        """Persist one solve; returns True when the entry hit the disk.

        Best effort by contract: storage faults degrade (``AVD602``,
        eventually ``AVD603``) and live-writer contention on the same
        entry is silently skipped -- the store is content-addressed,
        so the competing writer is persisting identical bytes.
        """
        if not self.enabled:
            return False
        model_key = canonical_key(model)
        key = entry_key(engine_id, model_key)
        payload = tier_result_to_payload(result)
        with self._lock:
            self._memory_put(key, payload)
            self._write_ops += 1
            op = self._write_ops
        data = _encode_entry(engine_id, model_key, payload)
        action = (self.fault_plan.decide(op)
                  if self.fault_plan is not None else None)
        if action is not None:
            data = self._apply_fault(action, op, engine_id, model_key,
                                     payload, data)
            if data is None:
                return False
        path = self.entry_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            lock = acquire_lock(path)
        except LockContention:
            return False          # a live peer is writing the same bytes
        except OSError as exc:
            self._storage_fault("cannot write entry %s: %s"
                                % (key[:12], exc))
            return False
        try:
            atomic_write_bytes(path, data, durable=self.durable,
                               prefix=".cache-")
        except OSError as exc:
            self._storage_fault("cannot write entry %s: %s"
                                % (key[:12], exc))
            return False
        finally:
            release_lock(lock)
        with self._lock:
            self.counters["writes"] += 1
            self._entry_count += 1
            over = self._entry_count - self.max_entries
        self._obs_inc("cache.writes")
        if over > 0:
            self._evict(over)
        return True

    def _apply_fault(self, action: str, op: int, engine_id: str,
                     model_key: str, payload: Dict[str, Any],
                     data: bytes) -> Optional[bytes]:
        """Mutate (or abort) one write per the injected fault."""
        from .faults import CacheKilled
        if action == "enospc":
            self._storage_fault("cannot write entry: [Errno %d] injected "
                                "ENOSPC" % errno.ENOSPC)
            return None
        if action == "torn":
            return data[:max(1, len(data) // 2)]
        if action == "flip":
            position = random.Random(hash((op, "flip"))).randrange(
                len(data))
            return data[:position] + bytes([data[position] ^ 0x20]) \
                + data[position + 1:]
        if action == "stale":
            return _encode_entry(engine_id, model_key, payload,
                                 version=CANONICAL_VERSION - 1)
        if action == "kill":
            # Simulate a writer killed between temp-write and rename:
            # leak a temp file, never touch the entry, die.
            tmp = os.path.join(self.objects_dir,
                               ".cache-killed-%d.tmp" % op)
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data[:max(1, len(data) // 3)])
            except OSError:
                pass
            raise CacheKilled("injected mid-write kill (op %d)" % op)
        return data

    def _evict(self, over: int) -> None:
        """Remove the ``over`` oldest entries (best effort)."""
        entries: List[Tuple[float, str]] = []
        for directory, _, names in os.walk(self.objects_dir):
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    entries.append((os.path.getmtime(path), path))
                except OSError:
                    pass
        entries.sort()
        evicted = 0
        for _, path in entries[:over]:
            evicted += self._unlink(path)
        with self._lock:
            self.counters["evicted"] += evicted
            self._entry_count = len(entries) - evicted
        if evicted:
            self._obs_inc("cache.evicted", evicted)

    def _memory_put(self, key: str, payload: Dict[str, Any]) -> None:
        """LRU insert; caller holds the lock."""
        if self.memory_entries <= 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- degradation ladder ---------------------------------------------

    def _storage_fault(self, detail: str) -> None:
        with self._lock:
            self.counters["write_failures"] += 1
            self._storage_faults += 1
            faults = self._storage_faults
        self.log.add(CACHE_WRITE_FAILED, detail=detail)
        self._obs_inc("cache.write_failures")
        if faults >= self.fail_limit and self.enabled:
            self._disable("%d storage faults (limit %d); last: %s"
                          % (faults, self.fail_limit, detail))

    def _disable(self, reason: str) -> None:
        self.enabled = False
        self.log.add(CACHE_DISABLED,
                     detail="cache degraded to off: %s" % reason)
        self._obs_inc("cache.disabled")

    def quarantine_store(self, reason: str) -> None:
        """Marker-quarantine the whole store (verification mismatch).

        The store stops serving immediately and every later open of
        the directory refuses to serve until :meth:`purge` wipes it.
        """
        self.enabled = False
        with self._lock:
            self.counters["verify_mismatch"] += 1
        self.log.add(CACHE_VERIFY_MISMATCH,
                     detail="store quarantined: %s" % reason)
        self._obs_inc("cache.verify_mismatch")
        try:
            atomic_write_bytes(self.marker_path,
                               (reason + "\n").encode("utf-8"),
                               durable=self.durable)
        except OSError:
            pass                  # marker is advisory; enabled=False holds

    # -- verification sampling ------------------------------------------

    def _record_sample(self, engine_id: str,
                       model: TierAvailabilityModel,
                       payload: Dict[str, Any]) -> None:
        """Seeded reservoir sample of hits for ``--cache-verify``."""
        if self.verify_sample <= 0:
            return
        with self._lock:
            self._sample_seen += 1
            if len(self._samples) < self.verify_sample:
                self._samples.append((engine_id, model, payload))
                return
            slot = self._sample_rng.randrange(self._sample_seen)
            if slot < self.verify_sample:
                self._samples[slot] = (engine_id, model, payload)

    def verify_samples(self) -> List[Tuple[str, TierAvailabilityModel,
                                           Dict[str, Any]]]:
        """Drain the sampled hits collected for paranoid verification."""
        with self._lock:
            samples, self._samples = self._samples, []
            self._sample_seen = 0
        return samples

    # -- maintenance / reporting -----------------------------------------

    def verify_all(self) -> Dict[str, int]:
        """Full integrity scan: validate every entry's checksum.

        Corrupt and stale entries are quarantined exactly as the read
        path would.  The entry's own recorded engine/model identity is
        used as the expectation, so this checks *integrity* (bytes
        match the checksum, versions current), not *correctness*
        against a live engine -- that is ``--cache-verify``.
        """
        checked = ok = corrupt = stale = 0
        for directory, _, names in os.walk(self.objects_dir):
            for name in sorted(names):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                key = name[:-len(".json")]
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
                checked += 1
                claimed = self._claimed_identity(data)
                payload, reason = _decode_entry(data, claimed[0],
                                                claimed[1])
                if payload is not None:
                    try:
                        tier_result_from_payload(payload)
                        ok += 1
                        continue
                    except Exception as exc:
                        reason = "invalid payload: %s" % exc
                if reason == "stale":
                    stale += 1
                    with self._lock:
                        self.counters["stale"] += 1
                    self.log.add(CACHE_STALE,
                                 detail="ignored stale-version entry %s"
                                 % key[:12])
                else:
                    corrupt += 1
                    with self._lock:
                        self.counters["corrupt"] += 1
                    self.log.add(CACHE_CORRUPT,
                                 detail="quarantined entry %s: %s"
                                 % (key[:12], reason))
                self._quarantine_entry(path, key)
        with self._lock:
            self.counters["verify_checked"] += checked
        return {"checked": checked, "ok": ok, "corrupt": corrupt,
                "stale": stale}

    @staticmethod
    def _claimed_identity(data: bytes) -> Tuple[str, str]:
        """The engine/model identity an entry claims for itself."""
        try:
            _, _, body_bytes = data.partition(b"\n")
            body = json.loads(body_bytes.decode("utf-8"))
            return (str(body.get("engine")), str(body.get("model")))
        except Exception:
            return ("", "")

    def purge(self) -> int:
        """Delete every entry, quarantined entry, and the marker.

        Returns how many entry files were removed.  The purged store
        is re-enabled (a quarantine marker does not survive a purge --
        purging is the documented way to reuse the directory).
        """
        removed = 0
        for base in (self.objects_dir, self.quarantine_dir):
            for directory, _, names in os.walk(base):
                for name in names:
                    removed += self._unlink(os.path.join(directory, name))
        self._unlink(self.marker_path)
        with self._lock:
            self._memory.clear()
            self._entry_count = 0
            self._storage_faults = 0
            for name in _COUNTER_NAMES:
                self.counters[name] = 0
        self.enabled = True
        self._write_meta()
        return removed

    def stats(self) -> Dict[str, Any]:
        """A plain-dict snapshot (the ``repro cache stats`` payload)."""
        size_bytes = 0
        entries = 0
        for directory, _, names in os.walk(self.objects_dir):
            for name in names:
                if not name.endswith(".json"):
                    continue
                entries += 1
                try:
                    size_bytes += os.path.getsize(
                        os.path.join(directory, name))
                except OSError:
                    pass
        quarantined = 0
        for _, _, names in os.walk(self.quarantine_dir):
            quarantined += sum(1 for name in names
                               if name.endswith(".json"))
        with self._lock:
            counters = dict(self.counters)
        return {
            "root": self.root,
            "format": STORE_FORMAT,
            "canonical_version": CANONICAL_VERSION,
            "enabled": self.enabled,
            "store_quarantined": os.path.exists(self.marker_path),
            "entries": entries,
            "size_bytes": size_bytes,
            "quarantined_entries": quarantined,
            "memory_entries": len(self._memory),
            "counters": counters,
        }

    def snapshot(self) -> Dict[str, Any]:
        """The lightweight per-run counters (``DesignOutcome.cache``)."""
        with self._lock:
            counters = dict(self.counters)
        counters["enabled"] = self.enabled
        return counters

    def bump(self, name: str, amount: int = 1) -> None:
        """Thread-safe counter increment (used by the verify pass)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def drain_log(self) -> DegradationLog:
        """Hand over (and reset) the accumulated AVD6xx events."""
        drained = self.log
        self.log = DegradationLog()
        return drained

    # -- pickling (worker pools serialize the wrapped engine) -----------

    def __getstate__(self) -> Dict[str, Any]:
        return {"root": self.root, "max_entries": self.max_entries,
                "memory_entries": self.memory_entries,
                "fail_limit": self.fail_limit,
                "corrupt_limit": self.corrupt_limit,
                "durable": self.durable,
                "verify_seed": self.verify_seed,
                "fault_plan": self.fault_plan}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["root"],
                      max_entries=state["max_entries"],
                      memory_entries=state["memory_entries"],
                      fail_limit=state["fail_limit"],
                      corrupt_limit=state["corrupt_limit"],
                      durable=state["durable"],
                      scrub=False,
                      verify_sample=0,
                      verify_seed=state["verify_seed"],
                      fault_plan=state["fault_plan"])

    def _obs_inc(self, name: str, amount: int = 1) -> None:
        from ..obs import current as _obs_current
        obs = _obs_current()
        if obs.enabled:
            obs.inc(name, amount)
