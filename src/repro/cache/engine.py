"""Engine wrapper that serves tier solves from the persistent store.

:func:`attach_cache` is the single wiring point: given any engine the
design runtime may be using -- a plain Markov/analytic/simulation
engine, or a :class:`~repro.resilience.FallbackEngine` chain -- it
inserts :class:`CachedEngine` wrappers exactly where caching is
*sound* and leaves everything else untouched.

Soundness rules (who gets a cache identity):

* :class:`~repro.availability.MarkovEngine` and
  :class:`~repro.availability.AnalyticEngine` are deterministic pure
  functions of the canonical model -- always cacheable;
* :class:`~repro.availability.SimulationEngine` is cacheable only when
  *seeded* (``simulate_tier`` builds a fresh seeded simulator per
  call, so a seeded engine is a deterministic function too); an
  unseeded simulation is a fresh random draw each call and must never
  be cached;
* everything else (:class:`~repro.resilience.ChaosEngine`, an already
  wrapped engine, user-registered engines) is passed through --
  identity is established by **exact type**, never ``engine.name``,
  because chaos wrappers mirror their inner engine's name.

For a fallback chain each cacheable *rung* is wrapped in place rather
than the chain itself: whether a rung answers still goes through the
chain's retry/breaker/validation policy (a cache hit is just a very
fast rung success), and the chain's name-keyed bookkeeping keeps
working because :class:`CachedEngine` adopts its inner engine's name.
Caching the whole chain would be unsound -- which rung answers depends
on runtime fault state, so equal models need not get equal results.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..availability import (AnalyticEngine, AvailabilityEngine,
                            MarkovEngine, SimulationEngine,
                            TierAvailabilityModel, TierResult)
from .store import TierEvaluationStore


def engine_cache_id(engine: AvailabilityEngine) -> Optional[str]:
    """The stable cache identity of ``engine``, or None if uncacheable.

    The identity names the *algorithm and its determinism-relevant
    parameters*, versioned so result-changing engine fixes can bust
    the cache by bumping the suffix.
    """
    if type(engine) is MarkovEngine:
        return "markov@1"
    if type(engine) is AnalyticEngine:
        return "analytic@1"
    if type(engine) is SimulationEngine:
        if engine.seed is None:
            return None           # fresh random draw per call
        return "simulation@1;years=%r;seed=%d;det_repairs=%d" % (
            engine.years, engine.seed, int(engine.deterministic_repairs))
    return None


class CachedEngine(AvailabilityEngine):
    """A cacheable engine fronted by a :class:`TierEvaluationStore`.

    Adopts the inner engine's ``name`` so name-keyed machinery
    (fallback breakers, provenance bookkeeping, engine spans) is
    oblivious to the wrapper.  Every hit returns a *fresh*
    :class:`~repro.availability.TierResult` (rebuilt from the stored
    payload), so callers that annotate results in place cannot
    contaminate the store.
    """

    def __init__(self, inner: AvailabilityEngine,
                 store: TierEvaluationStore, cache_id: str):
        self.inner = inner
        self.store = store
        self.cache_id = cache_id
        self.name = inner.name

    def evaluate_tier(self, model: TierAvailabilityModel) -> TierResult:
        cached = self.store.get(self.cache_id, model)
        if cached is not None:
            return cached
        result = self.inner.evaluate_tier(model)
        self.store.put(self.cache_id, model, result)
        return result

    def cache_probe(self, model: TierAvailabilityModel) \
            -> Optional[TierResult]:
        """A store-only lookup (no solve, no write) for prefetchers."""
        return self.store.get(self.cache_id, model)

    def drain_log(self):
        """Forward to the inner engine when it keeps a degradation log.

        The *store's* log is drained once, store-side, by the design
        engine -- several wrappers may share one store, so draining it
        per-wrapper would double-report.
        """
        inner_drain = getattr(self.inner, "drain_log", None)
        if inner_drain is not None:
            return inner_drain()
        from ..resilience.events import DegradationLog
        return DegradationLog()

    def reset(self) -> None:
        inner_reset = getattr(self.inner, "reset", None)
        if inner_reset is not None:
            inner_reset()


def attach_cache(engine: AvailabilityEngine,
                 store: TierEvaluationStore) -> AvailabilityEngine:
    """Wire ``store`` into ``engine`` wherever caching is sound.

    Returns the engine to use (a wrapper, the same object with rungs
    wrapped in place, or the unmodified engine when nothing in it is
    cacheable).
    """
    from ..resilience.fallback import FallbackEngine
    if isinstance(engine, FallbackEngine):
        for index, rung in enumerate(engine.engines):
            cache_id = engine_cache_id(rung)
            if cache_id is not None:
                engine.engines[index] = CachedEngine(rung, store, cache_id)
        return engine
    cache_id = engine_cache_id(engine)
    if cache_id is None:
        return engine
    return CachedEngine(engine, store, cache_id)


def iter_cached_engines(engine: AvailabilityEngine) \
        -> Iterator[CachedEngine]:
    """Every :class:`CachedEngine` reachable from ``engine``."""
    from ..resilience.fallback import FallbackEngine
    if isinstance(engine, CachedEngine):
        yield engine
    elif isinstance(engine, FallbackEngine):
        for rung in engine.engines:
            if isinstance(rung, CachedEngine):
                yield rung


def verify_sampled_hits(store: TierEvaluationStore,
                        engine: AvailabilityEngine) -> bool:
    """Paranoid verification: re-solve the store's sampled hits.

    Each hit the store sampled (seeded reservoir, enabled by setting
    ``verify_sample``) is recomputed on the matching *uncached* engine
    and compared byte-for-byte in canonical form.  A divergence means
    the store served a wrong-but-well-checksummed answer -- a key
    collision, an engine-identity bug, tampered entries rewritten with
    fresh checksums -- so the *whole store* is quarantined (``AVD604``
    plus an on-disk marker that blocks future opens), not just the
    entry.  Returns True when every sample matched.
    """
    from ..lint.canonical import canonical_json
    from .store import tier_result_to_payload
    wrappers = {wrapper.cache_id: wrapper
                for wrapper in iter_cached_engines(engine)}
    checked = 0
    for cache_id, model, payload in store.verify_samples():
        wrapper = wrappers.get(cache_id)
        if wrapper is None:
            continue
        fresh = wrapper.inner.evaluate_tier(model)
        checked += 1
        if canonical_json(tier_result_to_payload(fresh)) \
                != canonical_json(payload):
            store.bump("verify_checked", checked)
            store.quarantine_store(
                "re-solve of a sampled hit for tier %r diverged from "
                "the stored entry under engine %r"
                % (model.name, cache_id))
            return False
    if checked:
        store.bump("verify_checked", checked)
    return True


__all__ = ["CachedEngine", "attach_cache", "engine_cache_id",
           "iter_cached_engines", "verify_sampled_hits"]
