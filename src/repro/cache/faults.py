"""Seeded fault injection for the tier-evaluation store.

A :class:`CacheFaultPlan` is attached to a
:class:`~repro.cache.TierEvaluationStore` (``fault_plan=``) and
consulted on every *write*: for each write operation it may decree a
torn write (the entry file is truncated mid-payload), a flipped byte
(silent media corruption), an injected ``ENOSPC``, a stale-version
entry (written by an "older" release), or a mid-write kill (the writer
dies between temp-write and rename, raising :class:`CacheKilled`).

Decisions are pure functions of ``(seed, op_index)`` -- the same plan
replays the same fault schedule regardless of thread interleaving or
wall-clock -- mirroring :class:`repro.resilience.WorkerFaultPlan`.

The chaos suite (``tests/cache/test_chaos.py``) drives stores through
these storms and asserts the paper-level invariant: faults are
*detected* (quarantine + AVD6xx diagnostics) and *survived* (the store
degrades, the search completes), and the designed system is
byte-identical to a cache-off run -- corruption may cost speed, never
correctness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


class CacheKilled(BaseException):
    """Simulated ``kill -9`` of a store writer mid-write.

    Deliberately a :class:`BaseException`: real kills are not
    catchable, so no ``except Exception`` recovery path in the store
    may swallow one.  The test harness catches it at the call site the
    way a supervisor observes a dead process.
    """


@dataclass(frozen=True)
class CacheFaultPlan:
    """Deterministic schedule of storage faults for cache writes.

    Rates are independent probabilities evaluated in a fixed order
    (torn, flip, enospc, stale, kill) from a single per-op draw, so at
    most one fault fires per write.
    """

    seed: int = 0
    torn_write_rate: float = 0.0
    flip_byte_rate: float = 0.0
    enospc_rate: float = 0.0
    stale_version_rate: float = 0.0
    kill_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("torn_write_rate", "flip_byte_rate", "enospc_rate",
                     "stale_version_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be in [0, 1], got %r"
                                 % (name, rate))

    def decide(self, op_index: int) -> Optional[str]:
        """The fault (if any) to inject on write number ``op_index``.

        Pure: depends only on ``(seed, op_index)``.
        """
        rng = random.Random(hash((self.seed, op_index)))
        draw = rng.random()
        cumulative = 0.0
        for action, rate in (("torn", self.torn_write_rate),
                             ("flip", self.flip_byte_rate),
                             ("enospc", self.enospc_rate),
                             ("stale", self.stale_version_rate),
                             ("kill", self.kill_rate)):
            cumulative += rate
            if draw < cumulative:
                return action
        return None


__all__ = ["CacheFaultPlan", "CacheKilled"]
