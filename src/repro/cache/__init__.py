"""Crash-safe persistent cache of tier availability solves.

Tier evaluation dominates design-search cost (one Markov/simulation
solve per candidate structure), and the solves are pure functions of
the canonical tier model -- so they are safe to reuse across runs,
processes, and the serving daemon.  This package persists them:

* :class:`TierEvaluationStore` -- the content-addressed on-disk store
  (atomic writes, per-entry SHA-256 integrity, quarantine of anything
  unverifiable, bounded size, graceful degradation to cache-off);
* :class:`CachedEngine` / :func:`attach_cache` -- the engine wrapper
  and its soundness-aware wiring;
* :class:`CacheFaultPlan` -- seeded storage-fault injection for the
  durability chaos suite.

Enabled with ``--cache DIR`` (or ``REPRO_CACHE=DIR``) on the search
CLI commands and ``repro serve``; managed with ``repro cache
stats|verify|purge``.  ``docs/CACHING.md`` documents the design.
"""

from .engine import (CachedEngine, attach_cache, engine_cache_id,
                     iter_cached_engines, verify_sampled_hits)
from .faults import CacheFaultPlan, CacheKilled
from .store import (STORE_FORMAT, TierEvaluationStore, entry_key,
                    tier_result_from_payload, tier_result_to_payload)

__all__ = [
    "TierEvaluationStore", "STORE_FORMAT", "entry_key",
    "tier_result_to_payload", "tier_result_from_payload",
    "CachedEngine", "attach_cache", "engine_cache_id",
    "iter_cached_engines", "verify_sampled_hits",
    "CacheFaultPlan", "CacheKilled",
]
