"""Exception hierarchy for the Aved reproduction.

Every error raised by this package derives from :class:`AvedError`, so
callers can catch a single base class at API boundaries.  The subclasses
partition errors by the subsystem that detected them (specification
parsing, model validation, expression evaluation, availability
evaluation, design search).
"""

from __future__ import annotations


class AvedError(Exception):
    """Base class for all errors raised by this package."""


class UnitError(AvedError, ValueError):
    """A quantity string (duration, rate, range) could not be parsed."""


class ExpressionError(AvedError):
    """An expression could not be parsed or evaluated."""

    def __init__(self, message: str, source: str = "", position: int = -1):
        self.source = source
        self.position = position
        if source and position >= 0:
            message = "%s (at position %d in %r)" % (message, position, source)
        super().__init__(message)


class SpecError(AvedError):
    """A specification document (Fig. 3/4/5 style DSL) is malformed."""

    def __init__(self, message: str, line: int = -1):
        self.line = line
        if line >= 0:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class ModelError(AvedError):
    """A model object is internally inconsistent (validation failure)."""


class EvaluationError(AvedError):
    """An availability/cost/job-time evaluation could not be completed."""


class NumericalError(EvaluationError):
    """A numerical solve failed or produced non-finite results.

    Carries the tier name and ``(n, m, s)`` structure when known so
    engine failures are attributable without a traceback dig.  The
    resilience runtime (:mod:`repro.resilience`) treats this class as
    *transient*: worth retrying before falling back to another engine.
    """

    def __init__(self, message: str, tier=None, structure=None):
        #: Name of the tier whose model was being evaluated, if known.
        self.tier = tier
        #: The ``(n, m, s)`` structure of the failing model, if known.
        self.structure = structure
        if tier is not None:
            where = "tier %r" % tier
            if structure is not None:
                where += " (n=%d, m=%d, s=%d)" % tuple(structure)
            message = "%s: %s" % (where, message)
        super().__init__(message)


class CheckpointError(AvedError):
    """A search checkpoint could not be saved, loaded, or applied."""


class CacheError(AvedError):
    """The tier-evaluation store could not be opened or operated on."""


class SearchError(AvedError):
    """The design-space search failed (e.g. no feasible design exists)."""


class ServeError(AvedError):
    """The design service (``repro serve``) could not honor a request."""


class GridError(AvedError):
    """Sharded requirement-space map build or lookup failure."""


class WatchError(AvedError):
    """The continuous redesign watcher (``repro watch``) failed."""


class InfeasibleError(SearchError):
    """No design in the modeled design space satisfies the requirements."""

    def __init__(self, message: str, best_infeasible=None):
        super().__init__(message)
        #: The closest design found, if any, for diagnostic reporting.
        self.best_infeasible = best_infeasible
