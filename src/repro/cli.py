"""Command-line interface for the Aved design engine.

Subcommands::

    python -m repro design    --load 1000 --downtime 100m [model options]
    python -m repro design    --job-time 20h [model options]
    python -m repro design    ... --trace out.json --metrics-out m.json
    python -m repro frontier  --tier application --load 1000 [...]
    python -m repro validate  [model options]
    python -m repro lint      [--format json] [--strict] [--space] [...]
    python -m repro profile   --load 1000 --downtime 100m [model options]
    python -m repro cache     stats|verify|purge [DIR]
    python -m repro serve     --data-dir state/ [--port 8080] [--map M]
    python -m repro watch     --tier T --load X --downtime 100m \
                              --telemetry stream.jsonl [model options]
    python -m repro map       build|serve|status [options]

Model options: ``--infrastructure FILE`` and ``--service FILE`` load
spec documents (``--perf-dir DIR`` resolves their ``.dat`` references);
``--paper-ecommerce`` / ``--paper-scientific`` use the paper's embedded
models instead.  ``--app-tier-only`` slices the e-commerce model down
to its application tier, matching the paper's first example.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
import threading
from typing import Optional

from .core import (Aved, DesignEvaluator, SearchLimits, TierSearch)
from .core.report import evaluation_summary, frontier_table
from .errors import AvedError, InfeasibleError
from .model import (InfrastructureModel, JobRequirements, ServiceModel,
                    ServiceRequirements, collect_problems)
from .spec import FileResolver, parse_infrastructure, parse_service
from .units import Duration


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aved: automated system design for availability "
                    "(DSN 2004 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    design = subparsers.add_parser(
        "design", help="find the minimum-cost design for a requirement")
    _add_model_options(design)
    design.add_argument("--load", type=float,
                        help="throughput requirement (work units/hour)")
    design.add_argument("--downtime",
                        help="max annual downtime, e.g. 100m, 2h")
    design.add_argument("--job-time",
                        help="max expected job execution time, e.g. 20h")
    design.add_argument("--json", action="store_true",
                        help="emit the design and evaluation as JSON")
    design.add_argument("--checkpoint", metavar="PATH",
                        help="snapshot search progress to PATH so an "
                             "interrupted run can resume")
    design.add_argument("--resume", action="store_true",
                        help="resume from an existing --checkpoint file "
                             "instead of restarting the search")
    design.add_argument("--trace", metavar="PATH",
                        help="record the run's hierarchical trace "
                             "(search -> evaluation -> engine spans) "
                             "and write it to PATH as JSON")
    design.add_argument("--metrics-out", metavar="PATH",
                        help="write the run's metrics snapshot "
                             "(counters/gauges/histograms) to PATH as "
                             "JSON")
    _add_search_options(design)

    profile = subparsers.add_parser(
        "profile", help="profile a design run: per-phase self/cumulative "
                        "time table from the trace, plus engine counters")
    _add_model_options(profile)
    profile.add_argument("--load", type=float,
                         help="throughput requirement (work units/hour)")
    profile.add_argument("--downtime",
                         help="max annual downtime, e.g. 100m, 2h")
    profile.add_argument("--job-time",
                         help="max expected job execution time, e.g. 20h")
    profile.add_argument("--top", type=int, default=None, metavar="N",
                         help="show only the N hottest phases")
    profile.add_argument("--trace", metavar="PATH",
                         help="also write the raw trace JSON to PATH")
    profile.add_argument("--bench-out", metavar="PATH",
                         help="write a BENCH-format profiling record "
                              "(phases + counters) to PATH")
    _add_search_options(profile)

    frontier = subparsers.add_parser(
        "frontier", help="print a tier's cost/downtime Pareto frontier")
    _add_model_options(frontier)
    frontier.add_argument("--tier", required=True)
    frontier.add_argument("--load", type=float, required=True)
    _add_search_options(frontier)

    validate = subparsers.add_parser(
        "validate", help="check an infrastructure/service model pair")
    _add_model_options(validate)

    lint = subparsers.add_parser(
        "lint", help="static analysis of a model pair: dangling "
                     "references, expression domain errors (division by "
                     "zero, log/sqrt), plausibility warnings")
    _add_model_options(lint)
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="output rendering (default: text)")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings, not just errors")
    lint.add_argument("--space", action="store_true",
                      help="also statically analyze the candidate space: "
                           "cardinality, canonical equivalence classes, "
                           "dominance coverage, provably infeasible "
                           "regions (AVD500-series; see "
                           "docs/STATIC_ANALYSIS.md)")
    lint.add_argument("--load", type=float, default=None,
                      help="throughput requirement conditioning the "
                           "--space analysis (work units/hour)")
    lint.add_argument("--downtime", default=None,
                      help="max annual downtime conditioning the --space "
                           "reachability checks, e.g. 100m")
    lint.add_argument("--max-redundancy", type=int, default=8,
                      help="resources beyond the minimum the --space "
                           "analysis enumerates (match the search's)")
    lint.add_argument("--spare-policy",
                      choices=["cold", "hot", "all"], default="cold")
    lint.add_argument("--fix", action="append", default=[],
                      metavar="MECH.PARAM=VALUE",
                      help="pin a mechanism parameter for the --space "
                           "analysis (repeatable)")

    describe = subparsers.add_parser(
        "describe", help="summarize an infrastructure/service model pair")
    _add_model_options(describe)

    analyze = subparsers.add_parser(
        "analyze", help="downtime budget and sensitivity of the optimal "
                        "design at a requirement point")
    _add_model_options(analyze)
    analyze.add_argument("--load", type=float, required=True)
    analyze.add_argument("--downtime", required=True,
                         help="max annual downtime, e.g. 100m")
    _add_search_options(analyze)

    cache = subparsers.add_parser(
        "cache", help="inspect or maintain a persistent tier-evaluation "
                      "store (see docs/CACHING.md)")
    cache.add_argument("action", choices=["stats", "verify", "purge"],
                       help="stats: counters and size as JSON; verify: "
                            "full integrity scan (quarantines bad "
                            "entries, exits 1 when any were found or "
                            "the store is quarantined); purge: delete "
                            "every entry and lift a quarantine marker")
    cache.add_argument("dir", nargs="?", default=None, metavar="DIR",
                       help="store directory (default: the REPRO_CACHE "
                            "environment variable)")

    serve = subparsers.add_parser(
        "serve", help="run the design service daemon: accept design "
                      "jobs over a JSON HTTP API with admission "
                      "control, per-request deadlines, crash-safe "
                      "persistence, and graceful drain on "
                      "SIGTERM/SIGINT (see docs/SERVING.md)")
    serve.add_argument("--data-dir", required=True, metavar="DIR",
                       help="journal, checkpoints, and endpoint file "
                            "live here; an existing journal is "
                            "replayed and interrupted jobs re-queued")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port, advertised in "
                            "<data-dir>/endpoint.json (default: 0)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent design jobs (default: 2)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="queued jobs beyond which requests are "
                            "shed with 429 (default: 16)")
    serve.add_argument("--wait-budget", type=float, default=30.0,
                       metavar="SECONDS",
                       help="estimated queueing delay beyond which "
                            "requests are shed (default: 30)")
    serve.add_argument("--default-deadline", type=float, default=120.0,
                       metavar="SECONDS")
    serve.add_argument("--max-deadline", type=float, default=600.0,
                       metavar="SECONDS")
    serve.add_argument("--engine",
                       choices=["markov", "analytic", "simulation",
                                "fallback"],
                       default="fallback",
                       help="per-job availability engine (default: "
                            "fallback, the full degradation chain)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="supervised evaluation fan-out per design "
                            "job (default: 1, in-process supervision)")
    serve.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-candidate wall-clock budget")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long a drain waits for running jobs "
                            "to checkpoint before giving up")
    serve.add_argument("--io-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="per-socket timeout (slow-client defense)")
    serve.add_argument("--checkpoint-interval", type=int, default=10,
                       metavar="N",
                       help="autosave each job's search checkpoint "
                            "every N evaluations (default: 10)")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on journal appends (faster, "
                            "loses the crash-safety guarantee)")
    serve.add_argument("--allow-test-faults", action="store_true",
                       help="honor test_fault payload fields "
                            "(loadgen chaos); never use in production")
    serve.add_argument("--cache", metavar="DIR", default=None,
                       help="share a persistent tier-evaluation store "
                            "across all design jobs (default: the "
                            "REPRO_CACHE environment variable, else "
                            "off)")
    serve.add_argument("--cache-verify", action="store_true",
                       help="re-solve a seeded sample of cache hits "
                            "after each job; any divergence "
                            "quarantines the store (AVD604)")
    serve.add_argument("--seed", type=int, default=1, metavar="N")
    serve.add_argument("--watch-telemetry", action="append", default=[],
                       metavar="FILE",
                       help="also run the background drift reconciler "
                            "over this JSONL telemetry stream "
                            "(repeatable; see docs/REDESIGN.md)")
    serve.add_argument("--watch-tier", metavar="TIER",
                       help="tier the reconciler watches")
    serve.add_argument("--watch-load", type=float, metavar="X",
                       help="design-spec load of the watched tier")
    serve.add_argument("--watch-downtime", metavar="DURATION",
                       help="max annual downtime of the watched tier, "
                            "e.g. 100m")
    serve.add_argument("--watch-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds between reconciler polls "
                            "(default: 5)")
    serve.add_argument("--watch-infrastructure", metavar="FILE",
                       help="infrastructure spec the reconciler "
                            "designs against")
    serve.add_argument("--watch-service", metavar="FILE",
                       help="service spec the reconciler designs "
                            "against")
    serve.add_argument("--watch-paper", action="store_true",
                       help="watch the paper's e-commerce model "
                            "instead of spec files")
    serve.add_argument("--map", metavar="FILE", default=None,
                       help="also serve a precomputed requirement-"
                            "space map (repro map build) at "
                            "GET /v1/map; reloaded when the file "
                            "changes (see docs/GRID.md)")

    watch = subparsers.add_parser(
        "watch", help="run the drift-aware continuous redesign loop: "
                      "tail telemetry streams, estimate MTTF/MTTR/load "
                      "online, and re-search the design when the "
                      "observations statistically contradict its spec "
                      "(see docs/REDESIGN.md)")
    _add_model_options(watch)
    watch.add_argument("--tier", required=True,
                       help="tier to watch and redesign")
    watch.add_argument("--load", type=float, required=True,
                       help="design-spec load the incumbent is solved "
                            "for (work units/hour)")
    watch.add_argument("--downtime", required=True,
                       help="max annual downtime, e.g. 100m, 2h")
    watch.add_argument("--telemetry", action="append", default=[],
                       metavar="FILE",
                       help="JSONL telemetry stream to tail "
                            "(repeatable); malformed records are "
                            "quarantined (AVD701), never fatal")
    watch.add_argument("--journal", metavar="PATH",
                       help="crash journal: a killed watcher resumes "
                            "an interrupted redesign exactly once")
    watch.add_argument("--checkpoint", metavar="PATH",
                       help="search checkpoint reused across load-only "
                            "drift (warm re-search)")
    watch.add_argument("--cache", metavar="DIR", default=None,
                       help="shared tier-evaluation store (default: "
                            "the REPRO_CACHE environment variable, "
                            "else off)")
    watch.add_argument("--max-polls", type=int, default=None,
                       metavar="N",
                       help="stop after N polls (default: run until "
                            "SIGINT/SIGTERM)")
    watch.add_argument("--poll-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds between telemetry polls "
                            "(default: 5)")
    watch.add_argument("--json", action="store_true",
                       help="emit the final watch status as JSON "
                            "(the WATCH_STATUS_SCHEMA contract)")
    watch.add_argument("--hysteresis", type=float, default=0.05,
                       help="fractional cost improvement required to "
                            "abandon a still-feasible incumbent "
                            "(default: 0.05)")
    watch.add_argument("--confidence", type=float, default=0.99,
                       help="confidence level a contradiction must "
                            "reach before drift fires (default: 0.99)")
    watch.add_argument("--debounce", type=int, default=3, metavar="N",
                       help="consecutive contradicting polls before a "
                            "redesign (default: 3)")
    watch.add_argument("--cooldown", type=int, default=5, metavar="N",
                       help="quiet polls after each redesign "
                            "(default: 5)")
    watch.add_argument("--min-failures", type=int, default=30,
                       metavar="N")
    watch.add_argument("--min-repairs", type=int, default=20,
                       metavar="N")
    watch.add_argument("--min-load-samples", type=int, default=30,
                       metavar="N")
    watch.add_argument("--load-window", type=int, default=None,
                       metavar="N",
                       help="trailing load samples the estimate uses "
                            "(default: all)")
    watch.add_argument("--max-redundancy", type=int, default=8)
    watch.add_argument("--spare-policy",
                       choices=["cold", "hot", "all"], default="cold")
    watch.add_argument("--fix", action="append", default=[],
                       metavar="MECH.PARAM=VALUE")
    watch.add_argument("--engine",
                       choices=["markov", "analytic", "simulation",
                                "fallback"],
                       default="markov")
    watch.add_argument("--seed", type=int, default=1, metavar="N")
    watch.add_argument("--repair-crew", type=int, default=None,
                       metavar="N")
    # Test hook for the kill -9 soak: widens the window between the
    # journaled redesign-start and redesign-done.
    watch.add_argument("--test-redesign-delay", type=float,
                       default=None, help=argparse.SUPPRESS)

    map_parser = subparsers.add_parser(
        "map", help="build, inspect, or serve a sharded fault-tolerant "
                    "requirement-space map: one Pareto frontier per "
                    "grid load, journaled so kill -9 resumes, served "
                    "without search (see docs/GRID.md)")
    map_actions = map_parser.add_subparsers(dest="action", required=True)

    map_build = map_actions.add_parser(
        "build", help="compute the map shard by shard under per-shard "
                      "leases; finished shards are journaled and a "
                      "restarted build reuses them exactly once")
    _add_model_options(map_build)
    map_build.add_argument("--tier", required=True,
                           help="tier the map covers")
    map_build.add_argument("--loads", required=True,
                           metavar="L1,L2,... | START:STOP:STEP",
                           help="the load grid: comma-separated "
                                "values, or an inclusive range like "
                                "500:3000:500")
    map_build.add_argument("--out", required=True, metavar="PATH",
                           help="write the canonical map JSON here")
    map_build.add_argument("--shard-size", type=int, default=4,
                           metavar="N",
                           help="grid loads per shard (default: 4); "
                                "any partition builds the "
                                "byte-identical map")
    map_build.add_argument("--journal", metavar="PATH",
                           help="crash journal: a killed build "
                                "resumes with every finished shard "
                                "reused exactly once")
    map_build.add_argument("--lease-seconds", type=float, default=300.0,
                           metavar="SECONDS",
                           help="wall-clock budget of one shard "
                                "attempt (cooperative; default: 300)")
    map_build.add_argument("--shard-retries", type=int, default=2,
                           metavar="N",
                           help="whole-shard faults tolerated before "
                                "the shard is isolated cell by cell "
                                "(default: 2)")
    map_build.add_argument("--cell-retries", type=int, default=2,
                           metavar="N",
                           help="isolated-cell faults tolerated "
                                "before the cell is convicted as "
                                "poison and excluded (default: 2)")
    map_build.add_argument("--max-redundancy", type=int, default=8)
    map_build.add_argument("--spare-policy",
                           choices=["cold", "hot", "all"],
                           default="cold")
    map_build.add_argument("--fix", action="append", default=[],
                           metavar="MECH.PARAM=VALUE")
    map_build.add_argument("--engine",
                           choices=["markov", "analytic", "simulation",
                                    "fallback"],
                           default="markov")
    map_build.add_argument("--seed", type=int, default=1, metavar="N")
    map_build.add_argument("--repair-crew", type=int, default=None,
                           metavar="N")
    map_build.add_argument("--cache", metavar="DIR", default=None,
                           help="shared tier-evaluation store: warm "
                                "grid points reuse neighboring solves "
                                "across shards, restarts, and builds "
                                "(default: REPRO_CACHE, else off)")
    map_build.add_argument("--cache-verify", action="store_true")
    map_build.add_argument("--json", action="store_true",
                           help="emit the final MAP_STATUS_SCHEMA "
                                "document instead of a summary line")
    # Chaos-harness hooks for the grid soak tests: seeded shard fault
    # storms, poison cells, and a mid-build kill.
    map_build.add_argument("--test-fault-rate", type=float,
                           default=None, help=argparse.SUPPRESS)
    map_build.add_argument("--test-fault-seed", type=int, default=0,
                           help=argparse.SUPPRESS)
    map_build.add_argument("--test-kill-after-shards", type=int,
                           default=None, help=argparse.SUPPRESS)
    map_build.add_argument("--test-poison-load", type=float,
                           action="append", default=[],
                           help=argparse.SUPPRESS)

    map_status = map_actions.add_parser(
        "status", help="report a map's coverage and its journal's "
                       "build state as JSON (MAP_STATUS_SCHEMA); "
                       "exits 0 only when the map is complete")
    map_status.add_argument("--map", required=True, metavar="FILE",
                            help="the map JSON a build wrote")
    map_status.add_argument("--journal", metavar="PATH", default=None,
                            help="also replay the build journal "
                                 "(requires --tier and --loads to "
                                 "identify the grid)")
    map_status.add_argument("--tier", default=None)
    map_status.add_argument("--loads", default=None,
                            metavar="L1,L2,... | START:STOP:STEP")

    map_serve = map_actions.add_parser(
        "serve", help="serve a map over HTTP: GET /v1/map answers "
                      "(load, downtime) lookups from the file without "
                      "search, 503 when the region is unbuilt")
    map_serve.add_argument("--map", required=True, metavar="FILE")
    map_serve.add_argument("--data-dir", required=True, metavar="DIR")
    map_serve.add_argument("--host", default="127.0.0.1")
    map_serve.add_argument("--port", type=int, default=0,
                           help="0 picks an ephemeral port, advertised "
                                "in <data-dir>/endpoint.json")
    map_serve.add_argument("--workers", type=int, default=2)
    map_serve.add_argument("--io-timeout", type=float, default=10.0,
                           metavar="SECONDS")

    return parser


def _add_model_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--infrastructure", metavar="FILE",
                        help="infrastructure spec (Fig. 3 format)")
    parser.add_argument("--service", metavar="FILE",
                        help="service spec (Fig. 4/5 format)")
    parser.add_argument("--perf-dir", metavar="DIR", default=".",
                        help="directory for .dat performance references")
    parser.add_argument("--paper-ecommerce", action="store_true",
                        help="use the paper's e-commerce example models")
    parser.add_argument("--paper-scientific", action="store_true",
                        help="use the paper's scientific example models")
    parser.add_argument("--app-tier-only", action="store_true",
                        help="restrict the e-commerce model to its "
                             "application tier (paper's Fig. 6 setup)")


def _add_search_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-redundancy", type=int, default=8,
                        help="resources beyond the minimum to explore")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="evaluate candidates under the supervised "
                             "runtime: N>1 fans out across N worker "
                             "processes (same design as a serial run, "
                             "guaranteed), N=1 supervises in-process; "
                             "default: the REPRO_JOBS environment "
                             "variable, else the legacy serial path")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-candidate wall-clock budget; a "
                             "candidate that keeps exceeding it is "
                             "quarantined, not fatal (requires --jobs)")
    parser.add_argument("--spare-policy",
                        choices=["cold", "hot", "all"], default="cold")
    parser.add_argument("--fix", action="append", default=[],
                        metavar="MECH.PARAM=VALUE",
                        help="pin a mechanism parameter, e.g. "
                             "maintenanceA.level=bronze (repeatable)")
    parser.add_argument("--engine",
                        choices=["markov", "analytic", "simulation",
                                 "fallback"],
                        default="markov",
                        help="availability engine; 'fallback' wraps the "
                             "markov -> analytic -> simulation chain in "
                             "the fault-tolerant runtime")
    parser.add_argument("--seed", type=int, default=1, metavar="N",
                        help="random seed for the simulation engine and "
                             "resilience schedules (default: 1, so runs "
                             "are reproducible by default)")
    parser.add_argument("--repair-crew", type=int, default=None,
                        metavar="N",
                        help="bound concurrent repairs per tier "
                             "(default: unlimited)")
    parser.add_argument("--prune-dominated", dest="prune",
                        action="store_const", const="auto", default="auto",
                        help="skip candidates a static dominance "
                             "certificate proves infeasible (default: on "
                             "for the deterministic markov/analytic "
                             "engines, off otherwise; the designed "
                             "outcome is identical either way)")
    parser.add_argument("--no-prune", dest="prune",
                        action="store_const", const=False,
                        help="disable dominance pruning and evaluate "
                             "every candidate")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="persist tier availability solves in DIR "
                             "and serve repeats from it; safe to share "
                             "across concurrent runs, and the designed "
                             "system is identical with the cache off, "
                             "cold, or warm (default: the REPRO_CACHE "
                             "environment variable, else off)")
    parser.add_argument("--cache-verify", action="store_true",
                        help="paranoid mode: re-solve a seeded sample "
                             "of cache hits after the search and "
                             "quarantine the whole store on any "
                             "divergence (AVD604)")
    parser.add_argument("--batch", dest="batch", action="store_const",
                        const=True, default=None,
                        help="solve each search wavefront as stacked "
                             "linear systems in one vectorized pass "
                             "instead of one candidate at a time; the "
                             "designed system is bit-identical either "
                             "way (default: the REPRO_BATCH "
                             "environment variable, else off)")
    parser.add_argument("--no-batch", dest="batch", action="store_const",
                        const=False,
                        help="force the scalar per-candidate solve "
                             "path even when REPRO_BATCH is set")


def load_models(args, validate: bool = True) -> tuple:
    """Resolve (infrastructure, service) from the CLI options.

    ``validate=False`` defers infrastructure cross-reference checking
    (used by ``repro lint``, which reports dangling references itself
    with source spans).
    """
    if args.paper_ecommerce or args.paper_scientific:
        from .spec.paper import (ecommerce_service, paper_infrastructure,
                                 scientific_service)
        infrastructure = paper_infrastructure()
        if args.paper_scientific:
            service = scientific_service()
        else:
            service = ecommerce_service()
            if args.app_tier_only:
                service = ServiceModel(
                    "app-tier", [service.tier("application")])
        return infrastructure, service
    if not args.infrastructure or not args.service:
        raise AvedError(
            "provide --infrastructure and --service files, or one of "
            "--paper-ecommerce / --paper-scientific")
    with open(args.infrastructure) as handle:
        infrastructure = parse_infrastructure(handle.read(),
                                              validate=validate)
    with open(args.service) as handle:
        service = parse_service(handle.read(),
                                FileResolver(args.perf_dir))
    return infrastructure, service


def parse_fixed_settings(pairs) -> dict:
    """Parse ``--fix mech.param=value`` options into SearchLimits form."""
    fixed: dict = {}
    for pair in pairs:
        if "=" not in pair or "." not in pair.split("=", 1)[0]:
            raise AvedError(
                "--fix expects MECHANISM.PARAM=VALUE, got %r" % pair)
        key, value = pair.split("=", 1)
        mechanism, parameter = key.split(".", 1)
        fixed.setdefault(mechanism, {})[parameter] = _coerce(value)
    return fixed


def _coerce(value: str):
    try:
        number = float(value)
    except ValueError:
        return value
    return int(number) if number.is_integer() else number


def make_limits(args) -> SearchLimits:
    return SearchLimits(max_redundancy=args.max_redundancy,
                        spare_policy=args.spare_policy,
                        fixed_settings=parse_fixed_settings(args.fix))


def make_engine(args):
    from .availability import get_engine
    seed = getattr(args, "seed", 1)
    if args.engine == "simulation":
        return get_engine("simulation", years=500, seed=seed)
    if args.engine == "fallback":
        from .resilience import FallbackEngine
        return FallbackEngine(seed=seed)
    return get_engine(args.engine)


def resolve_jobs(args) -> Optional[int]:
    """``--jobs``, falling back to the ``REPRO_JOBS`` env variable.

    The env fallback is what lets a CI leg (or a user shell) push an
    entire existing CLI workflow through the parallel runtime without
    editing any invocation -- safe because ``--jobs N`` is
    design-identical to serial.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise AvedError("REPRO_JOBS must be an integer, got %r"
                                % env)
    if jobs is not None and jobs < 1:
        raise AvedError("--jobs must be >= 1, got %d" % jobs)
    timeout = getattr(args, "task_timeout", None)
    if timeout is not None and timeout <= 0:
        raise AvedError("--task-timeout must be positive")
    if timeout is not None and jobs is None:
        raise AvedError("--task-timeout requires --jobs")
    return jobs


def resolve_cache(args) -> tuple:
    """``(--cache, --cache-verify)``, with the ``REPRO_CACHE`` fallback.

    Like ``REPRO_JOBS``, the env fallback lets a CI leg (or a user
    shell) put a shared tier-evaluation store under an entire existing
    CLI workflow without editing any invocation -- safe because a
    cached run designs the identical system.
    """
    cache = getattr(args, "cache", None)
    if cache is None:
        env = os.environ.get("REPRO_CACHE", "").strip()
        if env:
            cache = env
    verify = bool(getattr(args, "cache_verify", False))
    if verify and cache is None:
        raise AvedError("--cache-verify requires --cache (or REPRO_CACHE)")
    return cache, verify


def resolve_batch(args) -> bool:
    """``--batch``, falling back to the ``REPRO_BATCH`` env variable.

    Like ``REPRO_JOBS`` / ``REPRO_CACHE``, the env fallback lets a CI
    leg (or a user shell) push an entire existing CLI workflow through
    the vectorized batch core without editing any invocation -- safe
    because a batched search designs the bit-identical system.
    Accepted truthy values: ``1``, ``true``, ``yes``, ``on`` (and
    their falsy complements); ``--no-batch`` always wins.
    """
    batch = getattr(args, "batch", None)
    if batch is not None:
        return bool(batch)
    env = os.environ.get("REPRO_BATCH", "").strip().lower()
    if not env:
        return False
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    raise AvedError("REPRO_BATCH must be a boolean (1/0/true/false), "
                    "got %r" % env)


def make_checkpoint(args):
    """Build (or resume) the search checkpoint requested by the CLI."""
    path = getattr(args, "checkpoint", None)
    if not path:
        if getattr(args, "resume", False):
            raise AvedError("--resume requires --checkpoint PATH")
        return None
    from .resilience import SearchCheckpoint
    if getattr(args, "resume", False):
        if os.path.exists(path):
            return SearchCheckpoint.load(path)
    return SearchCheckpoint(path)


def make_requirements(args):
    """Resolve the requirement object from --load/--downtime/--job-time."""
    if args.job_time:
        return JobRequirements(Duration.parse(args.job_time))
    if args.load is not None and args.downtime:
        return ServiceRequirements(args.load,
                                   Duration.parse(args.downtime))
    raise AvedError("provide --load with --downtime, or --job-time")


def _raise_interrupt(signum, frame):
    raise KeyboardInterrupt


@contextlib.contextmanager
def _interruptible(enabled: bool):
    """Convert SIGTERM into KeyboardInterrupt around a search.

    Enabled on the durable/parallel paths (``--checkpoint``,
    ``--jobs``): a service manager's SIGTERM then unwinds through
    :meth:`Aved._design`'s finally block -- checkpoint flushed, worker
    pool shut down cleanly -- and the process exits 130 like a Ctrl-C
    would.  SIGINT already raises KeyboardInterrupt natively; outside
    the main thread (or when disabled) this is a no-op, since signal
    handlers can only be installed from the main thread.
    """
    if not enabled \
            or threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _write_json(path: str, text: str) -> None:
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")


def _write_observability(args, observer) -> None:
    """Write --trace / --metrics-out files from a finished observer.

    Called on the failure paths too: an infeasible search still
    produced a trace and metrics, and those are exactly the runs worth
    inspecting.
    """
    import json
    if getattr(args, "trace", None):
        _write_json(args.trace, observer.tracer.to_json())
    if getattr(args, "metrics_out", None):
        _write_json(args.metrics_out,
                    json.dumps(observer.metrics.snapshot(),
                               indent=2, sort_keys=True))


def cmd_design(args, out) -> int:
    from .obs import Observer, observing
    infrastructure, service = load_models(args)
    requirements = make_requirements(args)
    jobs = resolve_jobs(args)
    cache, cache_verify = resolve_cache(args)
    engine = Aved(infrastructure, service,
                  availability_engine=make_engine(args),
                  limits=make_limits(args),
                  repair_crew=args.repair_crew,
                  checkpoint=make_checkpoint(args),
                  jobs=jobs,
                  task_timeout=args.task_timeout,
                  prune=args.prune,
                  cache=cache,
                  cache_verify=cache_verify,
                  batch=resolve_batch(args))
    observe = bool(args.trace or args.metrics_out)
    observer = Observer() if observe else None
    try:
        with _interruptible(bool(args.checkpoint or jobs)):
            if observer is not None:
                with observing(observer):
                    outcome = engine.design(requirements)
            else:
                outcome = engine.design(requirements)
    except InfeasibleError as exc:
        if observer is not None:
            _write_observability(args, observer)
        print("infeasible: %s" % exc, file=out)
        return 2
    if observer is not None:
        _write_observability(args, observer)
    if args.json:
        import json
        from .core.serialize import evaluation_to_dict
        print(json.dumps(evaluation_to_dict(outcome.evaluation),
                         indent=2, sort_keys=True), file=out)
    else:
        print(outcome.summary(), file=out)
    return 0


def cmd_profile(args, out) -> int:
    """Run one design under the observer and print where time went."""
    from .obs import (Observer, observing, profile_bench_record,
                      profile_table, write_bench_record)
    infrastructure, service = load_models(args)
    requirements = make_requirements(args)
    jobs = resolve_jobs(args)
    cache, cache_verify = resolve_cache(args)
    engine = Aved(infrastructure, service,
                  availability_engine=make_engine(args),
                  limits=make_limits(args),
                  repair_crew=args.repair_crew,
                  jobs=jobs,
                  task_timeout=args.task_timeout,
                  prune=args.prune,
                  cache=cache,
                  cache_verify=cache_verify,
                  batch=resolve_batch(args))
    observer = Observer()
    outcome = None
    infeasible = None
    with observing(observer), _interruptible(bool(jobs)):
        try:
            outcome = engine.design(requirements)
        except InfeasibleError as exc:
            infeasible = exc
    roots = observer.tracer.to_dicts()
    if getattr(args, "trace", None):
        _write_json(args.trace, observer.tracer.to_json())
    print(profile_table(roots, top=args.top), file=out)
    summary = observer.metrics.summary_lines()
    if summary:
        print("", file=out)
        print("counters:", file=out)
        for line in summary:
            print("  %s" % line, file=out)
    if args.bench_out:
        record = profile_bench_record(
            roots, observer.metrics.snapshot(),
            meta={"service": service.name,
                  "requirements": requirements.describe(),
                  "engine": args.engine})
        write_bench_record(args.bench_out, record)
    if infeasible is not None:
        print("", file=out)
        print("infeasible: %s" % infeasible, file=out)
        return 2
    print("", file=out)
    print("designed %s for %s: annual cost $%s, downtime %.1f min/yr"
          % (service.name, requirements.describe(),
             format(round(outcome.annual_cost), ","),
             outcome.downtime_minutes), file=out)
    return 0


def cmd_frontier(args, out) -> int:
    infrastructure, service = load_models(args)
    evaluator = DesignEvaluator(infrastructure, service,
                                engine=make_engine(args),
                                repair_crew=args.repair_crew)
    jobs = resolve_jobs(args)
    cache, cache_verify = resolve_cache(args)
    store = None
    if cache is not None:
        from .cache import TierEvaluationStore, attach_cache
        store = (cache if isinstance(cache, TierEvaluationStore)
                 else TierEvaluationStore(str(cache)))
        if cache_verify and store.verify_sample <= 0:
            store.verify_sample = 8
        evaluator.engine = attach_cache(evaluator.engine, store)
    runtime = None
    if jobs is not None:
        from .parallel import make_runtime
        runtime = make_runtime(evaluator.engine, jobs,
                               task_timeout=args.task_timeout,
                               seed=getattr(args, "seed", 1))
    batcher = None
    if resolve_batch(args):
        from .batch import TierBatcher, batch_target
        target = batch_target(evaluator.engine)
        if target is not None:
            batcher = TierBatcher(target)
    search = TierSearch(evaluator, make_limits(args), runtime=runtime,
                        batcher=batcher)
    try:
        with _interruptible(runtime is not None):
            frontier = search.tier_frontier(args.tier, args.load)
    finally:
        if runtime is not None:
            runtime.close()
    if store is not None and cache_verify:
        from .cache import verify_sampled_hits
        if not verify_sampled_hits(store, evaluator.engine):
            raise AvedError(
                "cache verification mismatch: a sampled hit diverged "
                "from a fresh solve; store %r quarantined" % store.root)
    if not frontier:
        print("no designs can carry load %g on tier %r"
              % (args.load, args.tier), file=out)
        return 2
    print(frontier_table(
        frontier, title="tier %r at load %g" % (args.tier, args.load)),
        file=out)
    return 0


def cmd_validate(args, out) -> int:
    infrastructure, service = load_models(args)
    problems = collect_problems(infrastructure, service)
    if problems:
        print("model pair has %d problem(s):" % len(problems), file=out)
        for problem in problems:
            print("  - %s" % problem, file=out)
        return 2
    print("ok: service %r fits the infrastructure model (%d components, "
          "%d mechanisms, %d resources)"
          % (service.name, len(infrastructure.components),
             len(infrastructure.mechanisms),
             len(infrastructure.resources)), file=out)
    return 0


def cmd_lint(args, out) -> int:
    from .errors import ExpressionError, ModelError, SpecError, UnitError
    from .lint import Diagnostic, LintReport, Span, lint_pair
    try:
        infrastructure, service = load_models(args, validate=False)
    except SpecError as exc:
        # The document never became a model; the parse error is the
        # (single, spanned) finding.
        report = LintReport([Diagnostic.new(
            "AVD001", str(exc),
            span=Span(line=exc.line) if exc.line >= 0 else None)])
    except (ModelError, ExpressionError, UnitError) as exc:
        report = LintReport([Diagnostic.new("AVD002", str(exc))])
    else:
        report = lint_pair(infrastructure, service)
        if args.space and not report.has_errors:
            space = _lint_space(args, infrastructure, service)
            report.extend(space.report)
            if args.format == "json":
                import json
                payload = json.loads(report.to_json())
                payload["space"] = space.to_dict()
                print(json.dumps(payload, indent=2, sort_keys=True),
                      file=out)
            else:
                print(report.to_text(), file=out)
                print("", file=out)
                print(space.to_text(), file=out)
            return report.exit_code(strict=args.strict)
    if args.format == "json":
        print(report.to_json(), file=out)
    else:
        print(report.to_text(), file=out)
    return report.exit_code(strict=args.strict)


def _lint_space(args, infrastructure, service):
    """Run the candidate-space analyzer behind ``repro lint --space``."""
    from .lint import analyze_space
    limits = SearchLimits(max_redundancy=args.max_redundancy,
                          spare_policy=args.spare_policy,
                          fixed_settings=parse_fixed_settings(args.fix))
    downtime = Duration.parse(args.downtime) if args.downtime else None
    return analyze_space(infrastructure, service, limits=limits,
                         load=args.load, max_downtime=downtime)


def cmd_analyze(args, out) -> int:
    from .analysis import downtime_budget_table, tornado_table
    infrastructure, service = load_models(args)
    jobs = resolve_jobs(args)
    cache, cache_verify = resolve_cache(args)
    engine = Aved(infrastructure, service,
                  availability_engine=make_engine(args),
                  limits=make_limits(args),
                  repair_crew=args.repair_crew,
                  jobs=jobs,
                  task_timeout=args.task_timeout,
                  prune=args.prune,
                  cache=cache,
                  cache_verify=cache_verify,
                  batch=resolve_batch(args))
    requirements = ServiceRequirements(args.load,
                                       Duration.parse(args.downtime))
    try:
        with _interruptible(bool(jobs)):
            outcome = engine.design(requirements)
    except InfeasibleError as exc:
        print("infeasible: %s" % exc, file=out)
        return 2
    print(evaluation_summary(outcome.evaluation), file=out)
    evaluator = engine.evaluator
    for tier_design in outcome.design.tiers:
        print("", file=out)
        print(downtime_budget_table(evaluator, tier_design, args.load),
              file=out)
        print("", file=out)
        print(tornado_table(evaluator, tier_design,
                            required_throughput=args.load), file=out)
    if len(outcome.design.tiers) == 1:
        from .core import explain_tier_choice
        explanation = explain_tier_choice(
            evaluator, outcome.design.tiers[0].tier, args.load,
            requirements.max_annual_downtime, make_limits(args))
        print("", file=out)
        print("decision neighborhood:", file=out)
        print(explanation.render(), file=out)
    return 0


def cmd_cache(args, out) -> int:
    """Inspect or maintain a persistent tier-evaluation store.

    Always emits JSON (the ``CACHE_STATUS_SCHEMA`` contract in
    :mod:`repro.contracts`), so scripts and CI legs can gate on it.
    """
    import json
    from .cache import TierEvaluationStore
    root = args.dir or os.environ.get("REPRO_CACHE", "").strip()
    if not root:
        raise AvedError("provide a store directory (or set REPRO_CACHE)")
    if not os.path.isdir(root):
        raise AvedError("no tier-evaluation store at %r" % root)
    store = TierEvaluationStore(root, scrub=False)
    payload = {"action": args.action}
    code = 0
    if args.action == "verify":
        result = store.verify_all()
        payload["verify"] = result
        if result["corrupt"] or os.path.exists(store.marker_path):
            code = 1
    elif args.action == "purge":
        payload["removed"] = store.purge()
    payload["store"] = store.stats()
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    return code


def cmd_serve(args, out) -> int:
    """Boot the design service daemon and block until drained."""
    from .serve import DesignDaemon, ServeConfig
    config = ServeConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        wait_budget=args.wait_budget,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        engine=args.engine,
        jobs=args.jobs,
        task_timeout=args.task_timeout,
        drain_grace=args.drain_grace,
        io_timeout=args.io_timeout,
        checkpoint_interval=args.checkpoint_interval,
        fsync=not args.no_fsync,
        allow_test_faults=args.allow_test_faults,
        cache_dir=resolve_cache(args)[0],
        cache_verify=args.cache_verify,
        seed=args.seed,
        watch_telemetry=tuple(args.watch_telemetry),
        watch_tier=args.watch_tier,
        watch_load=args.watch_load,
        watch_downtime_minutes=(
            Duration.parse(args.watch_downtime).as_minutes
            if args.watch_downtime else None),
        watch_interval=args.watch_interval,
        watch_infrastructure=args.watch_infrastructure,
        watch_service=args.watch_service,
        watch_paper=args.watch_paper,
        map_path=args.map)
    daemon = DesignDaemon(config)
    print("serving on %s (data dir %s)" % (daemon.url, args.data_dir),
          file=out)
    out.flush()
    code = daemon.run(install_signals=True)
    print("drained; exiting %d" % code, file=out)
    return code


def cmd_watch(args, out) -> int:
    """Run the drift-aware continuous redesign loop.

    Tails the given telemetry streams, re-estimates MTTF/MTTR/load
    online, and re-searches the tier design whenever the observations
    statistically contradict the spec the incumbent was solved for.
    With ``--json`` the final status document follows the
    ``WATCH_STATUS_SCHEMA`` contract in :mod:`repro.contracts`.

    Exit codes: 0 = watching ended with a feasible incumbent,
    2 = no feasible incumbent, 130 = interrupted (SIGINT/SIGTERM),
    1 = model or option errors.
    """
    import json
    import time
    from .core import DesignEvaluator
    from .watch import DriftPolicy, JsonlTailReader, Watcher, WatchSpec
    if not args.telemetry:
        raise AvedError("provide at least one --telemetry FILE")
    infrastructure, service = load_models(args)
    evaluator = DesignEvaluator(infrastructure, service,
                                make_engine(args),
                                args.repair_crew)
    policy = DriftPolicy(confidence=args.confidence,
                         min_failures=args.min_failures,
                         min_repairs=args.min_repairs,
                         min_load_samples=args.min_load_samples,
                         debounce=args.debounce,
                         cooldown=args.cooldown)
    spec = WatchSpec(args.tier, args.load,
                     Duration.parse(args.downtime))
    watcher = Watcher(
        evaluator, spec,
        readers=[JsonlTailReader(path) for path in args.telemetry],
        policy=policy,
        limits=make_limits(args),
        journal_path=args.journal,
        checkpoint_path=args.checkpoint,
        cache_dir=resolve_cache(args)[0],
        hysteresis=args.hysteresis,
        load_window=args.load_window)
    if args.test_redesign_delay:
        inner = watcher._search

        def slow_search(spec):
            if watcher.epoch:  # boot stays fast; redesigns dawdle
                time.sleep(args.test_redesign_delay)
            return inner(spec)

        watcher._search = slow_search  # type: ignore[method-assign]
    status = None
    with _interruptible(True):
        watcher.start()
        polls = 0
        while args.max_polls is None or polls < args.max_polls:
            status = watcher.poll()
            polls += 1
            if args.max_polls is not None and polls >= args.max_polls:
                break
            time.sleep(args.poll_interval)
    if status is None:
        status = watcher.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True), file=out)
    else:
        incumbent = status["incumbent"]
        if incumbent is None:
            print("tier %r: no feasible incumbent" % args.tier, file=out)
        else:
            print("tier %r: %s n=%d s=%d  $%s/yr  epoch %d  "
                  "polls %d  reconfigurations %d"
                  % (args.tier, incumbent["resource"],
                     incumbent["n_active"], incumbent["n_spare"],
                     format(incumbent["annual_cost"], ",.0f"),
                     status["epoch"], status["polls"],
                     status["reconfigurations"]), file=out)
        if status["quarantined"]:
            print("quarantined records: %d" % status["quarantined"],
                  file=out)
    return 0 if status["incumbent"] is not None else 2


def _parse_loads(text: str) -> tuple:
    """``--loads``: comma-separated values or START:STOP:STEP."""
    text = (text or "").strip()
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise AvedError("--loads range must be START:STOP:STEP, "
                            "got %r" % text)
        try:
            start, stop, step = (float(part) for part in parts)
        except ValueError:
            raise AvedError("--loads range values must be numbers, "
                            "got %r" % text)
        if step <= 0:
            raise AvedError("--loads range STEP must be positive")
        if stop < start:
            raise AvedError("--loads range STOP must be >= START")
        loads = []
        value = start
        while value <= stop * (1 + 1e-12) + 1e-12:
            loads.append(value)
            value = start + step * len(loads)
        return tuple(loads)
    try:
        loads = tuple(float(part) for part in text.split(",")
                      if part.strip())
    except ValueError:
        raise AvedError("--loads must be comma-separated numbers or a "
                        "START:STOP:STEP range, got %r" % text)
    if not loads:
        raise AvedError("--loads is empty")
    return loads


def cmd_map(args, out) -> int:
    if args.action == "build":
        return _cmd_map_build(args, out)
    if args.action == "status":
        return _cmd_map_status(args, out)
    return _cmd_map_serve(args, out)


def _cmd_map_build(args, out) -> int:
    """Build (or resume) a sharded requirement-space map.

    Exit codes: 0 = complete map written, 2 = partial map written
    (convicted cells excluded), 130 = interrupted (the journal makes
    re-running the same command resume, reusing finished shards).
    """
    import json
    from .core.serialize import requirement_map_to_json
    from .grid import (GridBuildInterrupted, GridBuilder, GridFaultPlan,
                       GridPolicy, GridSpec)
    infrastructure, service = load_models(args)
    evaluator = DesignEvaluator(infrastructure, service,
                                engine=make_engine(args),
                                repair_crew=args.repair_crew)
    cache, cache_verify = resolve_cache(args)
    if cache is not None:
        from .cache import TierEvaluationStore, attach_cache
        store = TierEvaluationStore(str(cache))
        if cache_verify and store.verify_sample <= 0:
            store.verify_sample = 8
        evaluator.engine = attach_cache(evaluator.engine, store)
    spec = GridSpec(args.tier, _parse_loads(args.loads),
                    shard_size=args.shard_size)
    policy = GridPolicy(lease_seconds=args.lease_seconds,
                        shard_retries=args.shard_retries,
                        cell_retries=args.cell_retries,
                        seed=args.seed)
    fault_plan = None
    if (args.test_fault_rate is not None
            or args.test_kill_after_shards is not None
            or args.test_poison_load):
        fault_plan = GridFaultPlan(
            seed=args.test_fault_seed,
            fault_rate=(args.test_fault_rate
                        if args.test_fault_rate is not None else 0.0),
            poison_loads=frozenset(args.test_poison_load),
            kill_after_shards=args.test_kill_after_shards)
    builder = GridBuilder(evaluator, spec, limits=make_limits(args),
                          journal_path=args.journal, policy=policy,
                          fault_plan=fault_plan)
    try:
        with _interruptible(True):
            space_map = builder.build()
    except GridBuildInterrupted as exc:
        print("build interrupted: %s" % exc, file=out)
        if args.journal:
            print("finished shards are journaled; re-run the same "
                  "command to resume", file=out)
        return 130
    _write_json(args.out, requirement_map_to_json(space_map))
    status = builder.status()
    status["map_path"] = args.out
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True), file=out)
    else:
        shards = status["shards"]
        print("map %s: tier %r, %d/%d loads built (%d shard(s), "
              "%d reused, %d fault(s), %d convicted cell(s)) -> %s"
              % (status["state"], spec.tier, status["loads_built"],
                 status["loads_total"], shards["total"],
                 shards["reused"], shards["faults"],
                 len(status["convicted_cells"]), args.out), file=out)
        for cell in status["convicted_cells"]:
            print("  convicted: load %g (%s)"
                  % (cell["load"], cell["reason"]), file=out)
    return 0 if status["state"] == "complete" else 2


def _cmd_map_status(args, out) -> int:
    import json
    from .grid import GridSpec, served_status
    grid_key = None
    if args.journal:
        if not (args.tier and args.loads):
            raise AvedError("--journal requires --tier and --loads to "
                            "identify the grid")
        grid_key = GridSpec(args.tier, _parse_loads(args.loads)).key()
    status, code = served_status(args.map, args.journal, grid_key)
    print(json.dumps(status, indent=2, sort_keys=True), file=out)
    return code


def _cmd_map_serve(args, out) -> int:
    """A map-serving daemon: the full service with a map mounted."""
    from .serve import DesignDaemon, ServeConfig
    config = ServeConfig(data_dir=args.data_dir, host=args.host,
                         port=args.port, workers=args.workers,
                         io_timeout=args.io_timeout,
                         map_path=args.map)
    daemon = DesignDaemon(config)
    print("serving map %s on %s (data dir %s)"
          % (args.map, daemon.url, args.data_dir), file=out)
    out.flush()
    code = daemon.run(install_signals=True)
    print("drained; exiting %d" % code, file=out)
    return code


def cmd_describe(args, out) -> int:
    from .core.report import describe_infrastructure, describe_service
    infrastructure, service = load_models(args)
    print(describe_infrastructure(infrastructure), file=out)
    print("", file=out)
    print(describe_service(service), file=out)
    return 0


_COMMANDS = {
    "design": cmd_design,
    "frontier": cmd_frontier,
    "validate": cmd_validate,
    "lint": cmd_lint,
    "analyze": cmd_analyze,
    "describe": cmd_describe,
    "profile": cmd_profile,
    "cache": cmd_cache,
    "serve": cmd_serve,
    "watch": cmd_watch,
    "map": cmd_map,
}


def main(argv: Optional[list] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:
        return 0  # e.g. output piped into `head`
    except KeyboardInterrupt:
        # SIGINT, or SIGTERM via _interruptible: durable state (the
        # checkpoint, the worker pool) was already flushed/closed on
        # the way out by Aved's finally block.
        print("interrupted; search state checkpointed where enabled",
              file=out)
        return 130
    except AvedError as exc:
        print("error: %s" % exc, file=out)
        return 1
    except OSError as exc:
        print("error: %s" % exc, file=out)
        return 1


if __name__ == "__main__":
    sys.exit(main())
