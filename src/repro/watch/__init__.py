"""repro.watch: the drift-aware continuous redesign loop.

The paper closes with the claim that "in self-managing environments,
an engine such as Aved is needed to automatically reevaluate and
reconfigure designs in response to changes" (section 7).  This package
is that loop, built so the loop itself is dependable (see
``docs/REDESIGN.md``):

* **Ingestion** (:mod:`repro.watch.ingest`) -- failure/repair/load
  observation streams from JSONL files (tailed, torn-tail tolerant)
  or an in-process :class:`repro.obs.MetricsRegistry` feed, made
  tolerant *by construction* to out-of-order, duplicated, gapped, and
  clock-skewed events: records are unioned by ``(source, seq)``, so
  any delivery order and any duplication yield the same state.
  Malformed records are quarantined per source as ``AVD701``/
  ``AVD702`` diagnostics.
* **Estimation** (:mod:`repro.watch.estimator`) -- online MTTF/MTTR/
  load estimators with confidence intervals, extending
  :mod:`repro.availability.fit`.
* **Drift detection** (:mod:`repro.watch.drift`) -- fires only when
  the observed parameters *statistically contradict* the spec the
  incumbent was solved against, with margins, debounce, and geometric
  quantization so a noisy stream can never flap the design.
* **The watcher** (:mod:`repro.watch.loop`) -- journaled (``kill -9``
  mid-redesign resumes exactly once), warm-starting re-searches from
  the incumbent's :class:`~repro.resilience.SearchCheckpoint` and the
  shared :mod:`repro.cache` store, falling back to a cold search only
  when the drifted spec invalidates them (``AVD707``).
* **Fault injection** (:mod:`repro.watch.faults`) -- a seeded
  :class:`WatchFaultPlan` (gap/dup/skew/corrupt/kill) driving the
  chaos soak: a 30% telemetry fault storm must converge to the same
  redesign decisions as the clean stream.

Wired into ``repro watch`` (CLI) and ``repro serve`` (background
reconciler; watch status on ``healthz``/``metricz``).
"""

from .drift import DriftDetector, DriftPolicy, DriftReport, quantize
from .estimator import LoadEstimate, OnlineEstimator
from .events import (EVENT_KINDS, TelemetryEvent, event_from_dict,
                     parse_line)
from .faults import FaultyStreamWriter, WatchFaultPlan, WatchKilled
from .ingest import JsonlTailReader, MetricsFeed, TelemetryLedger
from .journal import WatchJournal
from .loop import WatchSpec, Watcher, substitute_modes

__all__ = [
    "TelemetryEvent", "EVENT_KINDS", "event_from_dict", "parse_line",
    "TelemetryLedger", "JsonlTailReader", "MetricsFeed",
    "LoadEstimate", "OnlineEstimator",
    "DriftPolicy", "DriftDetector", "DriftReport", "quantize",
    "WatchJournal",
    "WatchSpec", "Watcher", "substitute_modes",
    "WatchFaultPlan", "WatchKilled", "FaultyStreamWriter",
]
