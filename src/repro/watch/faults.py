"""Seeded fault injection for telemetry streams and the watcher.

A :class:`WatchFaultPlan` decides, per telemetry record, whether the
delivery path mangles it: drops it entirely (a *gap* in the sequence
numbers), delivers it twice (*duplicate*), skews its timestamp
(*skew* -- the record stays well-formed, only its advisory clock
lies), corrupts the bytes on the wire (*corrupt* -- the line no longer
parses and must be quarantined), or kills the producer mid-write
(*kill* -- a torn tail line, raising :class:`WatchKilled`).

Decisions are pure functions of ``(seed, op_index)``, mirroring
:class:`repro.cache.CacheFaultPlan`, so a storm replays bit-for-bit.
:class:`FaultyStreamWriter` applies a plan while writing a telemetry
JSONL file; the chaos soak (``tests/watch/test_chaos.py``) feeds the
same event sequence through a clean writer and a 30%-storm writer and
asserts the watcher converges to byte-identical redesign decisions.
"""

from __future__ import annotations

import dataclasses
import os
import random
from dataclasses import dataclass
from typing import Optional

from .events import TelemetryEvent

#: Fault kinds, in cumulative-draw order.
GAP = "gap"
DUPLICATE = "duplicate"
SKEW = "skew"
CORRUPT = "corrupt"
KILL = "kill"


class WatchKilled(BaseException):
    """Simulated ``kill -9`` of a telemetry producer mid-write.

    A :class:`BaseException` on purpose: real kills are not catchable,
    so no recovery path inside the watcher may swallow one.  The test
    harness catches it at the call site, the way a supervisor observes
    a dead process, and the stream is left with a torn (newline-less)
    tail exactly as a dead writer leaves one.
    """


@dataclass(frozen=True)
class WatchFaultPlan:
    """Deterministic schedule of telemetry-delivery faults.

    Rates are independent probabilities evaluated in a fixed order
    (gap, duplicate, skew, corrupt, kill) from a single per-record
    draw, so at most one fault fires per record.
    """

    seed: int = 0
    gap_rate: float = 0.0
    duplicate_rate: float = 0.0
    skew_rate: float = 0.0
    corrupt_rate: float = 0.0
    kill_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("gap_rate", "duplicate_rate", "skew_rate",
                     "corrupt_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be in [0, 1], got %r"
                                 % (name, rate))

    def decide(self, op_index: int) -> Optional[str]:
        """The fault (if any) to inject on record number ``op_index``.

        Pure: depends only on ``(seed, op_index)``.
        """
        rng = random.Random(hash((self.seed, op_index)))
        draw = rng.random()
        cumulative = 0.0
        for action, rate in ((GAP, self.gap_rate),
                             (DUPLICATE, self.duplicate_rate),
                             (SKEW, self.skew_rate),
                             (CORRUPT, self.corrupt_rate),
                             (KILL, self.kill_rate)):
            cumulative += rate
            if draw < cumulative:
                return action
        return None

    def skew_hours(self, op_index: int) -> float:
        """The clock perturbation for a ``skew`` fault (may be huge)."""
        rng = random.Random(hash((self.seed, op_index, "skew")))
        return rng.uniform(-1000.0, 1000.0)


class FaultyStreamWriter:
    """Writes telemetry events through a fault plan to a JSONL file.

    With an all-zero plan this is a plain, well-behaved producer.  The
    op index advances on every :meth:`write` whether or not a fault
    fires, so clean and faulty runs of the same event sequence line up
    record-for-record.
    """

    def __init__(self, path: str,
                 plan: Optional[WatchFaultPlan] = None):
        self.path = path
        self.plan = plan or WatchFaultPlan()
        self.op_index = 0
        self.injected = {GAP: 0, DUPLICATE: 0, SKEW: 0, CORRUPT: 0,
                         KILL: 0}

    def _append(self, text: str) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())

    def write(self, event: TelemetryEvent) -> None:
        fault = self.plan.decide(self.op_index)
        self.op_index += 1
        line = event.to_json_line()     # newline-terminated
        if fault == GAP:
            self.injected[GAP] += 1
            return                          # dropped in transit
        if fault == DUPLICATE:
            self.injected[DUPLICATE] += 1
            self._append(line + line)
            return
        if fault == SKEW:
            self.injected[SKEW] += 1
            skewed = dataclasses.replace(
                event, time_hours=event.time_hours
                + self.plan.skew_hours(self.op_index - 1))
            self._append(skewed.to_json_line())
            return
        if fault == CORRUPT:
            self.injected[CORRUPT] += 1
            # Truncate mid-payload and splice in garbage bytes; the
            # line stays newline-terminated, so it *will* be read --
            # and must be quarantined, not half-parsed.
            self._append(line[:max(4, len(line) // 2)] + "\x00garbage}\n")
            return
        if fault == KILL:
            self.injected[KILL] += 1
            # Torn tail: the producer died mid-write.  No newline.
            self._append(line.rstrip("\n")[:max(4, len(line) // 2)])
            raise WatchKilled("producer killed writing record %d"
                              % (self.op_index - 1))
        self._append(line)

    def resume(self) -> None:
        """Restart after a kill: terminate the torn tail.

        A restarted producer appends from scratch; its first newline
        turns the torn tail plus whatever follows into one corrupt
        line, which ingestion quarantines.  Calling this makes that
        explicit (and keeps subsequent records on their own lines).
        """
        self._append("\n")


def write_stream(path: str, events, plan: Optional[WatchFaultPlan] = None,
                 writer: Optional[FaultyStreamWriter] = None) \
        -> FaultyStreamWriter:
    """Write ``events`` through ``plan``, restarting after kills."""
    active = writer or FaultyStreamWriter(path, plan)
    for event in events:
        try:
            active.write(event)
        except WatchKilled:
            active.resume()
    return active


__all__ = ["GAP", "DUPLICATE", "SKEW", "CORRUPT", "KILL",
           "WatchKilled", "WatchFaultPlan", "FaultyStreamWriter",
           "write_stream"]
