"""The watcher's crash journal: exactly-once redesign across kills.

An append-only, fsync'd JSONL file recording the watcher's state
machine: each drift-triggered redesign is an *epoch* bracketed by a
``redesign-start`` record (carrying the full drifted spec) and a
``redesign-done`` record (carrying the decision).  Replay after a
``kill -9`` is unambiguous:

* start + done  -> the epoch completed; its decision is the incumbent.
* start, no done -> the process died mid-redesign.  The redesign is
  re-executed *from the journaled spec* -- deterministically, so the
  rerun reaches the decision the killed run would have -- and the done
  record is appended then.  Exactly-once in effect: the decision is
  applied once no matter where the kill landed.
* torn tail (no trailing newline) -> the append itself was the victim;
  the partial record is ignored, which re-runs the interrupted step.

Journal *writes* that fail (disk full, permissions) degrade the
watcher rather than stop it: the append is dropped, an ``AVD709``
diagnostic is logged, and the loop continues without durability --
monitoring availability should never be the availability problem.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..resilience.events import DegradationLog, WATCH_JOURNAL_FAULT

#: Journal entry kinds.
REDESIGN_START = "redesign-start"
REDESIGN_DONE = "redesign-done"


@dataclass
class JournalState:
    """What replay recovered from a journal file."""

    #: Highest epoch with a matching ``redesign-done``.
    last_epoch: int = 0
    #: Decision payload of that epoch (the incumbent), if any.
    last_decision: Optional[Dict[str, Any]] = None
    #: Drifted spec of that epoch (for rebasing the detector), if any.
    last_spec: Optional[Dict[str, Any]] = None
    #: ``redesign-start`` record with no ``redesign-done`` -- the
    #: interrupted redesign replay must finish (exactly once).
    pending: Optional[Dict[str, Any]] = None
    #: Records successfully parsed.
    entries: int = 0
    #: Lines that did not parse (torn tail, corruption); ignored.
    skipped: int = 0


class WatchJournal:
    """Append-only fsync'd journal with degrade-on-write-failure."""

    def __init__(self, path: str,
                 log: Optional[DegradationLog] = None):
        self.path = path
        self.log = log if log is not None else DegradationLog()
        #: True once an append has failed; the watcher keeps running
        #: but its state is no longer durable.
        self.degraded = False
        self.appends = 0

    # -- writing -------------------------------------------------------

    def append(self, entry: str, epoch: int,
               **payload: Any) -> bool:
        """Durably append one record; False (and AVD709) on failure."""
        record = {"entry": entry, "epoch": epoch}
        record.update(payload)
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            self.degraded = True
            self.log.add(WATCH_JOURNAL_FAULT, detail="%s: %s"
                         % (entry, exc))
            return False
        self.appends += 1
        return True

    def redesign_start(self, epoch: int,
                       spec: Dict[str, Any]) -> bool:
        return self.append(REDESIGN_START, epoch, spec=spec)

    def redesign_done(self, epoch: int,
                      decision: Dict[str, Any]) -> bool:
        return self.append(REDESIGN_DONE, epoch, decision=decision)

    # -- replay --------------------------------------------------------

    @staticmethod
    def replay(path: str) -> JournalState:
        """Reconstruct the watcher's state from the journal file."""
        state = JournalState()
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return state
        starts: Dict[int, Dict[str, Any]] = {}
        for raw in data.split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                entry = record["entry"]
                epoch = int(record["epoch"])
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                state.skipped += 1
                continue
            state.entries += 1
            if entry == REDESIGN_START:
                starts[epoch] = record
            elif entry == REDESIGN_DONE and epoch in starts:
                if epoch > state.last_epoch:
                    state.last_epoch = epoch
                    state.last_decision = record.get("decision")
                    state.last_spec = starts[epoch].get("spec")
                starts.pop(epoch, None)
        unfinished = [epoch for epoch in starts
                      if epoch > state.last_epoch]
        if unfinished:
            state.pending = starts[max(unfinished)]
        return state


__all__ = ["REDESIGN_START", "REDESIGN_DONE", "JournalState",
           "WatchJournal"]
