"""The telemetry wire format: one observation window per record.

A telemetry stream is a sequence of JSON records, one per line.  Each
record reports one *window* of observation from one *source* (a
monitoring agent, a tier's health prober, the in-process metrics
feed):

``failure``
    ``exposure_hours`` of watched resource time for one failure mode,
    and how many ``failures`` of that mode occurred in the window
    (zero-failure windows still matter -- they are the exposure).
``repair``
    ``repairs`` completed repairs of one mode and their total
    ``repair_hours``.
``load``
    one load sample (``value``, work units/hour) for a tier.

Every record carries ``source`` and a per-source monotone ``seq``.
The pair is the record's identity: ingestion unions records by
``(source, seq)``, which is what makes the pipeline tolerant *by
construction* to re-ordering and duplication (a set union is
permutation- and duplication-invariant) and makes gaps detectable
(missing sequence numbers).  ``time_hours`` is the source's own clock
and is deliberately advisory: no estimate differences timestamps
across records, so a skewed clock can never corrupt an estimate --
only the per-record window durations, which each record carries
itself, enter the statistics.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import WatchError

#: Record kinds on the wire.
FAILURE = "failure"
REPAIR = "repair"
LOAD = "load"
EVENT_KINDS: Tuple[str, ...] = (FAILURE, REPAIR, LOAD)


@dataclass(frozen=True)
class TelemetryEvent:
    """One validated telemetry record."""

    kind: str                   # failure | repair | load
    source: str                 # stream identity
    seq: int                    # per-source monotone sequence number
    time_hours: float           # source clock (advisory; skew-tolerant)
    tier: str                   # tier the observation concerns
    mode: str = ""              # failure mode (failure/repair records)
    failures: int = 0           # failure count in the window
    exposure_hours: float = 0.0  # watched resource-hours in the window
    repairs: int = 0            # completed repairs in the window
    repair_hours: float = 0.0   # total repair time in the window
    value: float = 0.0          # load sample (load records)

    @property
    def key(self) -> Tuple[str, int]:
        """The record's identity for dedup/union."""
        return (self.source, self.seq)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": self.kind, "source": self.source, "seq": self.seq,
            "time_hours": self.time_hours, "tier": self.tier,
        }
        if self.kind == FAILURE:
            record["mode"] = self.mode
            record["failures"] = self.failures
            record["exposure_hours"] = self.exposure_hours
        elif self.kind == REPAIR:
            record["mode"] = self.mode
            record["repairs"] = self.repairs
            record["repair_hours"] = self.repair_hours
        else:
            record["value"] = self.value
        return record

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True) + "\n"


def _finite(value: Any, label: str, minimum: float = 0.0) -> float:
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise WatchError("%s must be a number, got %r" % (label, value))
    if not math.isfinite(number):
        raise WatchError("%s must be finite, got %r" % (label, value))
    if number < minimum:
        raise WatchError("%s must be >= %g, got %g"
                         % (label, minimum, number))
    return number


def _count(value: Any, label: str) -> int:
    try:
        number = int(value)
    except (TypeError, ValueError):
        raise WatchError("%s must be an integer, got %r" % (label, value))
    if isinstance(value, float) and value != number:
        raise WatchError("%s must be an integer, got %r" % (label, value))
    if number < 0:
        raise WatchError("%s cannot be negative, got %d" % (label, number))
    return number


def _name(payload: Dict[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise WatchError("record needs a non-empty %r field" % field)
    return value


def event_from_dict(payload: Any) -> TelemetryEvent:
    """Validate one decoded record; raises :class:`WatchError`."""
    if not isinstance(payload, dict):
        raise WatchError("telemetry record must be a JSON object, got %s"
                         % type(payload).__name__)
    kind = payload.get("kind")
    if kind not in EVENT_KINDS:
        raise WatchError("unknown telemetry kind %r (expected one of %s)"
                         % (kind, ", ".join(EVENT_KINDS)))
    source = _name(payload, "source")
    tier = _name(payload, "tier")
    seq = _count(payload.get("seq"), "seq")
    # Clock skew is tolerated, so the timestamp may even be negative;
    # it only has to be a finite number.
    time_hours = _finite(payload.get("time_hours", 0.0), "time_hours",
                         minimum=-math.inf)
    if kind == FAILURE:
        return TelemetryEvent(
            kind, source, seq, time_hours, tier,
            mode=_name(payload, "mode"),
            failures=_count(payload.get("failures"), "failures"),
            exposure_hours=_finite(payload.get("exposure_hours"),
                                   "exposure_hours"))
    if kind == REPAIR:
        return TelemetryEvent(
            kind, source, seq, time_hours, tier,
            mode=_name(payload, "mode"),
            repairs=_count(payload.get("repairs"), "repairs"),
            repair_hours=_finite(payload.get("repair_hours"),
                                 "repair_hours"))
    return TelemetryEvent(
        kind, source, seq, time_hours, tier,
        value=_finite(payload.get("value"), "value"))


def parse_line(line: str) -> TelemetryEvent:
    """One JSONL line -> validated event; raises :class:`WatchError`."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise WatchError("not valid JSON: %s" % exc) from exc
    return event_from_dict(payload)


__all__ = ["TelemetryEvent", "EVENT_KINDS", "FAILURE", "REPAIR", "LOAD",
           "event_from_dict", "parse_line"]
