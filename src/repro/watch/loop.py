"""The watcher: ingest -> estimate -> detect drift -> re-search.

:class:`Watcher` ties the package together into the loop the paper's
section 7 calls for.  Each :meth:`Watcher.poll`:

1. drains the telemetry sources (file tails and/or the in-process
   metrics feed) into the ledger, quarantining malformed records
   (``AVD701``), conflicting duplicates (``AVD702``) and noting gaps
   and clock skew (``AVD703``/``AVD704``);
2. asks the drift detector whether the online estimates contradict
   the spec the incumbent was solved against;
3. on a (debounced) contradiction, journals a ``redesign-start`` with
   the full drifted spec, re-runs the tier search against it, and
   journals ``redesign-done`` -- so a ``kill -9`` anywhere in between
   resumes the redesign exactly once, deterministically, from the
   journaled spec (``AVD708``).

Re-searches are *incremental*: the in-run :class:`SearchCheckpoint`
is kept across load-only drift (its structure keys embed the load but
not the failure-mode parameters, so entries stay valid -- ``AVD706``)
and discarded when failure modes drift (stale entries would be
silently wrong -- a cold re-search, ``AVD707``).  The shared
:mod:`repro.cache` store is content-addressed over the canonical tier
model, so it is always sound and supplies cross-epoch reuse either
way.

Drifted parameters enter evaluation through
:class:`DriftedEvaluator`, which substitutes observed MTBF/MTTR into
the generated tier models by mode name (:func:`substitute_modes`) --
the spec stays declarative and the whole engine stack (caching,
fallback, parallel prefetch) is reused untouched.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..availability import FailureModeEntry, TierAvailabilityModel
from ..core.design import EvaluatedTierDesign
from ..core.evaluation import DesignEvaluator
from ..core.search import SearchLimits, TierSearch
from ..core.serialize import evaluated_tier_design_to_dict
from ..errors import WatchError
from ..obs import current as _obs_current
from ..resilience.checkpoint import SearchCheckpoint
from ..resilience.events import (DRIFT_DETECTED, DegradationLog,
                                 TELEMETRY_CONFLICT, TELEMETRY_GAP,
                                 TELEMETRY_MALFORMED, TELEMETRY_SKEW,
                                 WATCH_COLD_SEARCH, WATCH_RESUMED,
                                 WATCH_WARM_START)
from ..units import Duration
from .drift import DriftDetector, DriftPolicy, DriftReport
from .estimator import OnlineEstimator
from .ingest import (ACCEPTED, CONFLICT, JsonlTailReader, MetricsFeed,
                     TelemetryLedger)
from .journal import WatchJournal

#: Quarantined payload excerpts kept in memory for status reporting.
QUARANTINE_KEEP = 50


def substitute_modes(modes: Sequence[FailureModeEntry],
                     mtbf_hours: Mapping[str, float],
                     mttr_hours: Mapping[str, float]) \
        -> Tuple[FailureModeEntry, ...]:
    """Failure-mode entries with observed parameters substituted in.

    Matching is by mode name (``component.failure``); failover times
    and spare susceptibility -- which telemetry does not observe --
    are preserved.
    """
    substituted = []
    for mode in modes:
        mtbf = mtbf_hours.get(mode.name)
        mttr = mttr_hours.get(mode.name)
        if mtbf is None and mttr is None:
            substituted.append(mode)
            continue
        substituted.append(dataclasses.replace(
            mode,
            mtbf=Duration.hours(mtbf) if mtbf is not None else mode.mtbf,
            mttr=Duration.hours(mttr) if mttr is not None
            else mode.mttr))
    return tuple(substituted)


class DriftedEvaluator(DesignEvaluator):
    """A :class:`DesignEvaluator` with drifted parameters grafted in.

    Availability models it generates carry the observed MTBF/MTTR in
    place of the declared ones; everything else (cost, throughput,
    mechanisms) is inherited.  Because the substitution changes the
    canonical tier-model form, the content-addressed cache naturally
    keeps drifted and declared solves apart.
    """

    def __init__(self, base: DesignEvaluator,
                 mtbf_hours: Mapping[str, float],
                 mttr_hours: Mapping[str, float]):
        super().__init__(base.infrastructure, base.service, base.engine,
                         base.repair_crew)
        self.mtbf_hours = dict(mtbf_hours)
        self.mttr_hours = dict(mttr_hours)

    def _tier_model(self, tier_design, required_throughput) \
            -> TierAvailabilityModel:
        model = super()._tier_model(tier_design, required_throughput)
        if not self.mtbf_hours and not self.mttr_hours:
            return model
        return TierAvailabilityModel(
            model.name, n=model.n, m=model.m, s=model.s,
            modes=substitute_modes(model.modes, self.mtbf_hours,
                                   self.mttr_hours),
            repair_crew=model.repair_crew)


@dataclass(frozen=True)
class WatchSpec:
    """The specification the incumbent design is currently solved for.

    ``mtbf_hours``/``mttr_hours`` are per-mode *overrides* of the
    declared model parameters, accumulated from accepted drift; an
    empty mapping means the declared value stands.  The spec is what
    the journal persists on ``redesign-start`` -- it fully determines
    the redesign, which is what makes crash replay deterministic.
    """

    tier: str
    load: float
    max_downtime: Duration
    mtbf_hours: Mapping[str, float] = field(default_factory=dict)
    mttr_hours: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tier:
            raise WatchError("spec needs a tier name")
        if self.load <= 0:
            raise WatchError("spec load must be positive")

    def with_drift(self, report: DriftReport) -> "WatchSpec":
        """The spec after accepting a drift report's parameters."""
        return WatchSpec(
            tier=self.tier,
            load=report.load if report.load is not None else self.load,
            max_downtime=self.max_downtime,
            mtbf_hours={**self.mtbf_hours,
                        **{mode: duration.as_hours
                           for mode, duration in report.mtbf.items()}},
            mttr_hours={**self.mttr_hours,
                        **{mode: duration.as_hours
                           for mode, duration in report.mttr.items()}})

    def modes_differ(self, other: "WatchSpec") -> bool:
        """Do the failure-mode parameters differ from ``other``'s?

        This is the warm/cold boundary: checkpoint structure keys
        embed the load but *not* the failure-mode parameters, so a
        checkpoint survives load-only drift and must be discarded on
        mode drift.
        """
        return dict(self.mtbf_hours) != dict(other.mtbf_hours) \
            or dict(self.mttr_hours) != dict(other.mttr_hours)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tier": self.tier,
            "load": self.load,
            "max_downtime_minutes": self.max_downtime.as_minutes,
            "mtbf_hours": dict(sorted(self.mtbf_hours.items())),
            "mttr_hours": dict(sorted(self.mttr_hours.items())),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "WatchSpec":
        if not isinstance(data, dict):
            raise WatchError("watch spec must be an object")
        try:
            return cls(
                tier=str(data["tier"]),
                load=float(data["load"]),
                max_downtime=Duration.minutes(
                    float(data["max_downtime_minutes"])),
                mtbf_hours={str(mode): float(value) for mode, value
                            in dict(data.get("mtbf_hours", {})).items()},
                mttr_hours={str(mode): float(value) for mode, value
                            in dict(data.get("mttr_hours", {})).items()})
        except (KeyError, TypeError, ValueError) as exc:
            raise WatchError("malformed watch spec: %s" % exc) from exc


class Watcher:
    """The drift-aware continuous redesign loop for one tier."""

    def __init__(self, evaluator: DesignEvaluator, spec: WatchSpec,
                 readers: Sequence[JsonlTailReader] = (),
                 feed: Optional[MetricsFeed] = None,
                 policy: Optional[DriftPolicy] = None,
                 limits: Optional[SearchLimits] = None,
                 journal_path: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 hysteresis: float = 0.05,
                 load_window: Optional[int] = None,
                 log: Optional[DegradationLog] = None):
        if hysteresis < 0:
            raise WatchError("hysteresis cannot be negative")
        self.spec = spec
        self.readers = list(readers)
        self.feed = feed
        self.policy = policy or DriftPolicy()
        self.limits = limits or SearchLimits()
        self.hysteresis = hysteresis
        self.log = log if log is not None else DegradationLog()
        self.journal = WatchJournal(journal_path, self.log) \
            if journal_path else None
        self.checkpoint_path = checkpoint_path
        self.cache_store = None
        if cache_dir:
            from ..cache import TierEvaluationStore, attach_cache
            self.cache_store = TierEvaluationStore(cache_dir)
            evaluator = DesignEvaluator(
                evaluator.infrastructure, evaluator.service,
                attach_cache(evaluator.engine, self.cache_store),
                evaluator.repair_crew)
        self.base_evaluator = evaluator
        self.ledger = TelemetryLedger()
        self.estimator = OnlineEstimator(self.ledger,
                                         self.policy.confidence,
                                         load_window)
        self.detector: Optional[DriftDetector] = None
        self.incumbent: Optional[EvaluatedTierDesign] = None
        self.epoch = 0
        self.polls = 0
        self.reconfigurations = 0
        self.infeasible_epochs = 0
        self.warm_starts = 0
        self.cold_searches = 0
        self.resumed = False
        self.started = False
        self.last_report: Optional[DriftReport] = None
        self.last_search_stats: Dict[str, int] = {}
        #: Every decision this watcher has applied, in order.  The
        #: chaos soak compares this list byte-for-byte between clean
        #: and fault-storm runs.
        self.decisions: List[Dict[str, Any]] = []
        self.quarantined: List[Dict[str, str]] = []
        self._checkpoint = SearchCheckpoint(path=checkpoint_path)
        self._gap_reported: Dict[str, int] = {}
        self._skew_reported: set = set()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Replay the journal, then establish the incumbent design.

        After a crash: a completed epoch restores its (journaled)
        spec; an interrupted redesign is re-executed from its
        journaled spec and completed exactly once (``AVD708``).
        """
        if self.started:
            return
        self.started = True
        pending: Optional[Dict[str, Any]] = None
        if self.journal is not None:
            state = WatchJournal.replay(self.journal.path)
            if state.last_spec is not None:
                self.spec = WatchSpec.from_dict(state.last_spec)
                self.epoch = state.last_epoch
                self.resumed = True
            if state.pending is not None:
                pending = state.pending
        if pending is not None:
            epoch = int(pending["epoch"])
            spec = WatchSpec.from_dict(pending.get("spec"))
            self.log.add(WATCH_RESUMED, tier=spec.tier,
                         detail="re-executing interrupted redesign "
                                "epoch %d from journaled spec" % epoch)
            self.resumed = True
            self.epoch = epoch - 1
            self._redesign_to(spec, journal_started=True)
        else:
            # (Re-)derive the incumbent for the current spec.  After a
            # clean restart this replays warm out of the shared cache.
            self.incumbent = self._search(self.spec)
            if self.incumbent is None:
                self.infeasible_epochs += 1
        self._rebuild_detector()

    def _rebuild_detector(self) -> None:
        mtbf: Dict[str, Duration] = {}
        mttr: Dict[str, Duration] = {}
        if self.incumbent is not None:
            for mode in self._mode_entries(self.spec,
                                           self.incumbent.design):
                mtbf[mode.name] = mode.mtbf
                mttr[mode.name] = mode.mttr
        previous = self.detector
        self.detector = DriftDetector(self.spec.tier, mtbf, mttr,
                                      self.spec.load, self.policy)
        if previous is not None:
            # Redesigns start a quiet period; streaks never carry over.
            self.detector.cooldown_left = self.policy.cooldown

    # -- evaluation plumbing -------------------------------------------

    def _evaluator_for(self, spec: WatchSpec) -> DesignEvaluator:
        if not spec.mtbf_hours and not spec.mttr_hours:
            return self.base_evaluator
        return DriftedEvaluator(self.base_evaluator, spec.mtbf_hours,
                                spec.mttr_hours)

    def _mode_entries(self, spec: WatchSpec, design) \
            -> Tuple[FailureModeEntry, ...]:
        """The incumbent's failure-mode entries under ``spec``.

        Deliberately avoids building a full tier model: mode entries
        do not depend on the load, and after an *infeasible* drift
        epoch the committed spec load may exceed what the retained
        incumbent can carry at all.
        """
        evaluator = self._evaluator_for(spec)
        resource = evaluator.infrastructure.resource(design.resource)
        spare_modes = resource.modes_for_prefix(
            design.spare_active_prefix)
        modes = evaluator.failure_mode_entries(
            resource, spare_modes,
            lambda failure: evaluator._resolve_mttr(design, failure))
        return substitute_modes(modes, spec.mtbf_hours,
                                spec.mttr_hours)

    def _search(self, spec: WatchSpec) -> Optional[EvaluatedTierDesign]:
        search = TierSearch(self._evaluator_for(spec), self.limits,
                            checkpoint=self._checkpoint)
        best = search.best_tier_design(spec.tier, spec.load,
                                       spec.max_downtime)
        self._checkpoint.flush()
        self.log.extend(self._checkpoint.drain_log())
        if self.cache_store is not None:
            self.log.extend(self.cache_store.drain_log())
        self.last_search_stats = {
            "availability_evaluations":
                search.stats.availability_evaluations,
            "cache_hits": search.stats.cache_hits,
            "resumed_evaluations": search.stats.resumed_evaluations,
        }
        return best

    # -- ingestion -----------------------------------------------------

    def _quarantine(self, source: str, excerpt: str,
                    reason: str, kind: str) -> None:
        if len(self.quarantined) < QUARANTINE_KEEP:
            self.quarantined.append({"source": source, "line": excerpt,
                                     "reason": reason})
        self.log.add(kind, tier=self.spec.tier,
                     detail="source=%s: %s" % (source, reason))

    def _ingest(self) -> int:
        """Drain every source into the ledger; returns new records."""
        added = 0
        batches = []
        for reader in self.readers:
            events, rejects = reader.poll()
            batches.append((reader.name, events))
            for reject in rejects:
                self._quarantine(reject.source, reject.line,
                                 reject.reason, TELEMETRY_MALFORMED)
        if self.feed is not None:
            batches.append((self.feed.source, self.feed.poll()))
        for name, events in batches:
            for event in events:
                outcome = self.ledger.add(event)
                if outcome == CONFLICT:
                    self._quarantine(
                        event.source, event.to_json_line()[:160],
                        "seq %d already bound to a different record"
                        % event.seq, TELEMETRY_CONFLICT)
                elif outcome == ACCEPTED:
                    added += 1
        # Report *growth* in gaps / newly skewed clocks, once each.
        for source, missing in self.ledger.gaps().items():
            if missing > self._gap_reported.get(source, 0):
                self._gap_reported[source] = missing
                self.log.add(TELEMETRY_GAP, tier=self.spec.tier,
                             detail="source=%s: %d sequence number%s "
                                    "missing" % (source, missing,
                                                 "" if missing == 1
                                                 else "s"))
        for source in self.ledger.skewed_sources():
            if source not in self._skew_reported:
                self._skew_reported.add(source)
                self.log.add(TELEMETRY_SKEW, tier=self.spec.tier,
                             detail="source=%s: clock disagrees with "
                                    "sequence order; timestamps "
                                    "ignored" % source)
        obs = _obs_current()
        if obs.enabled and added:
            obs.inc("watch.records_accepted", added)
        return added

    # -- the poll ------------------------------------------------------

    def poll(self) -> Dict[str, Any]:
        """One loop iteration; returns the current status document."""
        if not self.started:
            self.start()
        self.polls += 1
        self._ingest()
        assert self.detector is not None
        report = self.detector.observe(self.estimator)
        self.last_report = report
        obs = _obs_current()
        if obs.enabled:
            obs.inc("watch.polls")
        if report.drifted:
            self.log.add(DRIFT_DETECTED, tier=self.spec.tier,
                         detail="; ".join(report.reasons))
            if obs.enabled:
                obs.inc("watch.drifts")
            self._redesign_to(self.spec.with_drift(report))
            self._rebuild_detector()
        return self.status()

    # -- redesign ------------------------------------------------------

    def _redesign_to(self, spec: WatchSpec,
                     journal_started: bool = False) -> None:
        """Re-search against ``spec`` and apply the decision (once)."""
        self.epoch += 1
        cold = spec.modes_differ(self.spec)
        if self.journal is not None and not journal_started:
            self.journal.redesign_start(self.epoch, spec.to_dict())
        if cold:
            # Checkpoint structure keys ignore failure-mode params, so
            # every entry would silently describe the *old* world.
            self._checkpoint = SearchCheckpoint(path=self.checkpoint_path)
            self.cold_searches += 1
            self.log.add(WATCH_COLD_SEARCH, tier=spec.tier,
                         detail="failure-mode parameters drifted; "
                                "checkpoint discarded for epoch %d"
                         % self.epoch)
        else:
            self.warm_starts += 1
            self.log.add(WATCH_WARM_START, tier=spec.tier,
                         detail="load-only drift; epoch %d reuses %d "
                                "checkpointed evaluations"
                         % (self.epoch, self._checkpoint.evaluations))
        optimum = self._search(spec)
        reconfigured = False
        feasible = optimum is not None
        decision_design = self.incumbent
        if optimum is None:
            self.infeasible_epochs += 1
        elif self.incumbent is None:
            decision_design, reconfigured = optimum, True
        elif self._still_adequate(self.incumbent, spec) \
                and optimum.annual_cost >= self.incumbent.annual_cost \
                * (1.0 - self.hysteresis):
            decision_design = self.incumbent
        else:
            decision_design, reconfigured = optimum, True
        decision = {
            "epoch": self.epoch,
            "spec": spec.to_dict(),
            "feasible": feasible,
            "reconfigured": reconfigured,
            "design": (evaluated_tier_design_to_dict(decision_design)
                       if decision_design is not None else None),
        }
        if self.journal is not None:
            self.journal.redesign_done(self.epoch, decision)
        # The commit point: journal says done, so apply exactly once.
        self.spec = spec
        self.incumbent = decision_design
        if reconfigured:
            self.reconfigurations += 1
        self.decisions.append(decision)
        obs = _obs_current()
        if obs.enabled:
            obs.inc("watch.epochs")
            if reconfigured:
                obs.inc("watch.reconfigurations")
            if not feasible:
                obs.inc("watch.infeasible_epochs")

    def _still_adequate(self, incumbent: EvaluatedTierDesign,
                        spec: WatchSpec) -> bool:
        """Can the incumbent carry the drifted spec within the SLO?"""
        evaluator = self._evaluator_for(spec)
        option = evaluator.service.tier(spec.tier).option_for(
            incumbent.design.resource)
        needed = option.min_active_for(spec.load)
        if needed is None or needed > incumbent.design.n_active:
            return False
        model = evaluator.tier_model(incumbent.design, spec.load)
        result = evaluator.engine.evaluate_tier(model)
        return result.annual_downtime <= spec.max_downtime

    # -- reporting -----------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The watcher's state document (see ``WATCH_STATUS_SCHEMA``)."""
        incumbent = None
        if self.incumbent is not None:
            design = self.incumbent.design
            incumbent = {
                "resource": design.resource,
                "n_active": design.n_active,
                "n_spare": design.n_spare,
                "annual_cost": self.incumbent.annual_cost,
            }
        return {
            "tier": self.spec.tier,
            "epoch": self.epoch,
            "polls": self.polls,
            "resumed": self.resumed,
            "spec": self.spec.to_dict(),
            "incumbent": incumbent,
            "reconfigurations": self.reconfigurations,
            "infeasible_epochs": self.infeasible_epochs,
            "warm_starts": self.warm_starts,
            "cold_searches": self.cold_searches,
            "ingest": self.ledger.snapshot(),
            "quarantined": len(self.quarantined),
            "drift": (self.last_report.to_dict()
                      if self.last_report is not None else None),
            "journal": {
                "enabled": self.journal is not None,
                "degraded": (self.journal.degraded
                             if self.journal is not None else False),
                "appends": (self.journal.appends
                            if self.journal is not None else 0),
            },
            "search": dict(self.last_search_stats),
            "degradations": self.log.counts(),
        }

    def decisions_digest(self) -> str:
        """Canonical JSON of every applied decision (soak comparisons)."""
        return json.dumps(self.decisions, sort_keys=True)


__all__ = ["WatchSpec", "Watcher", "DriftedEvaluator",
           "substitute_modes", "QUARANTINE_KEEP"]
