"""Telemetry ingestion: tailing, union-by-identity, quarantine.

Three cooperating pieces:

* :class:`TelemetryLedger` -- the deduplicating accumulator.  Records
  are unioned by ``(source, seq)``: replaying, reordering, or
  duplicating a stream provably cannot change the ledger (the
  permutation/duplication-invariance property tests pin this).  A
  duplicate whose payload *differs* from the first-seen record is a
  conflict -- somebody re-used a sequence number or corrupted a record
  in a way that still parses -- and is rejected (``AVD702``), keeping
  the first-seen record.
* :class:`JsonlTailReader` -- tails a JSONL telemetry file.  Only
  complete (newline-terminated) lines are consumed, so a torn tail
  from a killed producer is simply *not yet there*; the reader resumes
  from its byte offset on every poll.  Undecodable or malformed lines
  are returned as rejects for per-source quarantine (``AVD701``).
* :class:`MetricsFeed` -- the in-process feed: synthesizes telemetry
  windows from a live :class:`repro.obs.MetricsRegistry` by deltaing
  instrument values between polls, so a process hosting both the
  workload and the watcher needs no file in between.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from .events import (FAILURE, LOAD, REPAIR, TelemetryEvent, parse_line)

#: ``TelemetryLedger.add`` outcomes.
ACCEPTED = "accepted"
DUPLICATE = "duplicate"
CONFLICT = "conflict"


@dataclass
class ModeStats:
    """Accumulated failure/repair observations for one (tier, mode)."""

    failures: int = 0
    exposure_hours: float = 0.0
    repairs: int = 0
    repair_hours: float = 0.0


@dataclass
class SourceStats:
    """Per-source bookkeeping for gap and skew detection."""

    records: int = 0
    max_seq: int = -1
    #: seq -> time_hours, for on-demand skew detection.
    times: Dict[int, float] = field(default_factory=dict)

    @property
    def missing(self) -> int:
        """Sequence numbers never seen below the highest seen."""
        return self.max_seq + 1 - self.records


class TelemetryLedger:
    """Order-free union of telemetry records, keyed by (source, seq)."""

    def __init__(self) -> None:
        #: (source, seq) -> canonical payload line (for conflict checks).
        self._seen: Dict[Tuple[str, int], str] = {}
        self._modes: Dict[Tuple[str, str], ModeStats] = {}
        #: tier -> {(source, seq) -> load value}.
        self._loads: Dict[str, Dict[Tuple[str, int], float]] = {}
        self._sources: Dict[str, SourceStats] = {}
        self.accepted = 0
        self.duplicates = 0
        self.conflicts = 0

    # -- ingestion -----------------------------------------------------

    def add(self, event: TelemetryEvent) -> str:
        """Union one record in; returns ACCEPTED/DUPLICATE/CONFLICT."""
        canonical = event.to_json_line()
        previous = self._seen.get(event.key)
        if previous is not None:
            if previous == canonical:
                self.duplicates += 1
                return DUPLICATE
            self.conflicts += 1
            return CONFLICT
        self._seen[event.key] = canonical
        self.accepted += 1
        stats = self._sources.setdefault(event.source, SourceStats())
        stats.records += 1
        stats.max_seq = max(stats.max_seq, event.seq)
        stats.times[event.seq] = event.time_hours
        if event.kind == FAILURE:
            mode = self._modes.setdefault((event.tier, event.mode),
                                          ModeStats())
            mode.failures += event.failures
            mode.exposure_hours += event.exposure_hours
        elif event.kind == REPAIR:
            mode = self._modes.setdefault((event.tier, event.mode),
                                          ModeStats())
            mode.repairs += event.repairs
            mode.repair_hours += event.repair_hours
        elif event.kind == LOAD:
            self._loads.setdefault(event.tier, {})[event.key] = \
                event.value
        return ACCEPTED

    # -- accessors -----------------------------------------------------

    def tiers(self) -> List[str]:
        names = {tier for tier, _ in self._modes}
        names.update(self._loads)
        return sorted(names)

    def modes(self, tier: str) -> List[str]:
        return sorted(mode for t, mode in self._modes if t == tier)

    def mode_stats(self, tier: str, mode: str) -> ModeStats:
        return self._modes.get((tier, mode), ModeStats())

    def load_samples(self, tier: str,
                     window: Optional[int] = None) -> List[float]:
        """Load samples in canonical ``(source, seq)`` order.

        Ordering by record identity -- never by timestamp -- is what
        makes the view invariant under delivery order *and* clock
        skew.  ``window`` keeps only the trailing samples.
        """
        samples = self._loads.get(tier, {})
        ordered = [samples[key] for key in sorted(samples)]
        if window is not None and window > 0:
            ordered = ordered[-window:]
        return ordered

    def gaps(self) -> Dict[str, int]:
        """Per-source count of missing sequence numbers (gaps only)."""
        return {source: stats.missing
                for source, stats in sorted(self._sources.items())
                if stats.missing > 0}

    def skewed_sources(self) -> List[str]:
        """Sources whose clock disagrees with their sequence order."""
        skewed = []
        for source, stats in sorted(self._sources.items()):
            times = [stats.times[seq] for seq in sorted(stats.times)]
            if any(later < earlier
                   for earlier, later in zip(times, times[1:])):
                skewed.append(source)
        return skewed

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic summary (counts only; no payloads)."""
        return {
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "conflicts": self.conflicts,
            "sources": {
                source: {"records": stats.records,
                         "max_seq": stats.max_seq,
                         "missing": stats.missing}
                for source, stats in sorted(self._sources.items())},
        }


@dataclass(frozen=True)
class RejectedLine:
    """A line the tail reader could not turn into a valid event."""

    source: str                 # the stream's name (file path)
    line: str                   # the offending text (truncated)
    reason: str


class JsonlTailReader:
    """Incremental reader of a JSONL telemetry file.

    Consumes only newline-terminated lines, so a producer killed
    mid-write leaves a torn tail that is invisible until the next
    producer completes the line (at which point the merged bytes are
    one malformed record, rejected and quarantined -- never silently
    half-parsed).  A missing file is an empty stream, not an error:
    the producer may simply not have started yet.
    """

    #: Reject-line excerpts are capped so quarantine stays bounded.
    EXCERPT = 160

    def __init__(self, path: str, name: Optional[str] = None):
        self.path = path
        self.name = name or os.path.basename(path)
        self._offset = 0
        self.lines_read = 0

    def poll(self) -> Tuple[List[TelemetryEvent], List[RejectedLine]]:
        """All newly completed lines since the last poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except OSError:
            return [], []
        cut = data.rfind(b"\n")
        if cut < 0:
            return [], []
        chunk, self._offset = data[:cut + 1], self._offset + cut + 1
        events: List[TelemetryEvent] = []
        rejects: List[RejectedLine] = []
        for raw in chunk.split(b"\n"):
            if not raw.strip():
                continue
            self.lines_read += 1
            line = raw.decode("utf-8", errors="replace")
            try:
                events.append(parse_line(line))
            except Exception as exc:  # WatchError, and anything hostile
                rejects.append(RejectedLine(
                    self.name, line[:self.EXCERPT], str(exc)))
        return events, rejects


class MetricsFeed:
    """Synthesizes telemetry windows from a live metrics registry.

    A process hosting the watched workload publishes cumulative
    instruments (the ``watch.<tier>...`` convention below); each
    :meth:`poll` deltas them against the previous poll and emits the
    difference as one telemetry window per mode, plus one load sample:

    * counter ``watch.<tier>.<mode>.failures`` and gauge
      ``watch.<tier>.<mode>.exposure_hours`` -> a ``failure`` window;
    * counter ``watch.<tier>.<mode>.repairs`` and gauge
      ``watch.<tier>.<mode>.repair_hours`` -> a ``repair`` window;
    * gauge ``watch.<tier>.load`` -> a ``load`` sample (when set).
    """

    def __init__(self, registry: MetricsRegistry, tier: str,
                 modes: Sequence[str], source: str = "obs-feed",
                 prefix: str = "watch"):
        self.registry = registry
        self.tier = tier
        self.modes = list(modes)
        self.source = source
        self.prefix = prefix
        self._seq = 0
        self._last: Dict[str, float] = {}

    def _delta(self, name: str, value: float) -> float:
        previous = self._last.get(name, 0.0)
        self._last[name] = value
        return value - previous

    def _next(self, **fields: Any) -> TelemetryEvent:
        event = TelemetryEvent(source=self.source, seq=self._seq,
                               tier=self.tier, **fields)
        self._seq += 1
        return event

    def poll(self) -> List[TelemetryEvent]:
        events: List[TelemetryEvent] = []
        base = "%s.%s" % (self.prefix, self.tier)
        clock = 0.0
        for mode in self.modes:
            stem = "%s.%s" % (base, mode)
            exposure = self._delta(
                stem + ".exposure_hours",
                self.registry.gauge(stem + ".exposure_hours").value)
            failures = int(self._delta(
                stem + ".failures",
                self.registry.counter_value(stem + ".failures")))
            clock = max(clock, self._last[stem + ".exposure_hours"])
            if exposure > 0 or failures > 0:
                events.append(self._next(
                    kind=FAILURE, time_hours=clock, mode=mode,
                    failures=failures, exposure_hours=max(exposure, 0.0)))
            repair_hours = self._delta(
                stem + ".repair_hours",
                self.registry.gauge(stem + ".repair_hours").value)
            repairs = int(self._delta(
                stem + ".repairs",
                self.registry.counter_value(stem + ".repairs")))
            if repairs > 0:
                events.append(self._next(
                    kind=REPAIR, time_hours=clock, mode=mode,
                    repairs=repairs,
                    repair_hours=max(repair_hours, 0.0)))
        load = self.registry.gauge(base + ".load").value
        if load > 0:
            events.append(self._next(kind=LOAD, time_hours=clock,
                                     value=load))
        return events


__all__ = ["ACCEPTED", "DUPLICATE", "CONFLICT", "ModeStats",
           "SourceStats", "TelemetryLedger", "RejectedLine",
           "JsonlTailReader", "MetricsFeed"]
