"""Online parameter estimation over an ingested telemetry ledger.

Thin statistical layer between ingestion and drift detection: reads
the per-mode failure/repair aggregates and the load samples out of a
:class:`~repro.watch.ingest.TelemetryLedger` and turns them into
interval estimates -- MTBF and MTTR via the chi-square machinery in
:mod:`repro.availability.fit`, load via a Student-t interval on the
sample mean.  Everything is recomputed from the ledger's aggregates,
so the estimates inherit the ledger's permutation/duplication
invariance for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import scipy.stats

from ..availability.fit import (MtbfEstimate, MttrEstimate,
                                estimate_mtbf, estimate_mttr)
from ..errors import WatchError
from .ingest import TelemetryLedger


@dataclass(frozen=True)
class LoadEstimate:
    """A mean-load estimate with a two-sided confidence interval."""

    tier: str
    samples: int
    mean: float
    lower: float                # -inf when the interval is degenerate
    upper: float                # +inf when the interval is degenerate
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def estimate_load(tier: str, samples: list, confidence: float = 0.95) \
        -> Optional[LoadEstimate]:
    """Student-t interval on the mean of the observed load samples.

    Returns ``None`` with no samples; with one sample (or zero
    variance pathologies aside) fewer than two samples yield an
    unbounded interval -- a single observation cannot contradict any
    spec.
    """
    if not 0.0 < confidence < 1.0:
        raise WatchError("confidence must be in (0, 1)")
    count = len(samples)
    if count == 0:
        return None
    mean = math.fsum(samples) / count
    if count == 1:
        return LoadEstimate(tier, 1, mean, -math.inf, math.inf,
                            confidence)
    variance = math.fsum((value - mean) ** 2 for value in samples) \
        / (count - 1)
    stderr = math.sqrt(variance / count)
    half = float(scipy.stats.t.ppf((1.0 + confidence) / 2.0,
                                   count - 1)) * stderr
    return LoadEstimate(tier, count, mean, mean - half, mean + half,
                        confidence)


class OnlineEstimator:
    """Current interval estimates for one tier, read off the ledger."""

    def __init__(self, ledger: TelemetryLedger,
                 confidence: float = 0.95,
                 load_window: Optional[int] = None):
        if not 0.0 < confidence < 1.0:
            raise WatchError("confidence must be in (0, 1)")
        self.ledger = ledger
        self.confidence = confidence
        #: Trailing load samples to keep (None = all); a window makes
        #: the load estimate track the *current* level instead of the
        #: all-time mean, which is what drift detection wants.
        self.load_window = load_window

    def mtbf(self, tier: str, mode: str) -> Optional[MtbfEstimate]:
        stats = self.ledger.mode_stats(tier, mode)
        if stats.exposure_hours <= 0:
            return None
        return estimate_mtbf(mode, stats.failures, stats.exposure_hours,
                             self.confidence)

    def mttr(self, tier: str, mode: str) -> Optional[MttrEstimate]:
        stats = self.ledger.mode_stats(tier, mode)
        if stats.repairs == 0 or stats.repair_hours <= 0:
            return None
        return estimate_mttr(mode, stats.repairs, stats.repair_hours,
                             self.confidence)

    def load(self, tier: str) -> Optional[LoadEstimate]:
        samples = self.ledger.load_samples(tier, self.load_window)
        return estimate_load(tier, samples, self.confidence)

    def mtbf_estimates(self, tier: str) -> Dict[str, MtbfEstimate]:
        estimates = {}
        for mode in self.ledger.modes(tier):
            estimate = self.mtbf(tier, mode)
            if estimate is not None:
                estimates[mode] = estimate
        return estimates

    def mttr_estimates(self, tier: str) -> Dict[str, MttrEstimate]:
        estimates = {}
        for mode in self.ledger.modes(tier):
            estimate = self.mttr(tier, mode)
            if estimate is not None:
                estimates[mode] = estimate
        return estimates


__all__ = ["LoadEstimate", "estimate_load", "OnlineEstimator"]
