"""Drift detection: when observation contradicts the incumbent spec.

The detector compares online estimates against the specification the
incumbent design was solved for, and declares drift only on
*statistical contradiction*: the confidence interval must exclude the
spec value AND the point estimate must differ by a configured margin
AND enough observations must back it.  A contradiction must then
persist for ``debounce`` consecutive polls before the detector fires,
and a ``cooldown`` after each redesign suppresses immediate
re-triggering -- together with the redesign controller's own
hysteresis this is what makes flapping impossible by construction.

Drifted parameters are snapped onto a geometric grid anchored at the
spec value (:func:`quantize`).  That quantization is what lets a
telemetry stream mangled by a 30% fault storm converge to *the same*
drifted spec -- and therefore byte-identical redesign decisions -- as
the clean stream: any surviving subset of a drift plateau estimates a
value within the grid cell, and the snap erases the residual noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import WatchError
from ..units import Duration
from .estimator import OnlineEstimator


def quantize(value: float, ratio: float = 1.25,
             anchor: float = 1.0) -> float:
    """Snap ``value`` onto the geometric grid ``anchor * ratio**k``."""
    if value <= 0 or anchor <= 0:
        raise WatchError("can only quantize positive values")
    if ratio <= 1.0:
        raise WatchError("quantization ratio must exceed 1")
    step = round(math.log(value / anchor) / math.log(ratio))
    return anchor * ratio ** step


@dataclass(frozen=True)
class DriftPolicy:
    """When does observation overrule the spec?  Deliberately strict.

    The defaults are tuned so that a *stationary* stream (parameters
    matching the spec) essentially never fires: a 99% interval must
    exclude the spec, the point estimate must be off by a factor-scale
    margin, a minimum number of observations must back it, and the
    contradiction must persist for ``debounce`` consecutive polls.
    """

    confidence: float = 0.99
    min_failures: int = 30          # per mode, before MTBF can drift
    min_repairs: int = 20           # per mode, before MTTR can drift
    min_load_samples: int = 30
    mtbf_margin: float = 2.0        # point estimate off by >= this factor
    mttr_margin: float = 2.0
    load_margin: float = 1.25
    debounce: int = 3               # consecutive contradicting polls
    cooldown: int = 5               # quiet polls after each redesign
    quantize_ratio: float = 1.25

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise WatchError("confidence must be in (0, 1)")
        for label in ("min_failures", "min_repairs", "min_load_samples",
                      "debounce"):
            if getattr(self, label) < 1:
                raise WatchError("%s must be at least 1" % label)
        if self.cooldown < 0:
            raise WatchError("cooldown cannot be negative")
        for label in ("mtbf_margin", "mttr_margin", "load_margin",
                      "quantize_ratio"):
            if getattr(self, label) <= 1.0:
                raise WatchError("%s must exceed 1" % label)


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift poll."""

    tier: str
    drifted: bool                   # fired: debounce satisfied
    streak: int                     # consecutive contradicting polls
    cooldown: int                   # quiet polls still remaining
    reasons: Tuple[str, ...]        # deterministic contradiction notes
    #: Quantized replacement parameters, only for contradicted ones.
    mtbf: Dict[str, Duration] = field(default_factory=dict)
    mttr: Dict[str, Duration] = field(default_factory=dict)
    load: Optional[float] = None

    @property
    def contradicted(self) -> bool:
        return bool(self.reasons)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "drifted": self.drifted,
            "streak": self.streak,
            "cooldown": self.cooldown,
            "reasons": list(self.reasons),
            "mtbf_hours": {mode: value.as_hours
                           for mode, value in sorted(self.mtbf.items())},
            "mttr_hours": {mode: value.as_hours
                           for mode, value in sorted(self.mttr.items())},
            "load": self.load,
        }


class DriftDetector:
    """Tracks one tier's spec against the estimate stream."""

    def __init__(self, tier: str, spec_mtbf: Mapping[str, Duration],
                 spec_mttr: Mapping[str, Duration], spec_load: float,
                 policy: Optional[DriftPolicy] = None):
        if spec_load <= 0:
            raise WatchError("spec load must be positive")
        self.tier = tier
        self.spec_mtbf = dict(spec_mtbf)
        self.spec_mttr = dict(spec_mttr)
        self.spec_load = spec_load
        self.policy = policy or DriftPolicy()
        self.streak = 0
        self.cooldown_left = 0

    # -- per-parameter contradiction checks ----------------------------

    def _snap(self, observed: float, spec: float) -> float:
        return quantize(observed, self.policy.quantize_ratio, spec)

    def _check_mtbf(self, estimator: OnlineEstimator, mode: str,
                    spec: Duration, reasons: list,
                    drifted: Dict[str, Duration]) -> None:
        estimate = estimator.mtbf(self.tier, mode)
        if estimate is None or estimate.mtbf is None \
                or estimate.failures < self.policy.min_failures:
            return
        point = estimate.mtbf.as_hours
        spec_hours = spec.as_hours
        margin = self.policy.mtbf_margin
        if estimate.contains(spec) \
                or spec_hours / margin < point < spec_hours * margin:
            return
        snapped = self._snap(point, spec_hours)
        drifted[mode] = Duration.hours(snapped)
        reasons.append(
            "mtbf[%s]: spec %gh outside %g%% CI of estimate %gh "
            "(%d failures); drifting to %gh"
            % (mode, spec_hours, 100 * estimate.confidence, point,
               estimate.failures, snapped))

    def _check_mttr(self, estimator: OnlineEstimator, mode: str,
                    spec: Duration, reasons: list,
                    drifted: Dict[str, Duration]) -> None:
        estimate = estimator.mttr(self.tier, mode)
        if estimate is None or estimate.mttr is None \
                or estimate.repairs < self.policy.min_repairs:
            return
        point = estimate.mttr.as_hours
        spec_hours = spec.as_hours
        margin = self.policy.mttr_margin
        if estimate.contains(spec) \
                or spec_hours / margin < point < spec_hours * margin:
            return
        snapped = self._snap(point, spec_hours)
        drifted[mode] = Duration.hours(snapped)
        reasons.append(
            "mttr[%s]: spec %gh outside %g%% CI of estimate %gh "
            "(%d repairs); drifting to %gh"
            % (mode, spec_hours, 100 * estimate.confidence, point,
               estimate.repairs, snapped))

    def _check_load(self, estimator: OnlineEstimator, reasons: list) \
            -> Optional[float]:
        estimate = estimator.load(self.tier)
        if estimate is None \
                or estimate.samples < self.policy.min_load_samples:
            return None
        margin = self.policy.load_margin
        if estimate.contains(self.spec_load) \
                or self.spec_load / margin < estimate.mean \
                < self.spec_load * margin:
            return None
        snapped = self._snap(estimate.mean, self.spec_load)
        reasons.append(
            "load: spec %g outside %g%% CI of mean %g (%d samples); "
            "drifting to %g"
            % (self.spec_load, 100 * estimate.confidence, estimate.mean,
               estimate.samples, snapped))
        return snapped

    # -- the poll ------------------------------------------------------

    def observe(self, estimator: OnlineEstimator) -> DriftReport:
        """One poll: estimates vs. spec, through debounce and cooldown."""
        reasons: list = []
        mtbf: Dict[str, Duration] = {}
        mttr: Dict[str, Duration] = {}
        for mode in sorted(self.spec_mtbf):
            self._check_mtbf(estimator, mode, self.spec_mtbf[mode],
                             reasons, mtbf)
        for mode in sorted(self.spec_mttr):
            self._check_mttr(estimator, mode, self.spec_mttr[mode],
                             reasons, mttr)
        load = self._check_load(estimator, reasons)
        if self.cooldown_left > 0:
            # Quiet period after a redesign: observe, but never fire.
            self.cooldown_left -= 1
            self.streak = 0
            return DriftReport(self.tier, False, 0, self.cooldown_left,
                               tuple(reasons), mtbf, mttr, load)
        self.streak = self.streak + 1 if reasons else 0
        fired = self.streak >= self.policy.debounce
        return DriftReport(self.tier, fired, self.streak,
                           self.cooldown_left, tuple(reasons),
                           mtbf, mttr, load)

    def rebase(self, mtbf: Mapping[str, Duration],
               mttr: Mapping[str, Duration],
               load: Optional[float]) -> None:
        """Adopt drifted parameters as the new spec after a redesign."""
        self.spec_mtbf.update(mtbf)
        self.spec_mttr.update(mttr)
        if load is not None:
            self.spec_load = load
        self.streak = 0
        self.cooldown_left = self.policy.cooldown


__all__ = ["quantize", "DriftPolicy", "DriftReport", "DriftDetector"]
