"""Stacked assembly and solve of same-shape birth-death chains.

Given one :class:`~repro.batch.chains.ChainTemplate` and a ``(4, K)``
rate matrix (one column per group member), this module assembles the
``K`` transposed-generator systems as a single ``(K, size, size)``
array and solves them in one LAPACK gesv call via numpy's stacked
``np.linalg.solve``.

Bit-identity with the scalar path is engineered, not hoped for:

* every off-diagonal cell is written by exactly one edge, so a single
  fancy-index assignment reproduces the scalar ``matrix[o, t] += rate``
  (on a zero cell) exactly;
* diagonal cells accumulate their origin's edge rates sequentially in
  emission order via the template's slot schedule -- the same
  left-to-right float subtraction chain as the scalar loop;
* stacked ``np.linalg.solve`` on ``(K, n, n) x (K, n, 1)`` performs an
  independent LU solve per slice, bitwise equal to the scalar per-chain
  ``solve`` (the rhs is lifted to a column matrix because numpy >= 2
  treats a 2-D rhs as one matrix, not a stack of vectors);
* reductions (normalization total, unavailability, failure flux) are
  computed per member with the scalar's exact operation order:
  contiguous per-row ``.sum()`` for the normalizer, and zero-seeded
  ``np.cumsum`` rows for the state-ordered accumulations (cumsum is a
  strict left-to-right chain, matching ``acc += term`` loops).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..units import HOURS_PER_YEAR
from .chains import KIND_FAILURE, KIND_SPARE, ChainTemplate


def _assemble_into(template: ChainTemplate, rates: np.ndarray,
                   systems: np.ndarray) -> None:
    """Assemble one group's systems into a pre-zeroed ``(K, n, n)`` view.

    Each slice equals the scalar path's ``generator.T`` with the last
    row replaced by the normalization constraint.
    """
    size = template.size
    # (E, K): the scalar per-edge ``coeff * rate`` multiply, batched.
    vals = template.edge_coeff[:, None] * rates[template.edge_kind]
    # Off-diagonal of the *transposed* generator: cell (target, origin)
    # is owned by exactly one edge, so assignment == the scalar "+=" on
    # a fresh zero cell.
    systems[:, template.edge_target, template.edge_origin] = vals.T
    # Diagonal: subtract each origin's edge rates in emission order.
    for origins, rows in template.diag_slots:
        systems[:, origins, origins] -= vals[rows].T
    # Replace the last balance equation with sum(pi) = 1.
    systems[:, size - 1, :] = 1.0


def assemble_systems(template: ChainTemplate,
                     rates: np.ndarray) -> np.ndarray:
    """Build the ``(K, size, size)`` stacked linear systems."""
    systems = np.zeros((rates.shape[1], template.size, template.size))
    _assemble_into(template, rates, systems)
    return systems


def solve_size_class(groups: Sequence[Tuple[ChainTemplate, np.ndarray]]) \
        -> List[np.ndarray]:
    """Solve several same-size shape groups in ONE stacked LAPACK call.

    ``np.linalg.solve`` over a ``(K, n, n)`` stack factorizes each
    slice independently, so concatenating groups that share a matrix
    size changes nothing per member while amortizing the gufunc
    dispatch across every group in the class.  Returns per-group
    ``(K_g, size)`` probability arrays in input order.

    Raises :class:`numpy.linalg.LinAlgError` when any member is
    singular or degenerate; the caller retries per group, then falls
    back to scalar solves (which reproduce the scalar least-squares /
    EvaluationError behavior exactly).
    """
    size = groups[0][0].size
    counts = [rates.shape[1] for _, rates in groups]
    total_members = sum(counts)
    systems = np.zeros((total_members, size, size))
    start = 0
    for (template, rates), count in zip(groups, counts):
        _assemble_into(template, rates, systems[start:start + count])
        start += count
    rhs = np.zeros((total_members, size))
    rhs[:, size - 1] = 1.0
    # numpy >= 2 treats a 2-D rhs as one matrix; lift to column vectors.
    solution = np.linalg.solve(systems, rhs[..., None])[..., 0]
    clipped = np.clip(solution, 0.0, None)
    for k in range(total_members):
        row = clipped[k]
        total = row.sum()
        if total <= 0:
            # Degenerate chain: re-solved per member via the scalar
            # path, which raises the exact scalar EvaluationError.
            raise np.linalg.LinAlgError(
                "stacked solve produced a zero vector")
        row /= total
    out = []
    start = 0
    for count in counts:
        out.append(clipped[start:start + count])
        start += count
    return out


def solve_stacked(template: ChainTemplate,
                  rates: np.ndarray) -> np.ndarray:
    """Steady-state probabilities, ``(K, size)``, scalar-bit-identical."""
    return solve_size_class([(template, rates)])[0]


def _ordered_row_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row left-to-right accumulation starting from 0.0.

    ``cumsum`` is a strict sequential chain; seeding with a zero column
    reproduces ``acc = 0.0; for x in row: acc += x`` bitwise (including
    the 0.0 + first-term step, which matters for signed zeros).
    """
    K, width = matrix.shape
    seeded = np.zeros((K, width + 1))
    seeded[:, 1:] = matrix
    return np.cumsum(seeded, axis=1)[:, -1]


def reduce_group(template: ChainTemplate, rates: np.ndarray,
                 probabilities: np.ndarray) \
        -> Tuple[np.ndarray, np.ndarray]:
    """Per-member (unavailability, failures_per_year) arrays.

    Replays the scalar mode loops: unavailability accumulates the down
    states in discovery order; the failure flux accumulates over *all*
    states in discovery order (the scalar loop also adds zero terms for
    fully-unmanned states, so the float chains match term for term).
    """
    down = probabilities[:, template.down_index]
    unavailability = _ordered_row_sums(down)
    failure_rates = rates[KIND_FAILURE][:, None]      # (K, 1)
    if template.kind == "inplace":
        # Scalar: ``probability * (n - r) * failure_rate`` -- left
        # associated, so multiply probabilities by the manned counts
        # first.
        contributions = (probabilities
                         * template.flux_manned[None, :]) * failure_rates
    else:
        # Scalar: ``probability * ((n-w)*fr + idle*sr)`` -- the term is
        # built first here.
        term = (template.flux_manned[None, :] * failure_rates
                + template.flux_idle[None, :] * rates[KIND_SPARE][:, None])
        contributions = probabilities * term
    flux = _ordered_row_sums(contributions)
    return unavailability, flux * HOURS_PER_YEAR
