"""Batched tier evaluation: grouping, fallbacks, and the search hook.

The core entry point is :func:`solve_models`: given a list of
:class:`~repro.availability.TierAvailabilityModel`, it plans every
(model, mode) chain, groups same-shape chains across the whole batch,
solves each group in one stacked numpy pass, and composes per-model
:class:`~repro.availability.TierResult` objects through the scalar
path's own validation loop
(:func:`repro.availability.markov.compose_tier_result`).

Graceful degradation is per member, never per batch:

* a model whose rates are non-finite/zero where the shape expects a
  positive rate, or whose chain exceeds the dense-solve limit, is
  re-solved through the scalar path (``BATCH_MEMBER_DEGRADED`` /
  AVD803);
* a stacked group whose LU factorization fails (any singular member)
  falls back to scalar solves for every model touching that group
  (``BATCH_GROUP_FALLBACK`` / AVD802) -- the scalar path reproduces
  the least-squares corner-case handling exactly;
* the scalar re-solve reproduces scalar *exceptions* as well as scalar
  values, so error behavior is identical whichever path ran.

Per-model failures are returned as exception objects rather than
raised: the search decides lazily whether an erroring candidate is
ever actually reached (a cost-pruned candidate must not abort the
batch), mirroring the scalar loop's laziness.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..availability.markov import (_MIN_HOURS, compose_tier_result,
                                   evaluate_mode, evaluate_tier)
from ..availability.model import (FailureModeEntry, ModeResult,
                                  TierAvailabilityModel, TierResult)
from ..units import HOURS_PER_YEAR
from .chains import DENSE_LIMIT, ShapeKey, TemplateCache
from .stacked import reduce_group, solve_size_class, solve_stacked

#: One model's solved tier result, or the exception the scalar path
#: would have raised for it.
TierOutcome = Union[TierResult, Exception]

#: Shared per-process template cache (templates are immutable).
_TEMPLATES = TemplateCache()

_CLOSED = "closed"
_CHAIN = "chain"


def _mode_plan(model: TierAvailabilityModel, mode: FailureModeEntry):
    """Plan one (model, mode) solve.

    Returns ``(_CLOSED, failures_per_year)`` for the instant-repair
    closed form, ``(_CHAIN, shape_key, rates, uses_failover)`` for a
    batchable chain, or ``None`` when the member must take the scalar
    path (rate anomalies the template edge set cannot represent).
    """
    uses_failover = mode.uses_failover and model.s > 0
    if mode.mttr.as_seconds == 0 and not uses_failover:
        failures = model.n / mode.mtbf.as_hours * HOURS_PER_YEAR
        return (_CLOSED, failures)
    failure_rate = 1.0 / mode.mtbf.as_hours
    repair_rate = 1.0 / max(mode.mttr.as_hours, _MIN_HOURS)
    if uses_failover:
        crew = (model.repair_crew if model.repair_crew is not None
                else model.n + model.s)
        failover_rate = 1.0 / max(mode.failover_time.as_hours, _MIN_HOURS)
        spare_rate = failure_rate if mode.spare_susceptible else 0.0
        required = (failure_rate, repair_rate, failover_rate)
        key: ShapeKey = ("failover", model.n, model.m, model.s, crew,
                         spare_rate > 0.0)
        rates = (failure_rate, spare_rate, failover_rate, repair_rate)
    else:
        crew = model.repair_crew if model.repair_crew is not None \
            else model.n
        required = (failure_rate, repair_rate)
        key = ("inplace", model.n, model.m, crew)
        rates = (failure_rate, 0.0, 0.0, repair_rate)
    # The template bakes in "every edge has a positive rate"; a zero or
    # non-finite rate changes the scalar chain's reachable state set,
    # so such members take the scalar path instead.
    for rate in required:
        if not (math.isfinite(rate) and rate > 0.0):
            return None
    return (_CHAIN, key, rates, uses_failover)


def _scalar_outcome(model: TierAvailabilityModel) -> TierOutcome:
    """Solve one model through the scalar path, capturing its error."""
    try:
        return evaluate_tier(model)
    except Exception as exc:
        return exc


def solve_models(models: Sequence[TierAvailabilityModel],
                 templates: Optional[TemplateCache] = None,
                 log=None,
                 chain_cache: Optional[dict] = None) -> List[TierOutcome]:
    """Solve a batch of tier models, grouped by chain shape.

    Returns one :class:`TierResult` *or* exception per model, in input
    order.  ``log`` is an optional
    :class:`~repro.resilience.events.DegradationLog` receiving AVD802/
    AVD803 events for members that degraded to the scalar path.

    Identical ``(shape, rates)`` chains are solved once and fanned out:
    neighboring candidates overwhelmingly share per-mode chains (only
    the varied mechanism's chain differs), and the solve is
    deterministic, so reuse returns bit-identical floats.
    ``chain_cache`` (optional dict) persists that memo across calls --
    the :class:`TierBatcher` passes one per search so later wavefronts
    skip chains any earlier wavefront solved.
    """
    templates = templates if templates is not None else _TEMPLATES
    outcomes: List[Optional[TierOutcome]] = [None] * len(models)
    plans: Dict[int, list] = {}
    degraded_members: List[int] = []
    for index, model in enumerate(models):
        model_plans = []
        for mode in model.modes:
            try:
                plan = _mode_plan(model, mode)
            except Exception:
                # Planning itself blew up (e.g. a zero MTBF dividing by
                # zero): the scalar re-solve reproduces the exact
                # scalar exception as this member's outcome.
                plan = None
            if plan is None:
                degraded_members.append(index)
                break
            if plan[0] == _CHAIN:
                template = templates.get(plan[1])
                if not 2 <= template.size <= DENSE_LIMIT:
                    # Outside the dense-solve regime the scalar path
                    # switches solver (sparse LU); defer to it.
                    degraded_members.append(index)
                    break
            model_plans.append(plan)
        else:
            plans[index] = model_plans

    # -- dedupe chains, group the remainder by shape -------------------
    # chain key -> every (model index, mode index) that needs it.
    chain_refs: Dict[Tuple[ShapeKey, tuple], List[Tuple[int, int]]] = {}
    solved_chains: Dict[Tuple[ShapeKey, tuple], Tuple[float, float]] = {}
    groups: Dict[ShapeKey, List[tuple]] = {}
    for index, model_plans in plans.items():
        for mode_index, plan in enumerate(model_plans):
            if plan[0] != _CHAIN:
                continue
            chain_key = (plan[1], plan[2])
            refs = chain_refs.get(chain_key)
            if refs is None:
                refs = chain_refs[chain_key] = []
                if chain_cache is not None and chain_key in chain_cache:
                    solved_chains[chain_key] = chain_cache[chain_key]
                else:
                    groups.setdefault(plan[1], []).append(plan[2])
            refs.append((index, mode_index))

    group_fallback: Dict[int, ShapeKey] = {}
    # Merge same-size groups into one stacked LAPACK call each: the
    # gufunc factorizes every slice independently, so concatenation is
    # free of cross-member effects while amortizing dispatch overhead.
    size_classes: Dict[int, list] = {}
    for key, member_rates in groups.items():
        template = templates.get(key)
        rates = np.array(member_rates, dtype=np.float64).T
        size_classes.setdefault(template.size, []).append(
            (key, template, rates, member_rates))

    def _reduce(key, template, rates, probabilities,
                member_rates) -> None:
        unavailability, failures = reduce_group(template, rates,
                                                probabilities)
        for position, chain_rates in enumerate(member_rates):
            value = (float(unavailability[position]),
                     float(failures[position]))
            solved_chains[(key, chain_rates)] = value
            if chain_cache is not None:
                chain_cache[(key, chain_rates)] = value

    for size_groups in size_classes.values():
        try:
            solutions = solve_size_class(
                [(template, rates) for _, template, rates, _
                 in size_groups])
        except np.linalg.LinAlgError:
            # A singular member poisons the merged solve; retry per
            # group to isolate it, then degrade only that group's
            # members to scalar re-solves -- exact values, exact
            # exceptions, just slower.
            for key, template, rates, member_rates in size_groups:
                try:
                    probabilities = solve_stacked(template, rates)
                except np.linalg.LinAlgError:
                    for chain_rates in member_rates:
                        for index, _ in chain_refs[(key, chain_rates)]:
                            group_fallback.setdefault(index, key)
                    continue
                _reduce(key, template, rates, probabilities,
                        member_rates)
            continue
        for (key, template, rates, member_rates), probabilities \
                in zip(size_groups, solutions):
            _reduce(key, template, rates, probabilities, member_rates)

    solved: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for chain_key, value in solved_chains.items():
        for ref in chain_refs[chain_key]:
            solved[ref] = value

    # -- compose per model through the scalar validation loop ----------
    for index, model_plans in plans.items():
        if index in group_fallback:
            continue
        model = models[index]
        results = iter([
            _mode_result(model.modes[mode_index], plan,
                         solved.get((index, mode_index)))
            for mode_index, plan in enumerate(model_plans)])
        try:
            outcomes[index] = compose_tier_result(
                model, lambda mode: next(results))
        except Exception as exc:
            outcomes[index] = exc

    for index in degraded_members:
        outcomes[index] = _scalar_outcome(models[index])
    for index, key in group_fallback.items():
        outcomes[index] = _scalar_outcome(models[index])

    if log is not None:
        _log_degradations(log, models, degraded_members, group_fallback)
    return [outcome for outcome in outcomes]  # type: ignore[misc]


def _mode_result(mode: FailureModeEntry, plan,
                 values: Optional[Tuple[float, float]]) -> ModeResult:
    if plan[0] == _CLOSED:
        return ModeResult(mode.name, 0.0, plan[1], False)
    unavailability, failures = values
    return ModeResult(mode.name, unavailability, failures, plan[3])


def _log_degradations(log, models, degraded_members,
                      group_fallback) -> None:
    from ..resilience.events import (BATCH_GROUP_FALLBACK,
                                     BATCH_MEMBER_DEGRADED)
    for index in degraded_members:
        model = models[index]
        log.add(BATCH_MEMBER_DEGRADED, engine="markov", tier=model.name,
                detail="chain (n=%d m=%d s=%d) not representable by a "
                       "batched template; re-solved on the scalar path"
                       % (model.n, model.m, model.s))
    for index, key in group_fallback.items():
        log.add(BATCH_GROUP_FALLBACK, engine="markov",
                tier=models[index].name,
                detail="stacked solve for shape %r hit a singular "
                       "system; group members re-solved on the scalar "
                       "path" % (key,))


def solve_outcomes(engine, models: Sequence[TierAvailabilityModel],
                   log=None,
                   chain_cache: Optional[dict] = None) -> List[TierOutcome]:
    """Batch-solve ``models`` honoring a cache wrapper, never raising.

    ``engine`` must be a batch target (see :func:`batch_target`):
    either a plain :class:`~repro.availability.MarkovEngine` or a
    :class:`~repro.cache.engine.CachedEngine` over one.  For the cached
    form, each model is looked up first (one ``get`` per model, the
    same count the scalar warm path performs) and only misses are
    batch-solved; fresh results fan out into per-key ``put`` calls so
    warm paths stay byte-identical and shared.
    """
    from ..cache.engine import CachedEngine
    if not isinstance(engine, CachedEngine):
        return solve_models(models, log=log, chain_cache=chain_cache)
    outcomes: List[Optional[TierOutcome]] = [None] * len(models)
    miss_indices: List[int] = []
    miss_models: List[TierAvailabilityModel] = []
    for index, model in enumerate(models):
        cached = engine.store.get(engine.cache_id, model)
        if cached is not None:
            outcomes[index] = cached
        else:
            miss_indices.append(index)
            miss_models.append(model)
    if miss_models:
        fresh = solve_models(miss_models, log=log,
                             chain_cache=chain_cache)
        for index, outcome in zip(miss_indices, fresh):
            outcomes[index] = outcome
            if isinstance(outcome, TierResult):
                engine.store.put(engine.cache_id, models[index], outcome)
    return [outcome for outcome in outcomes]  # type: ignore[misc]


def batch_target(engine):
    """The engine to batch through, or None when unsupported.

    Batching is sound only for the pure dense-Markov solver: exact
    type checks (mirroring :func:`repro.cache.engine.engine_cache_id`)
    keep chaos wrappers, fallback chains, simulation and user engines
    on the scalar path, where their fault semantics live.
    """
    from ..availability.engine import MarkovEngine
    if type(engine) is MarkovEngine:
        return engine
    try:
        from ..cache.engine import CachedEngine
    except ImportError:                                # pragma: no cover
        return None
    if type(engine) is CachedEngine and type(engine.inner) is MarkovEngine:
        return engine
    return None


def transport_shape_key(model: TierAvailabilityModel) -> tuple:
    """A cheap structural key for chunking tasks across pool workers.

    Groups models that *tend* to share solve shape -- the worker-side
    batch core regroups exactly, so this only needs to be a good
    partition, not a perfect one.
    """
    return (model.n, model.m, model.s, model.repair_crew)


class TierBatcher:
    """The search-side batching facade.

    Owns the engine handed to it (already cache-wrapped when caching
    is on) plus the degradation log batching events report into.
    ``solve_tasks`` maps prefetch tasks ``(key, model)`` to
    ``{key: unavailability}`` for every task whose solve succeeded;
    erroring members are simply omitted, so the serial decision loop
    lazily re-raises through the scalar path only if it actually
    reaches them.
    """

    def __init__(self, engine, log=None):
        self.engine = engine
        self.log = log
        # Per-search chain memo: (shape key, rates) -> (u, f).  Reuse
        # is bit-identical because the stacked solve is deterministic.
        self._chains: Dict[tuple, Tuple[float, float]] = {}

    def solve_tasks(self, tasks) -> Dict[tuple, float]:
        models = [model for _, model in tasks]
        outcomes = solve_outcomes(self.engine, models, log=self.log,
                                  chain_cache=self._chains)
        merged: Dict[tuple, float] = {}
        for (key, _), outcome in zip(tasks, outcomes):
            if isinstance(outcome, TierResult):
                merged[key] = outcome.unavailability
        return merged
