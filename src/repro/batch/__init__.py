"""Vectorized stacked tier-chain solves (``repro.batch``).

Groups pending tier evaluations by chain shape, assembles their
birth-death generators into stacked dense systems, and solves each
group in one numpy pass -- replacing N independent scalar
``ctmc``/``markov`` solves on the cold path with bit-identical
results.  See ``docs/BATCHING.md``.
"""

from .chains import (ChainTemplate, TemplateCache, failover_template,
                     inplace_template)
from .evaluator import (TierBatcher, TierOutcome, batch_target,
                        solve_models, solve_outcomes,
                        transport_shape_key)
from .stacked import (assemble_systems, reduce_group, solve_size_class,
                      solve_stacked)

__all__ = [
    "ChainTemplate", "TemplateCache", "TierBatcher", "TierOutcome",
    "assemble_systems", "batch_target", "failover_template",
    "inplace_template", "reduce_group", "solve_models",
    "solve_outcomes", "solve_size_class", "solve_stacked",
    "transport_shape_key",
]
