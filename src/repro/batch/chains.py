"""Shape templates for the batched birth-death chain solver.

The scalar Markov path (:mod:`repro.availability.markov`) re-explores
one CTMC per (candidate, failure mode).  But the chain's *shape* --
its state set, transition structure and integer edge coefficients --
depends only on ``(n, m, s, crew, susceptibility)``, never on the
rates; candidates that share a shape differ only in the four rate
scalars.  A :class:`ChainTemplate` captures one shape exactly once, in
the scalar solver's own exploration order, so stacked assemblies over
it reproduce the scalar generator bit for bit.

Templates carry precomputed index arrays (edge origins/targets, the
per-origin diagonal accumulation schedule, down-state indices, flux
weights) so assembling a K-member group is a handful of vectorized
numpy operations instead of ``K * E`` scalar writes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..availability.ctmc import _DENSE_LIMIT

#: Rate-kind slots shared by templates and the stacked assembler.
KIND_FAILURE = 0
KIND_SPARE = 1
KIND_FAILOVER = 2
KIND_REPAIR = 3

#: Mirrors ``markov._TRUNCATION_MARGIN`` -- the failover chain keeps
#: this many unmanned-slot states beyond the first down state.
_TRUNCATION_MARGIN = 12

#: Shape key: ("inplace", n, m, crew) or
#: ("failover", n, m, s, crew, susceptible).
ShapeKey = Tuple

DENSE_LIMIT = _DENSE_LIMIT


class ChainTemplate:
    """One chain shape, with vectorized-assembly index arrays.

    ``edges`` are ``(origin, target, kind, coeff)`` in the exact order
    the scalar solver's DFS emits them; ``down_states`` and the flux
    weights are in state-discovery order.  Both orders matter: the
    stacked path replays the scalar float-operation sequence per
    matrix cell and per reduction, which is what makes batched and
    scalar results bitwise identical.
    """

    def __init__(self, kind: str, size: int,
                 edges: List[Tuple[int, int, int, int]],
                 down_states: List[int],
                 flux_manned: List[int], flux_idle: List[int]):
        self.kind = kind
        self.size = size
        self.edges = tuple(edges)
        self.down_states = tuple(down_states)
        # -- vectorized assembly arrays --------------------------------
        self.edge_origin = np.array([e[0] for e in edges], dtype=np.intp)
        self.edge_target = np.array([e[1] for e in edges], dtype=np.intp)
        self.edge_kind = np.array([e[2] for e in edges], dtype=np.intp)
        # Integer coefficients as float64 (exact for these magnitudes):
        # coeff * rate is then the same IEEE multiply the scalar path
        # performs per edge.
        self.edge_coeff = np.array([e[3] for e in edges], dtype=np.float64)
        # Diagonal accumulation schedule: slot j selects the j-th
        # out-edge of every origin that has one, so sequential slot
        # updates subtract each origin's edge rates in emission order
        # -- the scalar ``matrix[o, o] -= rate`` sequence per cell.
        per_origin: Dict[int, List[int]] = {}
        for row, edge in enumerate(edges):
            per_origin.setdefault(edge[0], []).append(row)
        max_out = max((len(rows) for rows in per_origin.values()),
                      default=0)
        self.diag_slots = []
        for slot in range(max_out):
            rows = [rows[slot] for rows in per_origin.values()
                    if len(rows) > slot]
            rows_arr = np.array(rows, dtype=np.intp)
            self.diag_slots.append(
                (self.edge_origin[rows_arr], rows_arr))
        self.down_index = np.array(down_states, dtype=np.intp)
        self.flux_manned = np.array(flux_manned, dtype=np.float64)
        self.flux_idle = np.array(flux_idle, dtype=np.float64)


def inplace_template(n: int, m: int, crew: int) -> ChainTemplate:
    """The in-place repair chain: state ``r`` = failed actives.

    Mirrors ``markov._solve_inplace_chain``'s exploration: states are
    discovered ``0..n`` in order, each emitting its failure edge before
    its repair edge; zero-rate edges are omitted exactly as the scalar
    explorer skips them.
    """
    edges: List[Tuple[int, int, int, int]] = []
    for r in range(n + 1):
        if r < n:
            edges.append((r, r + 1, KIND_FAILURE, n - r))
        if r > 0 and min(r, crew) > 0:
            edges.append((r, r - 1, KIND_REPAIR, min(r, crew)))
    size = n + 1
    down = [r for r in range(size) if n - r < m]
    flux_manned = [n - r for r in range(size)]
    return ChainTemplate("inplace", size, edges, down,
                         flux_manned, [0] * size)


def failover_template(n: int, m: int, s: int, crew: int,
                      susceptible: bool) -> ChainTemplate:
    """The failover chain: state ``(r, w)``.

    Replays ``markov._solve_failover_chain``'s DFS (LIFO frontier,
    transition emission order fail / spare / failover / repair, the
    ``w_cap`` truncation) so state indices, edge order and down-state
    order are identical to the scalar chain for every rate assignment
    with the same susceptibility.
    """
    total = n + s
    w_cap = min(n, (n - m + 1) + s + _TRUNCATION_MARGIN)
    index: Dict[Tuple[int, int], int] = {(0, 0): 0}
    states: List[Tuple[int, int]] = [(0, 0)]
    frontier: List[Tuple[int, int]] = [(0, 0)]
    edges: List[Tuple[int, int, int, int]] = []
    while frontier:
        state = frontier.pop()
        r, w = state
        origin = index[state]
        idle = s - r + w
        manned = n - w
        out: List[Tuple[Tuple[int, int], int, int]] = []
        if manned > 0 and r < total and w < w_cap:
            out.append(((r + 1, w + 1), KIND_FAILURE, manned))
        if susceptible and idle > 0:
            out.append(((r + 1, w), KIND_SPARE, idle))
        in_failover = min(w, idle)
        if in_failover > 0:
            out.append(((r, w - 1), KIND_FAILOVER, in_failover))
        if r > 0 and min(r, crew) > 0:
            out.append(((r - 1, w), KIND_REPAIR, min(r, crew)))
        for successor, kind, coeff in out:
            if successor not in index:
                index[successor] = len(states)
                states.append(successor)
                frontier.append(successor)
            edges.append((origin, index[successor], kind, coeff))
    size = len(states)
    down = [i for i, (_, w) in enumerate(states) if n - w < m]
    flux_manned = [n - w for (_, w) in states]
    flux_idle = [s - r + w for (r, w) in states]
    return ChainTemplate("failover", size, edges, down,
                         flux_manned, flux_idle)


class TemplateCache:
    """Per-process cache of chain templates keyed by shape."""

    def __init__(self):
        self._templates: Dict[ShapeKey, ChainTemplate] = {}

    def get(self, key: ShapeKey) -> ChainTemplate:
        template = self._templates.get(key)
        if template is None:
            if key[0] == "inplace":
                template = inplace_template(key[1], key[2], key[3])
            else:
                template = failover_template(key[1], key[2], key[3],
                                             key[4], key[5])
            self._templates[key] = template
        return template

    def __len__(self) -> int:
        return len(self._templates)
