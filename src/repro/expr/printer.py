"""Pretty-printing expression ASTs back to parseable source.

``to_source`` emits the minimal parenthesization that preserves the
tree under re-parsing: ``parse(to_source(node))`` equals ``node`` for
every well-formed AST (a property the test suite enforces).  This is
what lets optimized or programmatically-built expressions be written
back into spec documents.
"""

from __future__ import annotations

from ..errors import ExpressionError
from .ast_nodes import (Binary, Call, Conditional, Node, Number, Unary,
                        Variable)

#: Binding strength per construct; higher binds tighter.  Mirrors the
#: parser's grammar levels.
_PRECEDENCE = {
    "?:": 1,
    "or": 2,
    "and": 3,
    "not": 4,
    "<": 5, "<=": 5, ">": 5, ">=": 5, "==": 5, "!=": 5,
    "+": 6, "-": 6,
    "*": 7, "/": 7,
    "neg": 8,
    "^": 9,
}
_ATOM = 10


def to_source(node: Node) -> str:
    """Render ``node`` as source the parser maps back to the same AST."""
    text, _ = _render(node)
    return text


def _render(node: Node):
    """Return (text, precedence of the outermost construct)."""
    if isinstance(node, Number):
        value = node.value
        if value == int(value) and abs(value) < 1e15:
            text = "%d" % int(value)
        else:
            text = repr(value)
        if value < 0:
            return text, _PRECEDENCE["neg"]
        return text, _ATOM
    if isinstance(node, Variable):
        return node.name, _ATOM
    if isinstance(node, Unary):
        op = "-" if node.op == "-" else "not "
        precedence = _PRECEDENCE["neg" if node.op == "-" else "not"]
        inner, inner_precedence = _render(node.operand)
        # '-' is below '^' so -x^2 would re-parse as -(x^2); wrap
        # operands that bind less tightly than the unary itself.
        if inner_precedence < precedence:
            inner = "(%s)" % inner
        return op + inner, precedence
    if isinstance(node, Binary):
        return _render_binary(node)
    if isinstance(node, Call):
        args = ", ".join(to_source(arg) for arg in node.args)
        return "%s(%s)" % (node.name, args), _ATOM
    if isinstance(node, Conditional):
        condition, condition_precedence = _render(node.condition)
        if condition_precedence <= _PRECEDENCE["?:"]:
            condition = "(%s)" % condition
        if_true, true_precedence = _render(node.if_true)
        if true_precedence < _PRECEDENCE["?:"]:
            if_true = "(%s)" % if_true
        if_false, _ = _render(node.if_false)  # right-assoc: no wrap
        return "%s ? %s : %s" % (condition, if_true, if_false), \
            _PRECEDENCE["?:"]
    raise ExpressionError("cannot print node type %r"
                          % type(node).__name__)


def _render_binary(node: Binary):
    precedence = _PRECEDENCE[node.op]
    left, left_precedence = _render(node.left)
    right, right_precedence = _render(node.right)

    if node.op == "^":
        # Right associative: wrap a left child at the same level.
        if left_precedence <= precedence:
            left = "(%s)" % left
        if right_precedence < precedence:
            right = "(%s)" % right
    elif node.op in ("<", "<=", ">", ">=", "==", "!="):
        # Non-associative: wrap children at the same level.
        if left_precedence <= precedence:
            left = "(%s)" % left
        if right_precedence <= precedence:
            right = "(%s)" % right
    else:
        # Left associative.
        if left_precedence < precedence:
            left = "(%s)" % left
        if right_precedence <= precedence:
            right = "(%s)" % right

    operator = node.op if node.op not in ("and", "or") else node.op
    return "%s %s %s" % (left, operator, right), precedence
