"""Tokenizer for the Aved expression language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ExpressionError

#: Multi-character operators must be listed before their prefixes.
_OPERATORS = (
    "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "^", "<", ">", "(", ")", ",", "?", ":", "%", "!",
)

_KEYWORDS = {"and", "or", "not", "if", "else", "true", "false"}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (for error messages)."""

    kind: str          # "number" | "name" | "op" | "keyword" | "end"
    text: str
    position: int
    value: float = 0.0  # numeric payload for "number" tokens


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, ending with a sentinel ``end`` token."""
    tokens: List[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            i = _lex_number(source, i, tokens)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in _KEYWORDS else "name"
            tokens.append(Token(kind, text, start))
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                break
        else:
            raise ExpressionError("unexpected character %r" % ch, source, i)
    tokens.append(Token("end", "", length))
    return tokens


def _lex_number(source: str, start: int, tokens: List[Token]) -> int:
    """Lex a number (with optional exponent) starting at ``start``.

    Appends the number token to ``tokens`` and returns the index just
    past it.  A trailing ``%`` is folded into the number (divided by
    100) to support the paper's ``100%`` notation.
    """
    i = start
    length = len(source)
    while i < length and (source[i].isdigit() or source[i] == "."):
        i += 1
    if i < length and source[i] in "eE":
        j = i + 1
        if j < length and source[j] in "+-":
            j += 1
        if j < length and source[j].isdigit():
            i = j
            while i < length and source[i].isdigit():
                i += 1
    text = source[start:i]
    try:
        value = float(text)
    except ValueError as exc:
        raise ExpressionError("bad number %r" % text, source, start) from exc
    if i < length and source[i] == "%":
        value /= 100.0
        text += "%"
        i += 1
    tokens.append(Token("number", text, start, value))
    return i
