"""Safe expression language for performance functions (Table 1).

Public entry points:

* :class:`Expression` -- compile once, evaluate with keyword variables.
* :func:`parse` -- produce the raw AST.
* :func:`evaluate` -- evaluate an AST against an environment mapping.
"""

from .ast_nodes import (Binary, Call, Conditional, Node, Number, Unary,
                        Variable, free_variables)
from .evaluator import Expression, evaluate
from .functions import BUILTIN_FUNCTIONS
from .parser import parse
from .printer import to_source

__all__ = [
    "Expression", "parse", "evaluate", "free_variables",
    "Node", "Number", "Variable", "Unary", "Binary", "Call", "Conditional",
    "BUILTIN_FUNCTIONS", "to_source",
]
