"""Compile-time simplification of expression ASTs.

The design search evaluates performance expressions millions of times
(every checkpoint-interval sweep hits one), so constant subtrees are
folded once at compile time:

* operator/function applications whose operands are all constants are
  evaluated (errors such as ``1/0`` are left in place to surface at
  run time, preserving semantics);
* conditionals with constant conditions are replaced by the taken
  branch;
* boolean short-circuits with constant left sides collapse.

Folding never changes observable behavior: anything that could raise at
evaluation time is only folded if it evaluates cleanly.
"""

from __future__ import annotations

from ..errors import ExpressionError
from .ast_nodes import (Binary, Call, Conditional, Node, Number, Unary,
                        Variable)
from .evaluator import evaluate


def fold_constants(node: Node) -> Node:
    """Return an equivalent AST with constant subtrees pre-evaluated."""
    if isinstance(node, (Number, Variable)):
        return node
    if isinstance(node, Unary):
        operand = fold_constants(node.operand)
        folded = Unary(node.op, operand)
        return _try_fold(folded)
    if isinstance(node, Binary):
        left = fold_constants(node.left)
        right = fold_constants(node.right)
        folded = Binary(node.op, left, right)
        if isinstance(left, Number) and node.op in ("and", "or"):
            # Constant left side of a short-circuit: pick statically.
            if node.op == "and":
                return _as_bool(right) if left.value != 0.0 \
                    else Number(0.0)
            return Number(1.0) if left.value != 0.0 else _as_bool(right)
        return _try_fold(folded)
    if isinstance(node, Call):
        args = tuple(fold_constants(arg) for arg in node.args)
        return _try_fold(Call(node.name, args))
    if isinstance(node, Conditional):
        condition = fold_constants(node.condition)
        if isinstance(condition, Number):
            branch = node.if_true if condition.value != 0.0 \
                else node.if_false
            return fold_constants(branch)
        return Conditional(condition, fold_constants(node.if_true),
                           fold_constants(node.if_false))
    raise ExpressionError("unknown node type %r" % type(node).__name__)


def _as_bool(node: Node) -> Node:
    """Normalize a node used in boolean position to 0/1 semantics."""
    if isinstance(node, Number):
        return Number(1.0 if node.value != 0.0 else 0.0)
    # `x and/or y` yields 0/1 already per the evaluator; double-negate
    # to coerce arbitrary values without changing truthiness.
    return Unary("not", Unary("not", node))


def _try_fold(node: Node) -> Node:
    """Evaluate ``node`` if all leaves are constant and it is safe."""
    if not _is_constant(node):
        return node
    try:
        return Number(evaluate(node, {}))
    except ExpressionError:
        return node  # fold would raise: preserve the runtime error


def _is_constant(node: Node) -> bool:
    if isinstance(node, Variable):
        return False
    if isinstance(node, Number):
        return True
    return all(_is_constant(child) for child in node.children())
