"""Evaluator and compiled-expression convenience class."""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import ExpressionError
from .ast_nodes import (Binary, Call, Conditional, Node, Number, Unary,
                        Variable, free_variables)
from .functions import BUILTIN_FUNCTIONS, check_arity
from .parser import parse

_TRUTH_EPSILON = 0.0  # a value is true iff it is nonzero


def _truthy(value: float) -> bool:
    return value != _TRUTH_EPSILON


def evaluate(node: Node, env: Mapping[str, float]) -> float:
    """Evaluate ``node`` with variables bound from ``env``.

    All values are floats; booleans are represented as 1.0 / 0.0.
    ``and``/``or`` short-circuit, and the untaken branch of a
    conditional is never evaluated (so guarded divisions are safe).
    """
    if isinstance(node, Number):
        return node.value
    if isinstance(node, Variable):
        try:
            return float(env[node.name])
        except KeyError as exc:
            raise ExpressionError("unbound variable %r" % node.name) from exc
    if isinstance(node, Unary):
        if node.op == "-":
            return -evaluate(node.operand, env)
        if node.op == "not":
            return 0.0 if _truthy(evaluate(node.operand, env)) else 1.0
        raise ExpressionError("unknown unary operator %r" % node.op)
    if isinstance(node, Binary):
        return _evaluate_binary(node, env)
    if isinstance(node, Conditional):
        if _truthy(evaluate(node.condition, env)):
            return evaluate(node.if_true, env)
        return evaluate(node.if_false, env)
    if isinstance(node, Call):
        check_arity(node.name, len(node.args))
        args = [evaluate(arg, env) for arg in node.args]
        try:
            return float(BUILTIN_FUNCTIONS[node.name](*args))
        except (ValueError, OverflowError, ZeroDivisionError) as exc:
            # ZeroDivisionError covers e.g. log(x, 1), whose math.log
            # raises it rather than ValueError.
            raise ExpressionError(
                "error in %s(): %s" % (node.name, exc)) from exc
    raise ExpressionError("unknown node type %r" % type(node).__name__)


def _evaluate_binary(node: Binary, env: Mapping[str, float]) -> float:
    op = node.op
    if op == "and":
        left = evaluate(node.left, env)
        if not _truthy(left):
            return 0.0
        return 1.0 if _truthy(evaluate(node.right, env)) else 0.0
    if op == "or":
        left = evaluate(node.left, env)
        if _truthy(left):
            return 1.0
        return 1.0 if _truthy(evaluate(node.right, env)) else 0.0

    left = evaluate(node.left, env)
    right = evaluate(node.right, env)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0.0:
            raise ExpressionError("division by zero")
        return left / right
    if op == "^":
        try:
            return float(left ** right)
        except (OverflowError, ZeroDivisionError, ValueError,
                TypeError) as exc:
            # TypeError covers negative ** fractional, where Python
            # returns a complex number that float() refuses.
            raise ExpressionError("error in power: %s" % exc) from exc
    if op == "<":
        return 1.0 if left < right else 0.0
    if op == "<=":
        return 1.0 if left <= right else 0.0
    if op == ">":
        return 1.0 if left > right else 0.0
    if op == ">=":
        return 1.0 if left >= right else 0.0
    if op == "==":
        return 1.0 if left == right else 0.0
    if op == "!=":
        return 1.0 if left != right else 0.0
    raise ExpressionError("unknown binary operator %r" % op)


class Expression:
    """A compiled expression: parse once, evaluate many times.

    >>> Expression("200*n")(n=5)
    1000.0
    >>> Expression("n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)")(n=60, cpi=5)
    4.0
    """

    __slots__ = ("source", "node", "variables")

    def __init__(self, source: str, optimize: bool = True):
        self.source = source
        self.node = parse(source)
        self._check_functions(self.node)
        if optimize:
            from .optimizer import fold_constants
            self.node = fold_constants(self.node)
        self.variables = free_variables(self.node)

    @staticmethod
    def _check_functions(node: Node) -> None:
        """Validate function names/arity at compile time, not call time."""
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, Call):
                check_arity(current.name, len(current.args))
            stack.extend(current.children())

    def __call__(self, **env: float) -> float:
        return evaluate(self.node, env)

    def evaluate(self, env: Mapping[str, float]) -> float:
        return evaluate(self.node, env)

    def partial(self, **bound: float) -> "Expression":
        """Return a new source-level expression with some variables fixed.

        Implemented by environment chaining rather than AST rewriting;
        the returned object still reports the remaining free variables.
        """
        return _PartialExpression(self, dict(bound))

    def __repr__(self) -> str:
        return "Expression(%r)" % (self.source,)


class _PartialExpression(Expression):
    """An :class:`Expression` with some variables pre-bound."""

    __slots__ = ("_bound",)

    def __init__(self, base: Expression, bound: Dict[str, float]):
        # Deliberately do not call super().__init__: reuse the parsed AST.
        self.source = base.source
        self.node = base.node
        self._bound = bound
        self.variables = base.variables - frozenset(bound)

    def __call__(self, **env: float) -> float:
        merged = dict(self._bound)
        merged.update(env)
        return evaluate(self.node, merged)

    def evaluate(self, env: Mapping[str, float]) -> float:
        merged = dict(self._bound)
        merged.update(env)
        return evaluate(self.node, merged)

    def __repr__(self) -> str:
        return "Expression(%r, bound=%r)" % (self.source, self._bound)
