"""Pratt (precedence-climbing) parser for the Aved expression language.

Grammar, loosest binding first::

    conditional := or_expr [ "?" conditional ":" conditional ]
                 | or_expr "if" conditional "else" conditional   (python style)
    or_expr     := and_expr { ("or" | "||") and_expr }
    and_expr    := not_expr { ("and" | "&&") not_expr }
    not_expr    := ("not" | "!") not_expr | comparison
    comparison  := additive [ ("<"|"<="|">"|">="|"=="|"!=") additive ]
    additive    := multiplicative { ("+"|"-") multiplicative }
    multiplicative := unary { ("*"|"/") unary }
    unary       := "-" unary | power
    power       := primary [ "^" unary ]          (right associative)
    primary     := number | name | name "(" args ")" | "(" conditional ")"
                 | "true" | "false"
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..errors import ExpressionError
from .ast_nodes import Binary, Call, Conditional, Node, Number, Unary, Variable
from .lexer import Token, tokenize

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens: List[Token] = tokenize(source)
        self.index = 0
        #: End offset of the most recently consumed token, for spans.
        self._end = 0

    # -- token helpers ------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
            self._end = token.position + len(token.text)
        return token

    def _match(self, kind: str, text: str = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        if text is not None and token.text != text:
            return False
        self._advance()
        return True

    def _expect(self, kind: str, text: str) -> Token:
        token = self._peek()
        if token.kind != kind or token.text != text:
            raise ExpressionError(
                "expected %r but found %r" % (text, token.text or "<end>"),
                self.source, token.position)
        return self._advance()

    # -- grammar ------------------------------------------------------

    def parse(self) -> Node:
        node = self.conditional()
        token = self._peek()
        if token.kind != "end":
            raise ExpressionError("unexpected trailing input %r" % token.text,
                                  self.source, token.position)
        return node

    def conditional(self) -> Node:
        node = self.or_expr()
        if self._match("op", "?"):
            if_true = self.conditional()
            self._expect("op", ":")
            if_false = self.conditional()
            return Conditional(node, if_true, if_false,
                               span=_join(node, if_false))
        if self._match("keyword", "if"):
            condition = self.conditional()
            self._expect("keyword", "else")
            if_false = self.conditional()
            return Conditional(condition, node, if_false,
                               span=_join(node, if_false))
        return node

    def or_expr(self) -> Node:
        node = self.and_expr()
        while True:
            if self._match("keyword", "or") or self._match("op", "||"):
                right = self.and_expr()
                node = Binary("or", node, right, span=_join(node, right))
            else:
                return node

    def and_expr(self) -> Node:
        node = self.not_expr()
        while True:
            if self._match("keyword", "and") or self._match("op", "&&"):
                right = self.not_expr()
                node = Binary("and", node, right, span=_join(node, right))
            else:
                return node

    def not_expr(self) -> Node:
        token = self._peek()
        if self._match("keyword", "not") or self._match("op", "!"):
            operand = self.not_expr()
            return Unary("not", operand,
                         span=_span_from(token, operand))
        return self.comparison()

    def comparison(self) -> Node:
        node = self.additive()
        token = self._peek()
        if token.kind == "op" and token.text in _COMPARISONS:
            self._advance()
            right = self.additive()
            return Binary(token.text, node, right, span=_join(node, right))
        return node

    def additive(self) -> Node:
        node = self.multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                right = self.multiplicative()
                node = Binary(token.text, node, right,
                              span=_join(node, right))
            else:
                return node

    def multiplicative(self) -> Node:
        node = self.unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/"):
                self._advance()
                right = self.unary()
                node = Binary(token.text, node, right,
                              span=_join(node, right))
            else:
                return node

    def unary(self) -> Node:
        token = self._peek()
        if self._match("op", "-"):
            operand = self.unary()
            return Unary("-", operand, span=_span_from(token, operand))
        return self.power()

    def power(self) -> Node:
        node = self.primary()
        if self._match("op", "^"):
            right = self.unary()
            return Binary("^", node, right, span=_join(node, right))
        return node

    def primary(self) -> Node:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return Number(token.value, span=_token_span(token))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Number(1.0 if token.text == "true" else 0.0,
                          span=_token_span(token))
        if token.kind == "name":
            self._advance()
            if self._match("op", "("):
                args = []
                if not self._match("op", ")"):
                    args.append(self.conditional())
                    while self._match("op", ","):
                        args.append(self.conditional())
                    self._expect("op", ")")
                return Call(token.text, tuple(args),
                            span=(token.position, self._end))
            return Variable(token.text, span=_token_span(token))
        if self._match("op", "("):
            node = self.conditional()
            self._expect("op", ")")
            if node.span is not None:
                # Widen to include the parentheses so joined spans of
                # enclosing operators cover the full source text.
                node = replace(node, span=(token.position, self._end))
            return node
        raise ExpressionError("unexpected token %r" % (token.text or "<end>"),
                              self.source, token.position)


def _token_span(token: Token):
    return (token.position, token.position + len(token.text))


def _span_from(token: Token, node: Node):
    """Span from an operator token through the end of ``node``."""
    if node.span is None:
        return None
    return (token.position, node.span[1])


def _join(left: Node, right: Node):
    """Span covering ``left`` through ``right`` (None if either lacks one)."""
    if left.span is None or right.span is None:
        return None
    return (left.span[0], right.span[1])


def parse(source: str) -> Node:
    """Parse ``source`` into an expression AST."""
    if not source or not source.strip():
        raise ExpressionError("empty expression", source, 0)
    return _Parser(source).parse()
