"""Builtin function table for the Aved expression language.

Only pure numeric functions are exposed -- the language has no access to
the interpreter, filesystem, or model state, which is the point of not
using ``eval`` for user-supplied performance functions.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from ..errors import ExpressionError


def _clamp(value: float, low: float, high: float) -> float:
    if low > high:
        raise ExpressionError("clamp: low > high (%g > %g)" % (low, high))
    return min(max(value, low), high)


def _log(value: float, base: float = math.e) -> float:
    if value <= 0:
        raise ExpressionError("log of non-positive value %g" % value)
    return math.log(value, base)


def _sqrt(value: float) -> float:
    if value < 0:
        raise ExpressionError("sqrt of negative value %g" % value)
    return math.sqrt(value)


def _round(value: float, ndigits: float = 0.0) -> float:
    # The evaluator passes every argument as a float, but Python's round
    # requires an integer digit count.
    if not float(ndigits).is_integer():
        raise ExpressionError("round: digit count %g is not an integer"
                              % ndigits)
    return float(round(value, int(ndigits)))


BUILTIN_FUNCTIONS: Dict[str, Callable[..., float]] = {
    "max": max,
    "min": min,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": _round,
    "exp": math.exp,
    "log": _log,
    "log2": math.log2,
    "log10": math.log10,
    "sqrt": _sqrt,
    "pow": math.pow,
    "clamp": _clamp,
}

#: Arity constraints: (min_args, max_args); ``None`` means unbounded.
FUNCTION_ARITY = {
    "max": (1, None),
    "min": (1, None),
    "abs": (1, 1),
    "floor": (1, 1),
    "ceil": (1, 1),
    "round": (1, 2),
    "exp": (1, 1),
    "log": (1, 2),
    "log2": (1, 1),
    "log10": (1, 1),
    "sqrt": (1, 1),
    "pow": (2, 2),
    "clamp": (3, 3),
}


def check_arity(name: str, arg_count: int) -> None:
    """Raise :class:`ExpressionError` if ``name`` can't take ``arg_count`` args."""
    if name not in BUILTIN_FUNCTIONS:
        raise ExpressionError("unknown function %r" % name)
    low, high = FUNCTION_ARITY[name]
    if arg_count < low or (high is not None and arg_count > high):
        raise ExpressionError(
            "function %r takes %s args, got %d"
            % (name, low if high == low else "%d..%s" % (low, high or "n"),
               arg_count))
