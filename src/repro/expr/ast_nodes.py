"""AST node types for the Aved expression language.

The expression language is a small, side-effect-free calculator used to
write performance functions (Table 1 of the paper) without resorting to
``eval``.  It supports numbers, percentages (``100%`` is 1.0),
variables, arithmetic, comparisons, boolean logic, function calls, and
a C-style conditional ``cond ? a : b``.

Nodes are immutable value objects; evaluation lives in
:mod:`repro.expr.evaluator`.

Each node optionally carries a *span* -- the ``(start, end)`` character
offsets of the text it was parsed from -- so that static analysis
(:mod:`repro.lint`) can point diagnostics at the exact subexpression.
Spans never participate in equality or hashing: two nodes parsed from
different positions still compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: ``(start, end)`` character offsets into the expression source.
SourceSpan = Tuple[int, int]


class Node:
    """Base class for expression AST nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Node", ...]:
        return ()


@dataclass(frozen=True)
class Number(Node):
    """A numeric literal (percent literals are pre-scaled by 1/100)."""

    value: float
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class Variable(Node):
    """A free variable, bound at evaluation time from the environment."""

    name: str
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class Unary(Node):
    """A unary operation: ``-x`` or ``not x``."""

    op: str
    operand: Node
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class Binary(Node):
    """A binary operation: arithmetic, comparison, or boolean."""

    op: str
    left: Node
    right: Node
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Call(Node):
    """A call to a builtin function, e.g. ``max(a, b)``."""

    name: str
    args: Tuple[Node, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)

    def children(self):
        return self.args


@dataclass(frozen=True)
class Conditional(Node):
    """A ternary conditional ``condition ? if_true : if_false``."""

    condition: Node
    if_true: Node
    if_false: Node
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)

    def children(self):
        return (self.condition, self.if_true, self.if_false)


def free_variables(node: Node) -> frozenset:
    """Return the set of variable names appearing in ``node``."""
    names = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Variable):
            names.add(current.name)
        stack.extend(current.children())
    return frozenset(names)
