"""Model layer: infrastructure, service, and requirement descriptions.

These classes are the in-memory form of the paper's design space model
(section 3).  They can be built programmatically or parsed from the
paper's specification DSL via :mod:`repro.spec`.
"""

from . import catalog
from .component import (ComponentType, CostSchedule, FailureMode,
                        MechanismRef, OperationalMode)
from .infrastructure import InfrastructureModel
from .mechanism import (AvailabilityMechanism, ConstantEffect, Effect,
                        MechanismConfig, MechanismParameter, ParameterEffect,
                        TableEffect)
from .perf import (CategoricalOverhead, ConstantPerformance,
                   ExpressionPerformance, OverheadModel, PerformanceModel,
                   TabulatedPerformance, UnityOverhead)
from .requirements import JobRequirements, ServiceRequirements
from .resource import ComponentSlot, ResourceType
from .service import (FailureScope, MechanismUse, ResourceOption,
                      ServiceModel, Sizing, Tier)
from .validation import collect_problems, validate_pair

__all__ = [
    "catalog",
    "ComponentType", "CostSchedule", "FailureMode", "MechanismRef",
    "OperationalMode",
    "AvailabilityMechanism", "MechanismParameter", "MechanismConfig",
    "Effect", "ConstantEffect", "ParameterEffect", "TableEffect",
    "ComponentSlot", "ResourceType",
    "InfrastructureModel",
    "PerformanceModel", "ExpressionPerformance", "TabulatedPerformance",
    "ConstantPerformance", "OverheadModel", "UnityOverhead",
    "CategoricalOverhead",
    "Sizing", "FailureScope", "MechanismUse", "ResourceOption", "Tier",
    "ServiceModel",
    "ServiceRequirements", "JobRequirements",
    "validate_pair", "collect_problems",
]
