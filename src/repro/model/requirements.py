"""Service requirements: the high-level inputs to the design engine.

Two kinds, matching the paper's two application classes (section 2):

* :class:`ServiceRequirements` for enterprise services -- a minimum
  throughput (in the service's own work units per hour) plus a maximum
  expected annual downtime;
* :class:`JobRequirements` for finite computations -- a maximum
  expected job execution time (availability metrics are internal
  bookkeeping; only completion time matters to the user).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ModelError
from ..units import Duration


@dataclass(frozen=True)
class ServiceRequirements:
    """Throughput + annual downtime bound for an always-on service."""

    throughput: float                  # work units per hour
    max_annual_downtime: Duration      # expected downtime per year

    def __post_init__(self):
        if self.throughput <= 0 or not math.isfinite(self.throughput):
            raise ModelError("throughput requirement must be positive "
                             "and finite")
        if self.max_annual_downtime.as_seconds < 0:
            raise ModelError("downtime requirement cannot be negative")

    @property
    def max_downtime_minutes(self) -> float:
        return self.max_annual_downtime.as_minutes

    def describe(self) -> str:
        return ("load >= %g units/h, annual downtime <= %s"
                % (self.throughput, self.max_annual_downtime.format()))


@dataclass(frozen=True)
class JobRequirements:
    """Execution-time bound for a run-to-completion application."""

    max_execution_time: Duration       # expected wall-clock completion time

    def __post_init__(self):
        if self.max_execution_time.as_seconds <= 0:
            raise ModelError("job execution time requirement must be "
                             "positive")

    def describe(self) -> str:
        return "job completes in <= %s" % self.max_execution_time.format()
