"""Performance models for tiers and availability-mechanism overheads.

The paper specifies tier performance "in service-specific units of work
per units of time ... typically defined as a function of the number of
active resources" (section 3.2), referencing data files (``perfA.dat``)
whose closed forms are given in Table 1.  We support three encodings:

* :class:`ExpressionPerformance` -- a closed-form function of ``n``
  (what Table 1 gives);
* :class:`TabulatedPerformance` -- (n, throughput) samples with linear
  interpolation, the moral equivalent of a ``.dat`` file;
* :class:`ConstantPerformance` -- a fixed capacity regardless of the
  resource count (the paper's database tier: ``performance=10000``).

Mechanism overheads (``mperformance`` in Fig. 5 / Table 1) are modeled
as *slowdown factors* >= 1 on execution time: ``max(10/cpi, 100%)``
means a checkpoint every ``cpi`` minutes stretches execution by that
factor, approaching 1.0 (no overhead) for long intervals.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import EvaluationError, ModelError
from ..expr import Expression
from ..units import Duration

#: Throughput is expressed in service work units per **hour** throughout.
THROUGHPUT_TIME_UNIT = "hour"


class PerformanceModel:
    """Throughput of a tier as a function of active resource count."""

    def throughput(self, n_active: int) -> float:
        """Work units per hour delivered by ``n_active`` resources."""
        raise NotImplementedError

    def min_resources(self, load: float,
                      candidates: Sequence[int]) -> Optional[int]:
        """Smallest candidate count meeting ``load``, or None.

        ``candidates`` must be sorted ascending (it comes from the
        tier's ``nActive`` range).  Throughput is not assumed monotone
        in general, so this scans; monotone subclasses may bisect.
        """
        for n in candidates:
            if self.throughput(n) >= load:
                return n
        return None


class ExpressionPerformance(PerformanceModel):
    """Closed-form throughput, e.g. ``200*n`` or ``(10*n)/(1+0.004*n)``."""

    def __init__(self, expression):
        if isinstance(expression, str):
            expression = Expression(expression)
        unknown = expression.variables - {"n"}
        if unknown:
            raise ModelError(
                "performance expression %r has free variables %s "
                "(only 'n' is allowed)" % (expression.source,
                                           sorted(unknown)))
        self.expression = expression

    def throughput(self, n_active: int) -> float:
        if n_active < 0:
            raise EvaluationError("negative resource count %d" % n_active)
        if n_active == 0:
            return 0.0
        return self.expression(n=float(n_active))

    def __repr__(self) -> str:
        return "ExpressionPerformance(%r)" % self.expression.source


class TabulatedPerformance(PerformanceModel):
    """Sampled throughput with linear interpolation between samples.

    Extrapolation is refused: asking for a count outside the sampled
    range raises, because silently extrapolating a performance curve is
    how capacity planning goes wrong.
    """

    def __init__(self, samples: Sequence[Tuple[int, float]]):
        if not samples:
            raise ModelError("tabulated performance needs at least 1 sample")
        ordered = sorted(samples)
        counts = [n for n, _ in ordered]
        if len(set(counts)) != len(counts):
            raise ModelError("duplicate resource counts in samples")
        self._counts = counts
        self._values = [float(v) for _, v in ordered]

    def throughput(self, n_active: int) -> float:
        if n_active == 0:
            return 0.0
        counts, values = self._counts, self._values
        if n_active < counts[0] or n_active > counts[-1]:
            raise EvaluationError(
                "resource count %d outside sampled range [%d, %d]"
                % (n_active, counts[0], counts[-1]))
        index = bisect.bisect_left(counts, n_active)
        if counts[index] == n_active:
            return values[index]
        lo_n, hi_n = counts[index - 1], counts[index]
        lo_v, hi_v = values[index - 1], values[index]
        fraction = (n_active - lo_n) / (hi_n - lo_n)
        return lo_v + fraction * (hi_v - lo_v)

    @property
    def sampled_counts(self) -> List[int]:
        """The sampled resource counts, ascending."""
        return list(self._counts)

    def __repr__(self) -> str:
        return "TabulatedPerformance(%d samples)" % len(self._counts)


class ConstantPerformance(PerformanceModel):
    """Fixed capacity regardless of resource count (``performance=10000``)."""

    def __init__(self, capacity: float):
        if capacity < 0:
            raise ModelError("capacity cannot be negative")
        self.capacity = float(capacity)

    def throughput(self, n_active: int) -> float:
        return self.capacity if n_active > 0 else 0.0

    def __repr__(self) -> str:
        return "ConstantPerformance(%g)" % self.capacity


# ----------------------------------------------------------------------
# Mechanism overhead (mperformance)
# ----------------------------------------------------------------------


class OverheadModel:
    """Execution-time slowdown factor of a configured mechanism.

    ``factor() == 1.0`` means no overhead; 2.0 means execution takes
    twice as long while the mechanism operates.
    """

    def factor(self, settings: Mapping[str, object], n_active: int) -> float:
        raise NotImplementedError


class UnityOverhead(OverheadModel):
    """A mechanism with no performance impact."""

    def factor(self, settings: Mapping[str, object], n_active: int) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "UnityOverhead()"


class CategoricalOverhead(OverheadModel):
    """Overhead selected by one categorical parameter, with the rest bound
    as expression variables.

    This is exactly Table 1's ``mperformance(storage_location, cpi, n)``
    shape: the storage location picks the expression; the checkpoint
    interval (bound as ``cpi``, in **minutes**, per the table's note)
    and the resource count (bound as ``n``) feed it.
    """

    def __init__(self, category_param: str,
                 expressions: Dict[str, Expression],
                 interval_param: str = "checkpoint_interval",
                 interval_var: str = "cpi"):
        if not expressions:
            raise ModelError("categorical overhead needs >= 1 expression")
        self.category_param = category_param
        self.interval_param = interval_param
        self.interval_var = interval_var
        self.expressions = {
            key: (Expression(value) if isinstance(value, str) else value)
            for key, value in expressions.items()
        }
        for key, expression in self.expressions.items():
            unknown = expression.variables - {interval_var, "n"}
            if unknown:
                raise ModelError(
                    "overhead expression for %r has unexpected variables %s"
                    % (key, sorted(unknown)))

    def factor(self, settings: Mapping[str, object], n_active: int) -> float:
        try:
            category = settings[self.category_param]
        except KeyError:
            raise EvaluationError(
                "overhead model needs parameter %r" % self.category_param)
        try:
            expression = self.expressions[category]
        except KeyError:
            raise EvaluationError(
                "no overhead expression for %s=%r"
                % (self.category_param, category))
        env = {"n": float(n_active)}
        if self.interval_var in expression.variables:
            try:
                interval = settings[self.interval_param]
            except KeyError:
                raise EvaluationError(
                    "overhead model needs parameter %r" % self.interval_param)
            env[self.interval_var] = Duration.parse(interval).as_minutes
        factor = expression.evaluate(env)
        if factor < 1.0 - 1e-9:
            raise EvaluationError(
                "overhead factor %.4g < 1 for %s=%r (slowdowns must be "
                ">= 100%%)" % (factor, self.category_param, category))
        return max(factor, 1.0)

    def __repr__(self) -> str:
        return "CategoricalOverhead(%r, %r)" % (
            self.category_param, sorted(self.expressions))
