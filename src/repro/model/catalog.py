"""A starter catalog of infrastructure building blocks.

The paper populates its infrastructure model from vendor databases and
the authors' judgment.  Users without either need somewhere to start;
this module provides parameterized templates with illustrative defaults
in the same ballpark as the paper's Fig. 3 numbers (commodity machine
MTBF on the order of 1-2 years hard / months soft; software crashes
every 1-2 months; maintenance response times from next-business-day to
four-hour).

Every number here is a **default to be overridden**, not a measurement;
:mod:`repro.availability.fit` exists to replace them with observed
values.  Templates return ordinary model objects, so catalogs and
hand-written models mix freely.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..units import Duration, EnumeratedRange
from .component import (ComponentType, CostSchedule, FailureMode,
                        MechanismRef)
from .mechanism import (AvailabilityMechanism, MechanismParameter,
                        ParameterEffect, TableEffect)
from .resource import ComponentSlot, ResourceType

#: Conventional maintenance levels, mirroring the paper's contract tiers.
MAINTENANCE_LEVELS = ("nbd", "business-day", "four-hour")
_MAINTENANCE_MTTRS = (Duration.hours(30), Duration.hours(9),
                      Duration.hours(4))


def maintenance_contract(name: str = "maintenance",
                         annual_costs: Sequence[float] = (300.0, 700.0,
                                                          1600.0)) \
        -> AvailabilityMechanism:
    """A three-tier hardware maintenance contract mechanism."""
    if len(annual_costs) != len(MAINTENANCE_LEVELS):
        raise ValueError("need one cost per level %r"
                         % (MAINTENANCE_LEVELS,))
    level = MechanismParameter("level",
                               EnumeratedRange(list(MAINTENANCE_LEVELS)))
    return AvailabilityMechanism(
        name,
        parameters=(level,),
        effects={
            "cost": TableEffect.from_values(level, list(annual_costs)),
            "mttr": TableEffect.from_values(level,
                                            list(_MAINTENANCE_MTTRS)),
        })


def checkpointing(name: str = "checkpoint",
                  min_interval: Duration = Duration.minutes(1),
                  max_interval: Duration = Duration.hours(24),
                  grid_factor: float = 1.1,
                  locations: Sequence[str] = ("central", "peer")) \
        -> AvailabilityMechanism:
    """A checkpoint-restart mechanism like the paper's Fig. 3 entry."""
    from ..units import GeometricRange
    parameters = [
        MechanismParameter("storage_location",
                           EnumeratedRange(list(locations))),
        MechanismParameter("checkpoint_interval",
                           GeometricRange(min_interval, max_interval,
                                          grid_factor)),
    ]
    return AvailabilityMechanism(
        name,
        parameters=tuple(parameters),
        effects={"loss_window": ParameterEffect("checkpoint_interval")})


def commodity_server(name: str = "server",
                     annual_cost: float = 2500.0,
                     maintenance: str = "maintenance",
                     hard_mtbf: Duration = Duration.days(550),
                     soft_mtbf: Duration = Duration.days(90),
                     detect: Duration = Duration.minutes(2)) \
        -> ComponentType:
    """A dual-socket pizza box: hard failures need the contract."""
    return ComponentType(
        name,
        cost=CostSchedule(inactive=annual_cost * 0.9,
                          active=annual_cost),
        failure_modes=(
            FailureMode("hard", hard_mtbf, MechanismRef(maintenance),
                        detect_time=detect),
            FailureMode("soft", soft_mtbf, Duration.ZERO,
                        detect_time=Duration.seconds(10)),
        ))


def operating_system(name: str = "os",
                     crash_mtbf: Duration = Duration.days(60),
                     license_cost: float = 0.0) -> ComponentType:
    """An OS image: crashes occasionally, restarts cleanly."""
    return ComponentType(
        name,
        cost=CostSchedule(inactive=0.0, active=license_cost),
        failure_modes=(FailureMode("crash", crash_mtbf, Duration.ZERO,
                                   detect_time=Duration.seconds(5)),))


def application_software(name: str,
                         crash_mtbf: Duration = Duration.days(45),
                         license_cost: float = 0.0,
                         loss_window_mechanism: Optional[str] = None) \
        -> ComponentType:
    """An application process; optionally checkpointed."""
    loss_window = (MechanismRef(loss_window_mechanism)
                   if loss_window_mechanism else None)
    return ComponentType(
        name,
        cost=CostSchedule(inactive=0.0, active=license_cost),
        failure_modes=(FailureMode("crash", crash_mtbf, Duration.ZERO,
                                   detect_time=Duration.seconds(5)),),
        loss_window=loss_window)


def server_stack(name: str, server: ComponentType, os: ComponentType,
                 app: ComponentType,
                 server_boot: Duration = Duration.seconds(45),
                 os_boot: Duration = Duration.minutes(2),
                 app_start: Duration = Duration.seconds(30),
                 reconfig: Duration = Duration.seconds(20)) \
        -> ResourceType:
    """The canonical machine -> OS -> application resource."""
    return ResourceType(
        name,
        slots=(
            ComponentSlot(server.name, None, server_boot),
            ComponentSlot(os.name, server.name, os_boot),
            ComponentSlot(app.name, os.name, app_start),
        ),
        reconfig_time=reconfig)


def starter_infrastructure(app_name: str = "app",
                           checkpointed: bool = False):
    """A complete small infrastructure model, ready to design against.

    Returns an :class:`~repro.model.InfrastructureModel` with one
    server type, an OS, one application component (checkpointed if
    requested), the maintenance contract, and a ``node`` resource.
    """
    from .infrastructure import InfrastructureModel
    contract = maintenance_contract()
    mechanisms = [contract]
    loss_mechanism = None
    if checkpointed:
        mechanisms.append(checkpointing())
        loss_mechanism = "checkpoint"
    server = commodity_server()
    os = operating_system()
    app = application_software(app_name,
                               loss_window_mechanism=loss_mechanism)
    node = server_stack("node", server, os, app)
    return InfrastructureModel(components=[server, os, app],
                               mechanisms=mechanisms,
                               resources=[node])
