"""Component types and failure modes (paper section 3.1.1).

A *component* is the basic unit of fault management: an element that can
fail (hardware box, operating system, application software).  Each
component type declares

* one or more :class:`FailureMode` entries (MTBF, detection time, and a
  repair time that may be delegated to an availability mechanism such
  as a maintenance contract),
* a :class:`CostSchedule` giving annual cost per operational mode
  (``inactive`` components can be cheaper -- powered off hardware,
  unlicensed software), and
* optionally a *loss window*: the maximum amount of computation that is
  lost when the component fails, which may itself be delegated to a
  mechanism (checkpointing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import ModelError
from ..units import Duration, WorkAmount


class OperationalMode(enum.Enum):
    """Run state of a component instance in a deployed design."""

    INACTIVE = "inactive"
    ACTIVE = "active"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MechanismRef:
    """A deferred attribute value, resolved by a configured mechanism.

    Written ``<maintenanceA>`` in the spec language: the component's
    MTTR (or loss window) is whatever the selected configuration of
    that mechanism dictates.
    """

    mechanism: str

    def __str__(self) -> str:
        return "<%s>" % self.mechanism


#: An attribute that is either a concrete duration or mechanism-supplied.
DurationOrRef = Union[Duration, MechanismRef]
#: Loss windows may also be given in application work units (paper
#: footnote 1); the evaluator converts via the performance model.
LossWindowValue = Union[Duration, WorkAmount, MechanismRef]


@dataclass(frozen=True)
class FailureMode:
    """One way a component can fail (paper: ``failure=hard ...``).

    ``mttr`` is the component repair time *after detection*; the
    availability model adds detection time and dependent-component
    startup times on top (paper section 4.2 item 5).
    """

    name: str
    mtbf: Duration
    mttr: DurationOrRef
    detect_time: Duration = Duration.ZERO

    def __post_init__(self):
        if self.mtbf.as_seconds <= 0:
            raise ModelError(
                "failure mode %r: MTBF must be positive" % self.name)
        if isinstance(self.mttr, Duration) and self.mttr.as_seconds < 0:
            raise ModelError(
                "failure mode %r: MTTR cannot be negative" % self.name)
        if self.detect_time.as_seconds < 0:
            raise ModelError(
                "failure mode %r: detect time cannot be negative" % self.name)

    @property
    def mttr_mechanism(self) -> Optional[str]:
        """Name of the mechanism supplying MTTR, or None if concrete."""
        if isinstance(self.mttr, MechanismRef):
            return self.mttr.mechanism
        return None

    def canonical_fragment(self) -> dict:
        """Normalized, JSON-stable description of this failure mode."""
        from ..units import canonical_scalar
        mttr = (["ref", self.mttr.mechanism]
                if isinstance(self.mttr, MechanismRef)
                else canonical_scalar(self.mttr))
        return {"name": self.name,
                "mtbf": canonical_scalar(self.mtbf),
                "mttr": mttr,
                "detect": canonical_scalar(self.detect_time)}


@dataclass(frozen=True)
class CostSchedule:
    """Annual cost of one component instance, by operational mode.

    Costs bundle annual operational cost plus annualized capital cost
    (paper section 3.1.1).  ``CostSchedule.flat(c)`` models components
    whose cost does not depend on mode.
    """

    inactive: float
    active: float

    def __post_init__(self):
        if self.inactive < 0 or self.active < 0:
            raise ModelError("component costs cannot be negative")

    @classmethod
    def flat(cls, cost: float) -> "CostSchedule":
        return cls(inactive=cost, active=cost)

    def for_mode(self, mode: OperationalMode) -> float:
        if mode is OperationalMode.ACTIVE:
            return self.active
        return self.inactive


@dataclass(frozen=True)
class ComponentType:
    """A reusable component definition in the infrastructure model."""

    name: str
    cost: CostSchedule = field(default_factory=lambda: CostSchedule.flat(0.0))
    failure_modes: tuple = ()
    loss_window: Optional[LossWindowValue] = None
    max_instances: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ModelError("component type must have a name")
        seen = set()
        for mode in self.failure_modes:
            if not isinstance(mode, FailureMode):
                raise ModelError(
                    "component %r: failure modes must be FailureMode objects"
                    % self.name)
            if mode.name in seen:
                raise ModelError(
                    "component %r: duplicate failure mode %r"
                    % (self.name, mode.name))
            seen.add(mode.name)
        if self.max_instances is not None and self.max_instances < 1:
            raise ModelError(
                "component %r: max_instances must be >= 1" % self.name)

    @property
    def loss_window_mechanism(self) -> Optional[str]:
        """Name of the mechanism supplying the loss window, if deferred."""
        if isinstance(self.loss_window, MechanismRef):
            return self.loss_window.mechanism
        return None

    def failure_mode(self, name: str) -> FailureMode:
        for mode in self.failure_modes:
            if mode.name == name:
                return mode
        raise ModelError(
            "component %r has no failure mode %r" % (self.name, name))

    def mechanism_references(self) -> List[str]:
        """All mechanism names this component's attributes defer to."""
        refs = []
        for mode in self.failure_modes:
            if mode.mttr_mechanism:
                refs.append(mode.mttr_mechanism)
        if self.loss_window_mechanism:
            refs.append(self.loss_window_mechanism)
        return refs

    def canonical_fragment(self) -> dict:
        """Normalized, JSON-stable description of this component type.

        Used by the space analyzer (:mod:`repro.lint.space`) to detect
        structurally identical model elements; stable across processes
        and ``PYTHONHASHSEED`` values.
        """
        from ..units import canonical_scalar
        loss: object = None
        if isinstance(self.loss_window, MechanismRef):
            loss = ["ref", self.loss_window.mechanism]
        elif self.loss_window is not None:
            loss = canonical_scalar(self.loss_window)
        return {"name": self.name,
                "cost": [canonical_scalar(self.cost.inactive),
                         canonical_scalar(self.cost.active)],
                "failure_modes": [mode.canonical_fragment()
                                  for mode in self.failure_modes],
                "loss_window": loss,
                "max_instances": self.max_instances}
