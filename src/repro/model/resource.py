"""Resource types: compositions of components (paper section 3.1.3).

A *resource* is the basic unit of allocation to a service tier (e.g. a
machine plus its OS plus an application server).  Its attributes are

* the ordered list of component slots, each with a startup time and a
  dependency on another component of the same resource (``depend``),
* the reconfiguration time incurred on failover to a spare.

Dependencies serve two purposes (paper): they give the start-up order,
and they define the blast radius of a failure -- a component failure
also brings down its transitive dependents.  This module exposes the
derived quantities the availability model needs:

* ``affected_by(name)``: the failed component plus transitive dependents;
* ``restart_time(name)``: the summed startup latency of that set, which
  is added to MTTR (section 4.2 item 5);
* ``activation_time(inactive)``: summed startup latency of the inactive
  components of a spare, part of the failover time (section 4.2 item 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..units import Duration
from .component import OperationalMode


@dataclass(frozen=True)
class ComponentSlot:
    """One component position inside a resource type."""

    component: str               # component type name
    depends_on: Optional[str]    # component name within the same resource
    startup: Duration = Duration.ZERO

    def __post_init__(self):
        if self.startup.as_seconds < 0:
            raise ModelError("slot %r: startup time cannot be negative"
                             % self.component)
        if self.depends_on == self.component:
            raise ModelError("slot %r cannot depend on itself"
                             % self.component)


class ResourceType:
    """A named combination of components allocatable as a unit."""

    def __init__(self, name: str, slots: Sequence[ComponentSlot],
                 reconfig_time: Duration = Duration.ZERO):
        if not name:
            raise ModelError("resource type must have a name")
        if not slots:
            raise ModelError("resource %r has no components" % name)
        if reconfig_time.as_seconds < 0:
            raise ModelError("resource %r: reconfig time cannot be negative"
                             % name)
        self.name = name
        self.slots: Tuple[ComponentSlot, ...] = tuple(slots)
        self.reconfig_time = reconfig_time
        self._by_name: Dict[str, ComponentSlot] = {}
        for slot in self.slots:
            if slot.component in self._by_name:
                raise ModelError("resource %r: duplicate component %r"
                                 % (name, slot.component))
            self._by_name[slot.component] = slot
        self._validate_dependencies()
        self._dependents = self._compute_dependents()
        self._startup_order = self._topological_order()

    # -- construction-time validation ---------------------------------

    def _validate_dependencies(self) -> None:
        for slot in self.slots:
            if slot.depends_on is not None and \
                    slot.depends_on not in self._by_name:
                raise ModelError(
                    "resource %r: component %r depends on unknown "
                    "component %r" % (self.name, slot.component,
                                      slot.depends_on))
        # Cycle check via depth-first search over depend edges.
        state: Dict[str, int] = {}  # 0=visiting, 1=done

        def visit(component: str) -> None:
            if state.get(component) == 1:
                return
            if state.get(component) == 0:
                raise ModelError("resource %r: dependency cycle through %r"
                                 % (self.name, component))
            state[component] = 0
            parent = self._by_name[component].depends_on
            if parent is not None:
                visit(parent)
            state[component] = 1

        for slot in self.slots:
            visit(slot.component)

    def _compute_dependents(self) -> Dict[str, FrozenSet[str]]:
        """Map each component to its transitive dependents (children)."""
        children: Dict[str, List[str]] = {s.component: [] for s in self.slots}
        for slot in self.slots:
            if slot.depends_on is not None:
                children[slot.depends_on].append(slot.component)

        result: Dict[str, FrozenSet[str]] = {}

        def collect(component: str) -> FrozenSet[str]:
            if component in result:
                return result[component]
            gathered = set()
            for child in children[component]:
                gathered.add(child)
                gathered |= collect(child)
            result[component] = frozenset(gathered)
            return result[component]

        for slot in self.slots:
            collect(slot.component)
        return result

    def _topological_order(self) -> Tuple[str, ...]:
        """Components in a valid startup order (parents first)."""
        order: List[str] = []
        placed = set()

        def place(component: str) -> None:
            if component in placed:
                return
            parent = self._by_name[component].depends_on
            if parent is not None:
                place(parent)
            placed.add(component)
            order.append(component)

        for slot in self.slots:
            place(slot.component)
        return tuple(order)

    # -- accessors -----------------------------------------------------

    @property
    def component_names(self) -> Tuple[str, ...]:
        return tuple(slot.component for slot in self.slots)

    @property
    def startup_order(self) -> Tuple[str, ...]:
        return self._startup_order

    def slot(self, component: str) -> ComponentSlot:
        try:
            return self._by_name[component]
        except KeyError:
            raise ModelError("resource %r has no component %r"
                             % (self.name, component))

    def dependents_of(self, component: str) -> FrozenSet[str]:
        """Transitive dependents brought down by ``component`` failing."""
        self.slot(component)  # raise on unknown name
        return self._dependents[component]

    def affected_by(self, component: str) -> FrozenSet[str]:
        """The failed component itself plus its transitive dependents."""
        return self.dependents_of(component) | {component}

    # -- derived durations ----------------------------------------------

    def restart_time(self, component: str) -> Duration:
        """Startup latency added to MTTR when ``component`` fails.

        The failed component and everything that depends on it must be
        restarted in dependency order; startups are summed (they form a
        chain through the dependency graph in all the paper's examples,
        and summation is the conservative composition otherwise).
        """
        total = Duration.ZERO
        for name in self.affected_by(component):
            total = total + self._by_name[name].startup
        return total

    def full_startup_time(self) -> Duration:
        """Time to bring up the resource from everything powered off."""
        total = Duration.ZERO
        for slot in self.slots:
            total = total + slot.startup
        return total

    def activation_time(self, modes: Dict[str, OperationalMode]) -> Duration:
        """Startup latency to activate a spare with the given slot modes.

        Only components currently INACTIVE contribute their startup
        time; fully-active (hot) spares activate instantly.
        """
        total = Duration.ZERO
        for slot in self.slots:
            mode = modes.get(slot.component, OperationalMode.INACTIVE)
            if mode is OperationalMode.INACTIVE:
                total = total + slot.startup
        return total

    def activation_prefixes(self) -> List[Tuple[str, ...]]:
        """Dependency-respecting spare activation levels.

        Level ``k`` keeps the first ``k`` components of the startup
        order active in the spare (you cannot run an app server on a
        powered-off machine).  Level 0 is a cold spare, level
        ``len(slots)`` is a hot spare.  These are the spare
        operational-mode choices the design search enumerates.
        """
        order = self._startup_order
        return [tuple(order[:k]) for k in range(len(order) + 1)]

    def modes_for_prefix(self, active_prefix: Tuple[str, ...]) \
            -> Dict[str, OperationalMode]:
        """Slot-mode map for an activation prefix from
        :meth:`activation_prefixes`."""
        active = set(active_prefix)
        for name in active:
            self.slot(name)
            parent = self._by_name[name].depends_on
            if parent is not None and parent not in active:
                raise ModelError(
                    "resource %r: %r cannot be active while its "
                    "dependency %r is inactive" % (self.name, name, parent))
        return {
            slot.component: (OperationalMode.ACTIVE
                             if slot.component in active
                             else OperationalMode.INACTIVE)
            for slot in self.slots
        }

    def canonical_fragment(self) -> dict:
        """Normalized, JSON-stable description of this resource type.

        Slot order is preserved (it determines startup order and the
        generated availability model's mode order); durations are
        unit-canonical via :func:`repro.units.canonical_scalar`.
        """
        from ..units import canonical_scalar
        return {"name": self.name,
                "reconfig": canonical_scalar(self.reconfig_time),
                "slots": [{"component": slot.component,
                           "depends": slot.depends_on,
                           "startup": canonical_scalar(slot.startup)}
                          for slot in self.slots]}

    def __repr__(self) -> str:
        return "ResourceType(%r, components=%r)" % (
            self.name, list(self.component_names))
