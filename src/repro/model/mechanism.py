"""Availability mechanisms (paper section 3.1.2).

A mechanism is a *configurable operator* over other attributes of the
design: selecting a maintenance contract level sets component MTTRs;
selecting a checkpoint interval sets the application's loss window.
Each mechanism declares

* named parameters, each with a :class:`~repro.units.ValueRange` of
  allowed settings,
* *effects*: attribute values (``mttr``, ``loss_window``, ``cost``)
  expressed as functions of the parameter settings.

A :class:`MechanismConfig` pairs a mechanism with concrete parameter
values and can resolve any effect to a concrete value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..errors import ModelError
from ..units import Duration, ValueRange


@dataclass(frozen=True)
class MechanismParameter:
    """One configuration knob of a mechanism (e.g. ``level``)."""

    name: str
    values: ValueRange

    def __post_init__(self):
        if len(self.values) == 0:
            raise ModelError(
                "mechanism parameter %r has an empty range" % self.name)


class Effect:
    """How a mechanism determines one attribute's value.

    Subclasses resolve against a mapping of parameter name -> setting.
    """

    def resolve(self, settings: Mapping[str, object]):
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantEffect(Effect):
    """Attribute takes a fixed value regardless of parameters."""

    value: object

    def resolve(self, settings: Mapping[str, object]):
        return self.value


@dataclass(frozen=True)
class ParameterEffect(Effect):
    """Attribute equals a parameter's value directly.

    The checkpoint mechanism's ``loss_window=checkpoint_interval`` is
    this: the loss window *is* the selected interval.
    """

    parameter: str

    def resolve(self, settings: Mapping[str, object]):
        try:
            return settings[self.parameter]
        except KeyError:
            raise ModelError("effect references unset parameter %r"
                             % self.parameter)


@dataclass(frozen=True)
class TableEffect(Effect):
    """Attribute looked up from a table keyed by one parameter.

    ``mttr(level)=[38h 15h 8h 6h]`` maps each value of ``level`` (in
    range order) to a duration.
    """

    parameter: str
    table: Tuple[Tuple[object, object], ...]  # ((setting, value), ...)

    def resolve(self, settings: Mapping[str, object]):
        try:
            key = settings[self.parameter]
        except KeyError:
            raise ModelError("effect references unset parameter %r"
                             % self.parameter)
        for setting, value in self.table:
            if setting == key:
                return value
        raise ModelError("no table entry for %s=%r" % (self.parameter, key))

    @classmethod
    def from_values(cls, parameter: MechanismParameter,
                    values: List[object]) -> "TableEffect":
        settings = parameter.values.values()
        if len(settings) != len(values):
            raise ModelError(
                "table for parameter %r has %d entries but the parameter "
                "has %d settings" % (parameter.name, len(values),
                                     len(settings)))
        return cls(parameter.name, tuple(zip(settings, values)))


@dataclass(frozen=True)
class AvailabilityMechanism:
    """A named, configurable availability mechanism."""

    name: str
    parameters: Tuple[MechanismParameter, ...] = ()
    #: attribute name -> Effect.  Recognized attributes: ``cost``
    #: (annual dollars), ``mttr`` (Duration), ``loss_window`` (Duration).
    effects: Mapping[str, Effect] = field(default_factory=dict)

    def __post_init__(self):
        seen = set()
        for parameter in self.parameters:
            if parameter.name in seen:
                raise ModelError("mechanism %r: duplicate parameter %r"
                                 % (self.name, parameter.name))
            seen.add(parameter.name)
        for attribute, effect in self.effects.items():
            for ref in _effect_parameter_refs(effect):
                if ref not in seen:
                    raise ModelError(
                        "mechanism %r: effect on %r references unknown "
                        "parameter %r" % (self.name, attribute, ref))

    def parameter(self, name: str) -> MechanismParameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise ModelError("mechanism %r has no parameter %r"
                         % (self.name, name))

    def provides(self, attribute: str) -> bool:
        return attribute in self.effects

    def configurations(self) -> Iterator["MechanismConfig"]:
        """Yield every combination of parameter settings (design search)."""
        if not self.parameters:
            yield MechanismConfig(self, {})
            return
        names = [parameter.name for parameter in self.parameters]
        pools = [parameter.values.values() for parameter in self.parameters]
        for combo in itertools.product(*pools):
            yield MechanismConfig(self, dict(zip(names, combo)))

    def configuration_count(self) -> int:
        count = 1
        for parameter in self.parameters:
            count *= len(parameter.values)
        return count


def _effect_parameter_refs(effect: Effect) -> List[str]:
    if isinstance(effect, ParameterEffect):
        return [effect.parameter]
    if isinstance(effect, TableEffect):
        return [effect.parameter]
    return []


class MechanismConfig:
    """A mechanism with all parameters bound to concrete settings."""

    __slots__ = ("mechanism", "settings")

    def __init__(self, mechanism: AvailabilityMechanism,
                 settings: Dict[str, object]):
        for parameter in mechanism.parameters:
            if parameter.name not in settings:
                raise ModelError(
                    "mechanism %r: parameter %r not set"
                    % (mechanism.name, parameter.name))
            if settings[parameter.name] not in parameter.values:
                raise ModelError(
                    "mechanism %r: %r is not an allowed value of %r"
                    % (mechanism.name, settings[parameter.name],
                       parameter.name))
        unknown = set(settings) - {p.name for p in mechanism.parameters}
        if unknown:
            raise ModelError("mechanism %r: unknown parameters %s"
                             % (mechanism.name, sorted(unknown)))
        self.mechanism = mechanism
        self.settings = dict(settings)

    @property
    def name(self) -> str:
        return self.mechanism.name

    def attribute(self, name: str):
        """Resolve an effect attribute (``mttr``, ``loss_window``...)."""
        if name not in self.mechanism.effects:
            raise ModelError("mechanism %r does not affect %r"
                             % (self.mechanism.name, name))
        return self.mechanism.effects[name].resolve(self.settings)

    def cost(self) -> float:
        """Annual cost of this mechanism configuration (0 if no effect)."""
        if not self.mechanism.provides("cost"):
            return 0.0
        return float(self.attribute("cost"))

    def duration_attribute(self, name: str) -> Duration:
        value = self.attribute(name)
        if isinstance(value, Duration):
            return value
        return Duration.parse(value)

    def canonical_fragment(self) -> dict:
        """Normalized, JSON-stable description of this configuration.

        Parameters are listed in sorted name order with unit-canonical
        values (:func:`repro.units.canonical_scalar`), so two configs
        that spell the same settings differently (``90s`` vs ``1.5m``,
        any dict insertion order) produce identical fragments.  This is
        the content the space analyzer's combo keys hash.
        """
        from ..units import canonical_scalar
        return {"mechanism": self.mechanism.name,
                "settings": [[key, canonical_scalar(value)]
                             for key, value
                             in sorted(self.settings.items())]}

    def __eq__(self, other) -> bool:
        return (isinstance(other, MechanismConfig)
                and self.mechanism.name == other.mechanism.name
                and self.settings == other.settings)

    def __hash__(self) -> int:
        return hash((self.mechanism.name,
                     tuple(sorted((k, str(v))
                                  for k, v in self.settings.items()))))

    def describe(self) -> str:
        if not self.settings:
            return self.mechanism.name
        inner = ", ".join("%s=%s" % (key, _format_setting(value))
                          for key, value in sorted(self.settings.items()))
        return "%s(%s)" % (self.mechanism.name, inner)

    def __repr__(self) -> str:
        return "MechanismConfig(%s)" % self.describe()


def _format_setting(value) -> str:
    if isinstance(value, Duration):
        return value.format()
    return str(value)
