"""The infrastructure model: registry of components, mechanisms, resources.

This is the repository of building blocks shared by all services (paper
section 2: "the infrastructure model could be maintained in a repository
and be used for all services and applications").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import ModelError
from .component import ComponentType
from .mechanism import AvailabilityMechanism
from .resource import ResourceType


class InfrastructureModel:
    """Building blocks available to the design engine."""

    def __init__(self,
                 components: Iterable[ComponentType] = (),
                 mechanisms: Iterable[AvailabilityMechanism] = (),
                 resources: Iterable[ResourceType] = ()):
        self._components: Dict[str, ComponentType] = {}
        self._mechanisms: Dict[str, AvailabilityMechanism] = {}
        self._resources: Dict[str, ResourceType] = {}
        #: parse provenance (``"component:cpuA"`` -> spec line number);
        #: populated by the spec parser, used by lint diagnostics.
        self.source_lines: Dict[str, int] = {}
        for component in components:
            self.add_component(component)
        for mechanism in mechanisms:
            self.add_mechanism(mechanism)
        for resource in resources:
            self.add_resource(resource)

    # -- registration ---------------------------------------------------

    def add_component(self, component: ComponentType) -> None:
        if component.name in self._components:
            raise ModelError("duplicate component type %r" % component.name)
        self._components[component.name] = component

    def add_mechanism(self, mechanism: AvailabilityMechanism) -> None:
        if mechanism.name in self._mechanisms:
            raise ModelError("duplicate mechanism %r" % mechanism.name)
        self._mechanisms[mechanism.name] = mechanism

    def replace_component(self, component: ComponentType) -> None:
        """Swap a component type definition in place (what-if studies).

        The replacement must already exist by name; resources keep
        referring to it by name, so derived MTTRs and costs pick up the
        new attributes on the next evaluation.
        """
        if component.name not in self._components:
            raise ModelError("cannot replace unknown component %r"
                             % component.name)
        self._components[component.name] = component

    def add_resource(self, resource: ResourceType) -> None:
        if resource.name in self._resources:
            raise ModelError("duplicate resource type %r" % resource.name)
        for slot in resource.slots:
            if slot.component not in self._components:
                raise ModelError(
                    "resource %r uses unknown component type %r"
                    % (resource.name, slot.component))
        self._resources[resource.name] = resource

    # -- lookup -----------------------------------------------------------

    def component(self, name: str) -> ComponentType:
        try:
            return self._components[name]
        except KeyError:
            raise ModelError("unknown component type %r" % name)

    def mechanism(self, name: str) -> AvailabilityMechanism:
        try:
            return self._mechanisms[name]
        except KeyError:
            raise ModelError("unknown mechanism %r" % name)

    def resource(self, name: str) -> ResourceType:
        try:
            return self._resources[name]
        except KeyError:
            raise ModelError("unknown resource type %r" % name)

    @property
    def components(self) -> List[ComponentType]:
        return list(self._components.values())

    @property
    def mechanisms(self) -> List[AvailabilityMechanism]:
        return list(self._mechanisms.values())

    @property
    def resources(self) -> List[ResourceType]:
        return list(self._resources.values())

    def has_resource(self, name: str) -> bool:
        return name in self._resources

    def has_mechanism(self, name: str) -> bool:
        return name in self._mechanisms

    def has_component(self, name: str) -> bool:
        return name in self._components

    # -- cross validation ---------------------------------------------

    def validate(self) -> None:
        """Check that every deferred attribute resolves to a mechanism
        that actually provides it.

        Raises :class:`ModelError` on the first inconsistency.
        """
        for component in self._components.values():
            for mode in component.failure_modes:
                mech_name = mode.mttr_mechanism
                if mech_name is not None:
                    mechanism = self._require_mechanism(
                        mech_name, "component %r failure %r mttr"
                        % (component.name, mode.name))
                    if not mechanism.provides("mttr"):
                        raise ModelError(
                            "mechanism %r does not provide mttr (needed by "
                            "component %r)" % (mech_name, component.name))
            lw_mech = component.loss_window_mechanism
            if lw_mech is not None:
                mechanism = self._require_mechanism(
                    lw_mech, "component %r loss window" % component.name)
                if not mechanism.provides("loss_window"):
                    raise ModelError(
                        "mechanism %r does not provide loss_window (needed "
                        "by component %r)" % (lw_mech, component.name))

    def _require_mechanism(self, name: str,
                           context: str) -> AvailabilityMechanism:
        if name not in self._mechanisms:
            raise ModelError("%s references unknown mechanism %r"
                             % (context, name))
        return self._mechanisms[name]

    def resource_mechanisms(self, resource_name: str) -> List[str]:
        """Mechanism names referenced by any component of a resource."""
        resource = self.resource(resource_name)
        names: List[str] = []
        for slot in resource.slots:
            for ref in self.component(slot.component).mechanism_references():
                if ref not in names:
                    names.append(ref)
        return names

    def __repr__(self) -> str:
        return ("InfrastructureModel(components=%d, mechanisms=%d, "
                "resources=%d)" % (len(self._components),
                                   len(self._mechanisms),
                                   len(self._resources)))
