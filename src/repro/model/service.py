"""Service models: tiers, resource options, sizing, failure scope.

A service is a set of tiers in series (the service is up iff every tier
is up).  Each tier lists the resource types that could support it; for
each option the service model captures the tier's parallelism model
(paper section 3.2):

* ``sizing``: whether the number of resources can change during the
  service lifetime (``dynamic``) or is fixed at start (``static``,
  e.g. a scientific code that partitions data at initialization);
* ``failure_scope``: whether one resource failing takes down just that
  resource (``resource``) or the entire tier (``tier``);
* ``nActive``: allowed active-resource counts;
* a performance model, and per-mechanism overhead models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..units import ValueRange
from .perf import OverheadModel, PerformanceModel, UnityOverhead


class Sizing(enum.Enum):
    """Can the resource count change during the service's lifetime?"""

    STATIC = "static"
    DYNAMIC = "dynamic"

    def __str__(self) -> str:
        return self.value


class FailureScope(enum.Enum):
    """Blast radius of a single resource failure within a tier."""

    RESOURCE = "resource"
    TIER = "tier"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MechanismUse:
    """A tier option's use of an availability mechanism.

    ``overhead`` is the service-specific performance impact of the
    mechanism (``mperformance``); mechanisms with no performance impact
    use :class:`~repro.model.perf.UnityOverhead`.
    """

    mechanism: str
    overhead: OverheadModel = field(default_factory=UnityOverhead)


class ResourceOption:
    """One candidate resource type for a tier, with its tier-level model."""

    def __init__(self, resource: str, sizing: Sizing,
                 failure_scope: FailureScope, n_active: ValueRange,
                 performance: PerformanceModel,
                 mechanisms: Sequence[MechanismUse] = ()):
        if not resource:
            raise ModelError("resource option must name a resource type")
        counts = n_active.values()
        if not counts:
            raise ModelError("resource option %r: empty nActive range"
                             % resource)
        for count in counts:
            if not float(count).is_integer() or count < 1:
                raise ModelError(
                    "resource option %r: nActive values must be positive "
                    "integers, got %r" % (resource, count))
        seen = set()
        for use in mechanisms:
            if use.mechanism in seen:
                raise ModelError(
                    "resource option %r: mechanism %r listed twice"
                    % (resource, use.mechanism))
            seen.add(use.mechanism)
        self.resource = resource
        self.sizing = sizing
        self.failure_scope = failure_scope
        self.n_active = n_active
        self.performance = performance
        self.mechanisms: Tuple[MechanismUse, ...] = tuple(mechanisms)
        self._active_counts: Optional[List[int]] = None
        self._min_active_cache: Dict[float, Optional[int]] = {}

    def active_counts(self) -> List[int]:
        """Allowed active-resource counts, ascending.

        The expansion is cached (the range and performance model are
        fixed at construction) because the search asks for it once per
        candidate; callers treat the list as read-only.
        """
        counts = self._active_counts
        if counts is None:
            counts = sorted(int(count) for count in self.n_active.values())
            self._active_counts = counts
        return counts

    def min_active_for(self, load: float) -> Optional[int]:
        """Smallest allowed count whose failure-free throughput meets
        ``load``; None if even the largest allowed count falls short.

        Memoized per load: the perf-curve scan re-evaluates the
        throughput expression per candidate count, and the search calls
        this with the same handful of loads thousands of times.
        """
        try:
            return self._min_active_cache[load]
        except KeyError:
            result = self.performance.min_resources(load,
                                                    self.active_counts())
            self._min_active_cache[load] = result
            return result

    def mechanism_use(self, name: str) -> MechanismUse:
        for use in self.mechanisms:
            if use.mechanism == name:
                return use
        raise ModelError("resource option %r does not use mechanism %r"
                         % (self.resource, name))

    def uses_mechanism(self, name: str) -> bool:
        return any(use.mechanism == name for use in self.mechanisms)

    def __repr__(self) -> str:
        return ("ResourceOption(%r, sizing=%s, failure_scope=%s)"
                % (self.resource, self.sizing, self.failure_scope))


class Tier:
    """One tier of a service with its candidate resource options."""

    def __init__(self, name: str, options: Sequence[ResourceOption]):
        if not name:
            raise ModelError("tier must have a name")
        if not options:
            raise ModelError("tier %r has no resource options" % name)
        seen = set()
        for option in options:
            if option.resource in seen:
                raise ModelError("tier %r: resource %r listed twice"
                                 % (name, option.resource))
            seen.add(option.resource)
        self.name = name
        self.options: Tuple[ResourceOption, ...] = tuple(options)

    def option_for(self, resource: str) -> ResourceOption:
        for option in self.options:
            if option.resource == resource:
                return option
        raise ModelError("tier %r has no option for resource %r"
                         % (self.name, resource))

    def __repr__(self) -> str:
        return "Tier(%r, options=%r)" % (
            self.name, [option.resource for option in self.options])


class ServiceModel:
    """A complete service/application description (paper Figs. 4, 5)."""

    def __init__(self, name: str, tiers: Sequence[Tier],
                 job_size: Optional[float] = None):
        if not name:
            raise ModelError("service must have a name")
        if not tiers:
            raise ModelError("service %r has no tiers" % name)
        seen = set()
        for tier in tiers:
            if tier.name in seen:
                raise ModelError("service %r: duplicate tier %r"
                                 % (name, tier.name))
            seen.add(tier.name)
        if job_size is not None and job_size <= 0:
            raise ModelError("job size must be positive")
        self.name = name
        self.tiers: Tuple[Tier, ...] = tuple(tiers)
        self.job_size = job_size
        #: parse provenance (``"tier:web"`` -> spec line number);
        #: populated by the spec parser, used by lint diagnostics.
        self.source_lines: Dict[str, int] = {}

    @property
    def is_finite_job(self) -> bool:
        """True for run-to-completion applications (paper's scientific
        example), False for indefinitely-running services."""
        return self.job_size is not None

    def tier(self, name: str) -> Tier:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise ModelError("service %r has no tier %r" % (self.name, name))

    def __repr__(self) -> str:
        return "ServiceModel(%r, tiers=%r, job_size=%r)" % (
            self.name, [tier.name for tier in self.tiers], self.job_size)
