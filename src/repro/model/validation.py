"""Cross-model validation: does a service fit an infrastructure model?

The infrastructure model validates itself (:meth:`InfrastructureModel.
validate`); this module checks the *pairing* of a service model with an
infrastructure model before any search runs, so that search failures
are always about requirements, never about dangling references.
"""

from __future__ import annotations

from typing import List

from ..errors import ModelError
from .infrastructure import InfrastructureModel
from .service import ServiceModel


def validate_pair(infrastructure: InfrastructureModel,
                  service: ServiceModel) -> None:
    """Raise :class:`ModelError` describing every inconsistency found."""
    problems = collect_problems(infrastructure, service)
    if problems:
        raise ModelError(
            "service %r is inconsistent with the infrastructure model:\n  - "
            % service.name + "\n  - ".join(problems))


def collect_problems(infrastructure: InfrastructureModel,
                     service: ServiceModel) -> List[str]:
    """Return a human-readable list of inconsistencies (empty if clean)."""
    problems: List[str] = []
    try:
        infrastructure.validate()
    except ModelError as exc:
        problems.append(str(exc))

    mechanism_names = {mech.name for mech in infrastructure.mechanisms}

    for tier in service.tiers:
        for option in tier.options:
            context = "tier %r option %r" % (tier.name, option.resource)
            if not infrastructure.has_resource(option.resource):
                problems.append("%s: unknown resource type" % context)
                continue
            resource = infrastructure.resource(option.resource)

            for use in option.mechanisms:
                if use.mechanism not in mechanism_names:
                    problems.append("%s: uses unknown mechanism %r"
                                    % (context, use.mechanism))

            # Every mechanism a component of this resource defers to
            # must exist; and if it has parameters the design search
            # must be able to configure it for this option.
            for needed in infrastructure.resource_mechanisms(
                    option.resource):
                if needed not in mechanism_names:
                    problems.append(
                        "%s: component defers to unknown mechanism %r"
                        % (context, needed))

            problems.extend(_check_instance_limits(
                infrastructure, resource, option, context))
    return problems


def _check_instance_limits(infrastructure, resource, option,
                           context) -> List[str]:
    """Flag nActive ranges that can never be satisfied because a
    component type caps its instance count below the minimum."""
    problems = []
    min_needed = min(option.active_counts())
    for slot in resource.slots:
        component = infrastructure.component(slot.component)
        if component.max_instances is not None \
                and component.max_instances < min_needed:
            problems.append(
                "%s: component %r allows at most %d instances but the "
                "tier needs at least %d active resources"
                % (context, component.name, component.max_instances,
                   min_needed))
    return problems
