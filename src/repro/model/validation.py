"""Cross-model validation: does a service fit an infrastructure model?

The infrastructure model validates itself (:meth:`InfrastructureModel.
validate`); this module checks the *pairing* of a service model with an
infrastructure model before any search runs, so that search failures
are always about requirements, never about dangling references.

Findings are built as :class:`~repro.lint.diagnostics.Diagnostic`
objects carrying stable codes and source spans; the string list of
:func:`collect_problems` is derived from them (via
:meth:`~repro.lint.diagnostics.Diagnostic.legacy_text`) and is
unchanged.  The full diagnostic objects feed ``repro lint`` through
:func:`repro.lint.lint_pair`, which layers advisory checks on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import ModelError
from .infrastructure import InfrastructureModel
from .service import ServiceModel

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..lint.diagnostics import Diagnostic


def validate_pair(infrastructure: InfrastructureModel,
                  service: ServiceModel) -> None:
    """Raise :class:`ModelError` describing every inconsistency found."""
    problems = collect_problems(infrastructure, service)
    if problems:
        raise ModelError(
            "service %r is inconsistent with the infrastructure model:\n  - "
            % service.name + "\n  - ".join(problems))


def collect_problems(infrastructure: InfrastructureModel,
                     service: ServiceModel) -> List[str]:
    """Return a human-readable list of inconsistencies (empty if clean)."""
    return [diagnostic.legacy_text()
            for diagnostic in collect_diagnostics(infrastructure, service)]


def collect_diagnostics(infrastructure: InfrastructureModel,
                        service: ServiceModel,
                        include_infrastructure: bool = True
                        ) -> List["Diagnostic"]:
    """The gating inconsistencies as coded diagnostics.

    ``include_infrastructure=False`` skips the first-error summary from
    :meth:`InfrastructureModel.validate` (used by the lint pass, which
    reports every infrastructure inconsistency individually instead).
    """
    # Imported lazily: repro.lint imports this module for the gating
    # checks, so a module-level import would be circular.
    from ..lint.diagnostics import Diagnostic

    diagnostics: List[Diagnostic] = []
    if include_infrastructure:
        try:
            infrastructure.validate()
        except ModelError as exc:
            code = ("AVD203" if "unknown mechanism" in str(exc)
                    else "AVD204")
            diagnostics.append(Diagnostic.new(code, str(exc)))

    mechanism_names = {mech.name for mech in infrastructure.mechanisms}

    for tier in service.tiers:
        for option in tier.options:
            context = "tier %r option %r" % (tier.name, option.resource)
            span = _option_span(service, tier.name, option.resource)
            if not infrastructure.has_resource(option.resource):
                diagnostics.append(Diagnostic.new(
                    "AVD201", "unknown resource type",
                    span=span, context=context))
                continue
            resource = infrastructure.resource(option.resource)

            for use in option.mechanisms:
                if use.mechanism not in mechanism_names:
                    diagnostics.append(Diagnostic.new(
                        "AVD202", "uses unknown mechanism %r"
                        % use.mechanism, span=span, context=context))

            # Every mechanism a component of this resource defers to
            # must exist; and if it has parameters the design search
            # must be able to configure it for this option.
            for needed in infrastructure.resource_mechanisms(
                    option.resource):
                if needed not in mechanism_names:
                    diagnostics.append(Diagnostic.new(
                        "AVD203",
                        "component defers to unknown mechanism %r"
                        % needed, span=span, context=context))

            diagnostics.extend(_check_instance_limits(
                infrastructure, resource, option, context, span))
    return diagnostics


def _option_span(service, tier_name, resource_name):
    """Span for an option from the service's parse provenance, if any."""
    from ..lint.diagnostics import Span

    lines = getattr(service, "source_lines", None) or {}
    line = lines.get("option:%s/%s" % (tier_name, resource_name))
    if line is None:
        line = lines.get("tier:%s" % tier_name)
    return Span(line=line) if line is not None else None


def _check_instance_limits(infrastructure, resource, option, context,
                           span) -> List["Diagnostic"]:
    """Flag nActive ranges that can never be satisfied because a
    component type caps its instance count below the minimum."""
    from ..lint.diagnostics import Diagnostic

    diagnostics = []
    min_needed = min(option.active_counts())
    for slot in resource.slots:
        component = infrastructure.component(slot.component)
        if component.max_instances is not None \
                and component.max_instances < min_needed:
            diagnostics.append(Diagnostic.new(
                "AVD205",
                "component %r allows at most %d instances but the "
                "tier needs at least %d active resources"
                % (component.name, component.max_instances, min_needed),
                span=span, context=context))
    return diagnostics
