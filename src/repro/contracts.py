"""JSON Schemas for the CLI's machine-readable outputs.

Every JSON document the ``repro`` command emits is a **contract**:
downstream tooling (CI gates, dashboards, the utility-computing
controller) parses it, so its shape must not drift silently.  This
module pins each shape as a JSON Schema (draft-07 subset), and the
contract tests (``tests/core/test_cli_contracts.py``) validate live
CLI output against them.

Schemas are plain dicts so they impose no dependency at runtime;
validation itself uses ``jsonschema`` where available (the contract
tests skip gracefully without it).
"""

from __future__ import annotations

from typing import Any, Dict

#: ``repro design --json`` -- the evaluation summary
#: (:func:`repro.core.serialize.evaluation_to_dict`).
DESIGN_EVALUATION_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["design", "annual_cost", "cost_breakdown",
                 "downtime_minutes", "tier_downtime_minutes"],
    "properties": {
        "design": {
            "type": "object",
            "required": ["tiers"],
            "properties": {
                "tiers": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tier", "resource", "n_active",
                                     "n_spare", "mechanisms"],
                        "properties": {
                            "tier": {"type": "string"},
                            "resource": {"type": "string"},
                            "n_active": {"type": "integer",
                                         "minimum": 1},
                            "n_spare": {"type": "integer",
                                        "minimum": 0},
                            "spare_active_prefix": {
                                "type": "array",
                                "items": {"type": "integer"}},
                            "mechanisms": {
                                "type": "object",
                                "additionalProperties": {
                                    "type": "object"}},
                        },
                    },
                },
            },
        },
        "annual_cost": {"type": "number", "minimum": 0},
        "cost_breakdown": {
            "type": "object",
            "required": ["active_components", "spare_components",
                         "mechanisms"],
            "properties": {
                "active_components": {"type": "number"},
                "spare_components": {"type": "number"},
                "mechanisms": {"type": "number"},
            },
        },
        "downtime_minutes": {"type": "number", "minimum": 0},
        "tier_downtime_minutes": {
            "type": "object",
            "additionalProperties": {"type": "number"}},
        "engines": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["engine", "attempts"],
                "properties": {
                    "engine": {"type": "string"},
                    "attempts": {"type": "integer", "minimum": 1},
                    "fallback_from": {"type": "array",
                                      "items": {"type": "string"}},
                    "cause": {"type": "string"},
                },
            },
        },
        "job_time": {
            "type": "object",
            "required": ["expected_hours", "useful_fraction",
                         "overhead_factor", "uptime_fraction"],
            "properties": {
                "expected_hours": {"type": ["number", "null"]},
                "useful_fraction": {"type": "number"},
                "overhead_factor": {"type": "number"},
                "uptime_fraction": {"type": "number"},
            },
        },
    },
}

#: ``repro lint --format json`` -- a :class:`repro.lint.LintReport`.
LINT_REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["diagnostics", "summary"],
    "properties": {
        "diagnostics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "message", "severity"],
                "properties": {
                    "code": {"type": "string",
                             "pattern": "^AVD[0-9]{3}$"},
                    "message": {"type": "string"},
                    "severity": {"enum": ["error", "warning", "info"]},
                    "context": {"type": "string"},
                    "span": {
                        "type": "object",
                        "properties": {
                            "line": {"type": "integer"},
                            "start": {"type": "integer"},
                            "end": {"type": "integer"},
                            "source": {"type": "string"},
                        },
                    },
                },
            },
        },
        "summary": {
            "type": "object",
            "required": ["errors", "warnings", "infos"],
            "properties": {
                "errors": {"type": "integer", "minimum": 0},
                "warnings": {"type": "integer", "minimum": 0},
                "infos": {"type": "integer", "minimum": 0},
            },
        },
    },
}

#: ``repro lint --space --format json`` -- the lint report plus a
#: ``space`` member (:meth:`repro.lint.SpaceReport.to_dict`).  Exit
#: codes match plain ``lint``: 0 clean, 1 on errors (or warnings under
#: ``--strict``) -- an empty space (AVD501) or contradictory fixed
#: settings (AVD507) therefore fail the gate.
LINT_SPACE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["diagnostics", "summary", "space"],
    "properties": {
        "diagnostics": LINT_REPORT_SCHEMA["properties"]["diagnostics"],
        "summary": LINT_REPORT_SCHEMA["properties"]["summary"],
        "space": {
            "type": "object",
            "required": ["load", "max_downtime_minutes", "structures",
                         "dominance_covered", "tiers"],
            "properties": {
                "load": {"type": ["number", "null"]},
                "max_downtime_minutes": {"type": ["number", "null"]},
                "structures": {"type": "integer", "minimum": 0},
                "dominance_covered": {"type": "integer", "minimum": 0},
                "tiers": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["tier", "structures",
                                     "equivalence_classes",
                                     "dominance_covered", "options"],
                        "properties": {
                            "tier": {"type": "string"},
                            "structures": {"type": "integer",
                                           "minimum": 0},
                            "equivalence_classes": {
                                "type": ["integer", "null"]},
                            "dominance_covered": {"type": "integer",
                                                  "minimum": 0},
                            "options": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["resource", "n_min",
                                                 "structures", "combos",
                                                 "equivalence_classes",
                                                 "dominance_covered",
                                                 "certificate_groups"],
                                    "properties": {
                                        "resource": {"type": "string"},
                                        "n_min": {
                                            "type": ["integer", "null"]},
                                        "structures": {
                                            "type": "integer",
                                            "minimum": 0},
                                        "combos": {"type": "integer",
                                                   "minimum": 0},
                                        "equivalence_classes": {
                                            "type": ["integer", "null"]},
                                        "dominance_covered": {
                                            "type": "integer",
                                            "minimum": 0},
                                        "certificate_groups": {
                                            "type": "integer",
                                            "minimum": 0},
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

#: ``repro design --metrics-out`` -- a
#: :meth:`repro.obs.MetricsRegistry.snapshot`.
METRICS_SNAPSHOT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["counters", "gauges", "histograms"],
    "properties": {
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0}},
        "gauges": {
            "type": "object",
            "additionalProperties": {"type": "number"}},
        "histograms": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["count", "sum_seconds", "buckets"],
                "properties": {
                    "count": {"type": "integer", "minimum": 0},
                    "sum_seconds": {"type": "number", "minimum": 0},
                    "min_seconds": {"type": ["number", "null"]},
                    "max_seconds": {"type": ["number", "null"]},
                    "buckets": {
                        "type": "object",
                        "additionalProperties": {"type": "integer"}},
                },
            },
        },
    },
}

#: ``repro design --trace`` / ``repro profile --trace`` -- a span
#: forest (:meth:`repro.obs.Tracer.to_json`).  Recursive via ``$ref``.
TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["spans"],
    "properties": {
        "spans": {"type": "array",
                  "items": {"$ref": "#/definitions/span"}},
    },
    "definitions": {
        "span": {
            "type": "object",
            "required": ["name", "attributes", "start_ms",
                         "duration_ms", "children"],
            "properties": {
                "name": {"type": "string"},
                "attributes": {
                    "type": "object",
                    "additionalProperties": {
                        "type": ["string", "number", "boolean",
                                 "null"]}},
                "start_ms": {"type": "number", "minimum": 0},
                "duration_ms": {"type": "number", "minimum": 0},
                "children": {"type": "array",
                             "items": {"$ref": "#/definitions/span"}},
            },
        },
    },
}

#: ``BENCH_*.json`` benchmark artifacts
#: (:func:`repro.obs.bench_record` envelope).
BENCH_RECORD_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["bench", "format", "results"],
    "properties": {
        "bench": {"type": "string", "minLength": 1},
        "format": {"type": "integer", "minimum": 1},
        "results": {"type": "object"},
        "meta": {"type": "object"},
    },
}

#: ``GET /v1/jobs/<id>`` -- a job view
#: (:meth:`repro.serve.jobstore.Job.to_dict`).  The ``result`` of a
#: completed job embeds the design-evaluation contract above.
SERVE_JOB_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["id", "state", "attempts"],
    "properties": {
        "id": {"type": "string", "pattern": "^job-[0-9]{6,}$"},
        "state": {"enum": ["queued", "running", "completed", "failed",
                           "cancelled"]},
        "attempts": {"type": "integer", "minimum": 0},
        "result": {
            "type": "object",
            "required": ["evaluation", "annual_cost",
                         "downtime_minutes", "degraded"],
            "properties": {
                "evaluation": DESIGN_EVALUATION_SCHEMA,
                "annual_cost": {"type": "number", "minimum": 0},
                "downtime_minutes": {"type": "number", "minimum": 0},
                "degraded": {"type": "boolean"},
                "degradation": {"type": "array",
                                "items": {"type": "string"}},
                "cache": {"type": "object"},
            },
        },
        "error": {
            "type": "object",
            "required": ["kind", "message"],
            "properties": {
                "kind": {"enum": ["infeasible", "deadline", "error",
                                  "internal"]},
                "type": {"type": "string"},
                "message": {"type": "string"},
            },
        },
        "cancel_reason": {"type": "string"},
        "payload": {"type": "object"},
    },
}

#: ``GET /healthz`` / ``GET /readyz`` -- the daemon health view
#: (:meth:`repro.serve.DesignService.health`; readyz adds ``ready``).
SERVE_HEALTH_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["status", "accepting", "queue_depth", "queue_limit",
                 "workers", "running", "jobs", "quarantined"],
    "properties": {
        "status": {"enum": ["ok", "draining"]},
        "accepting": {"type": "boolean"},
        "queue_depth": {"type": "integer", "minimum": 0},
        "queue_limit": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 1},
        "running": {"type": "integer", "minimum": 0},
        "jobs": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0}},
        "quarantined": {"type": "integer", "minimum": 0},
        "breakers": {
            "type": "object",
            "additionalProperties": {
                "enum": ["closed", "open", "half-open"]}},
        "pool": {"type": ["object", "null"]},
        "service_estimate_seconds": {"type": "number", "minimum": 0},
        "cache": {"type": ["object", "null"]},
        "watch": {"type": ["object", "null"]},
        "map": {"type": ["object", "null"]},
        "ready": {"type": "boolean"},
    },
}

#: A 429 shed response
#: (:meth:`repro.serve.admission.ShedDecision.to_dict`).
SERVE_SHED_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["shed", "reason", "retry_after", "queue_depth"],
    "properties": {
        "shed": {"const": True},
        "reason": {"enum": ["queue-full", "over-budget", "draining"]},
        "retry_after": {"type": "integer", "minimum": 1},
        "queue_depth": {"type": "integer", "minimum": 0},
        "estimated_wait_seconds": {"type": "number", "minimum": 0},
    },
}

#: ``repro cache stats|verify|purge`` -- the store status document
#: (:func:`repro.cli.cmd_cache`).  ``verify`` adds the integrity-scan
#: tally; ``purge`` adds the removed-entry count.
CACHE_STATUS_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["action", "store"],
    "properties": {
        "action": {"enum": ["stats", "verify", "purge"]},
        "store": {
            "type": "object",
            "required": ["root", "format", "canonical_version",
                         "enabled", "store_quarantined", "entries",
                         "size_bytes", "quarantined_entries",
                         "counters"],
            "properties": {
                "root": {"type": "string", "minLength": 1},
                "format": {"type": "integer", "minimum": 1},
                "canonical_version": {"type": "integer", "minimum": 1},
                "enabled": {"type": "boolean"},
                "store_quarantined": {"type": "boolean"},
                "entries": {"type": "integer", "minimum": 0},
                "size_bytes": {"type": "integer", "minimum": 0},
                "quarantined_entries": {"type": "integer", "minimum": 0},
                "memory_entries": {"type": "integer", "minimum": 0},
                "counters": {
                    "type": "object",
                    "additionalProperties": {"type": "integer",
                                             "minimum": 0}},
            },
        },
        "verify": {
            "type": "object",
            "required": ["checked", "ok", "corrupt", "stale"],
            "additionalProperties": {"type": "integer", "minimum": 0},
        },
        "removed": {"type": "integer", "minimum": 0},
    },
}

#: ``repro watch --json`` / the ``watch`` member of ``/healthz`` --
#: the watcher status document (:meth:`repro.watch.Watcher.status`).
WATCH_STATUS_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["tier", "epoch", "polls", "resumed", "spec",
                 "incumbent", "reconfigurations", "infeasible_epochs",
                 "warm_starts", "cold_searches", "ingest",
                 "quarantined", "journal"],
    "properties": {
        "tier": {"type": "string", "minLength": 1},
        "epoch": {"type": "integer", "minimum": 0},
        "polls": {"type": "integer", "minimum": 0},
        "resumed": {"type": "boolean"},
        "spec": {
            "type": "object",
            "required": ["tier", "load", "max_downtime_minutes",
                         "mtbf_hours", "mttr_hours"],
            "properties": {
                "tier": {"type": "string", "minLength": 1},
                "load": {"type": "number", "exclusiveMinimum": 0},
                "max_downtime_minutes": {"type": "number",
                                         "exclusiveMinimum": 0},
                "mtbf_hours": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "number", "exclusiveMinimum": 0}},
                "mttr_hours": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "number", "exclusiveMinimum": 0}},
            },
        },
        "incumbent": {
            "type": ["object", "null"],
            "required": ["resource", "n_active", "n_spare",
                         "annual_cost"],
            "properties": {
                "resource": {"type": "string", "minLength": 1},
                "n_active": {"type": "integer", "minimum": 1},
                "n_spare": {"type": "integer", "minimum": 0},
                "annual_cost": {"type": "number", "minimum": 0},
            },
        },
        "reconfigurations": {"type": "integer", "minimum": 0},
        "infeasible_epochs": {"type": "integer", "minimum": 0},
        "warm_starts": {"type": "integer", "minimum": 0},
        "cold_searches": {"type": "integer", "minimum": 0},
        "ingest": {
            "type": "object",
            "required": ["accepted", "duplicates", "conflicts",
                         "sources"],
            "properties": {
                "accepted": {"type": "integer", "minimum": 0},
                "duplicates": {"type": "integer", "minimum": 0},
                "conflicts": {"type": "integer", "minimum": 0},
                "sources": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "required": ["records", "max_seq", "missing"],
                        "properties": {
                            "records": {"type": "integer",
                                        "minimum": 0},
                            "max_seq": {"type": "integer",
                                        "minimum": -1},
                            "missing": {"type": "integer",
                                        "minimum": 0},
                        },
                    },
                },
            },
        },
        "quarantined": {"type": "integer", "minimum": 0},
        "drift": {
            "type": ["object", "null"],
            "required": ["tier", "drifted", "streak", "cooldown",
                         "reasons"],
            "properties": {
                "tier": {"type": "string"},
                "drifted": {"type": "boolean"},
                "streak": {"type": "integer", "minimum": 0},
                "cooldown": {"type": "integer", "minimum": 0},
                "reasons": {"type": "array",
                            "items": {"type": "string"}},
                "mtbf_hours": {"type": "object"},
                "mttr_hours": {"type": "object"},
                "load": {"type": ["number", "null"]},
            },
        },
        "journal": {
            "type": "object",
            "required": ["enabled", "degraded", "appends"],
            "properties": {
                "enabled": {"type": "boolean"},
                "degraded": {"type": "boolean"},
                "appends": {"type": "integer", "minimum": 0},
            },
        },
        "search": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0}},
        "degradations": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0}},
    },
}

#: ``repro map status --json`` / the ``map`` member of ``/healthz`` --
#: the requirement-space map build/serve status document
#: (:meth:`repro.grid.MapService.status` and
#: :meth:`repro.grid.GridBuilder.status`).
MAP_STATUS_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["tier", "state", "coverage", "loads_total",
                 "loads_built", "shards", "journal"],
    "properties": {
        "tier": {"type": "string", "minLength": 1},
        "state": {"enum": ["missing", "building", "partial",
                           "complete"]},
        "coverage": {"type": "number", "minimum": 0, "maximum": 1},
        "loads_total": {"type": "integer", "minimum": 0},
        "loads_built": {"type": "integer", "minimum": 0},
        "shards": {
            "type": "object",
            "required": ["total", "done", "pending"],
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "done": {"type": "integer", "minimum": 0},
                "pending": {"type": "integer", "minimum": 0},
                "reused": {"type": "integer", "minimum": 0},
                "faults": {"type": "integer", "minimum": 0},
                "isolated": {"type": "integer", "minimum": 0},
                "reclaimed_leases": {"type": "integer", "minimum": 0},
            },
        },
        "convicted_cells": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["load", "reason"],
                "properties": {
                    "load": {"type": "number"},
                    "reason": {"type": "string"},
                },
            },
        },
        "journal": {
            "type": "object",
            "required": ["enabled", "degraded", "appends"],
            "properties": {
                "enabled": {"type": "boolean"},
                "degraded": {"type": "boolean"},
                "appends": {"type": "integer", "minimum": 0},
            },
        },
        "resumed": {"type": "boolean"},
        "map_path": {"type": ["string", "null"]},
        "map_age_seconds": {"type": ["number", "null"]},
        "format_version": {"type": "integer", "minimum": 1},
        "lookups": {"type": "integer", "minimum": 0},
        "degradations": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0}},
    },
}

CLI_SCHEMAS: Dict[str, Dict[str, Any]] = {
    "design-json": DESIGN_EVALUATION_SCHEMA,
    "lint-json": LINT_REPORT_SCHEMA,
    "lint-space-json": LINT_SPACE_SCHEMA,
    "metrics": METRICS_SNAPSHOT_SCHEMA,
    "trace": TRACE_SCHEMA,
    "bench": BENCH_RECORD_SCHEMA,
    "serve-job": SERVE_JOB_SCHEMA,
    "serve-health": SERVE_HEALTH_SCHEMA,
    "serve-shed": SERVE_SHED_SCHEMA,
    "cache-status": CACHE_STATUS_SCHEMA,
    "watch-status": WATCH_STATUS_SCHEMA,
    "map-status": MAP_STATUS_SCHEMA,
}

__all__ = ["DESIGN_EVALUATION_SCHEMA", "LINT_REPORT_SCHEMA",
           "LINT_SPACE_SCHEMA",
           "METRICS_SNAPSHOT_SCHEMA", "TRACE_SCHEMA",
           "BENCH_RECORD_SCHEMA", "SERVE_JOB_SCHEMA",
           "SERVE_HEALTH_SCHEMA", "SERVE_SHED_SCHEMA",
           "CACHE_STATUS_SCHEMA", "WATCH_STATUS_SCHEMA",
           "MAP_STATUS_SCHEMA", "CLI_SCHEMAS"]
