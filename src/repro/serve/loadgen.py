"""Deterministic load & chaos client for the design service.

The soak tests (and the CI smoke job) need a client whose behavior is
exactly reproducible from a seed: which requests arrive when, which
connections go slow, which get killed mid-request, and when the queue
storm hits.  All randomness is drawn up front from one
``random.Random(seed)``, so two runs with the same plan against the
same daemon issue byte-identical request schedules.

Client-side faults:

* **slow client** -- the request body is sent in two halves with a
  pause between them, exercising the server's per-socket timeout;
* **mid-request kill** -- the socket is closed after half the body,
  which must never leave a half-admitted job behind;
* **queue storm** -- from ``storm_at``, ``storm_size`` requests are
  fired back-to-back with no arrival gap, forcing load-shedding.

Usable as a library (:func:`run`) and as a CLI
(``python -m repro.serve.loadgen --endpoint-file ...``).
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional
from urllib.parse import urlsplit

from ..errors import ServeError


@dataclass(frozen=True)
class ClientFaultPlan:
    """Seeded client-side chaos: rates in [0, 1] per request."""

    slow_rate: float = 0.0
    slow_seconds: float = 0.5
    kill_rate: float = 0.0

    def __post_init__(self) -> None:
        for rate in (self.slow_rate, self.kill_rate):
            if not 0.0 <= rate <= 1.0:
                raise ServeError("fault rates must be in [0, 1]")
        if self.slow_seconds < 0:
            raise ServeError("slow_seconds cannot be negative")


@dataclass(frozen=True)
class LoadPlan:
    """What to send: arrivals, payload knobs, and the storm."""

    requests: int = 10
    interval: float = 0.05
    seed: int = 1
    storm_at: Optional[int] = None
    storm_size: int = 0
    deadline_seconds: Optional[float] = None
    delay_seconds: float = 0.0
    wait_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServeError("requests must be >= 1")
        if self.interval < 0:
            raise ServeError("interval cannot be negative")
        if self.storm_size < 0:
            raise ServeError("storm_size cannot be negative")


class LoadReport:
    """What happened, as plain counters plus per-job outcomes."""

    def __init__(self) -> None:
        self.sent = 0
        self.accepted: List[str] = []
        self.shed = 0
        self.shed_reasons: Dict[str, int] = {}
        self.killed = 0
        self.slowed = 0
        self.client_errors = 0
        self.outcomes: Dict[str, str] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "accepted": len(self.accepted),
            "accepted_ids": list(self.accepted),
            "shed": self.shed,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "killed": self.killed,
            "slowed": self.slowed,
            "client_errors": self.client_errors,
            "outcomes": dict(sorted(self.outcomes.items())),
        }


# ----------------------------------------------------------------------
# The built-in tiny model (mirrors the test suite's `tiny` fixtures):
# fast enough that a soak run completes hundreds of designs.
# ----------------------------------------------------------------------

def tiny_specs() -> "tuple[str, str]":
    """(infrastructure, service) spec texts for a minimal fast model."""
    from ..model import (AvailabilityMechanism, ComponentSlot,
                         ComponentType, CostSchedule,
                         ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel,
                         MechanismParameter, MechanismRef, ResourceOption,
                         ResourceType, ServiceModel, Sizing, TableEffect,
                         Tier)
    from ..spec import write_infrastructure, write_service
    from ..units import ArithmeticRange, Duration, EnumeratedRange
    contract = AvailabilityMechanism(
        "contract",
        parameters=(MechanismParameter(
            "level", EnumeratedRange(["basic", "fast"])),),
        effects={
            "cost": TableEffect("level",
                                (("basic", 100.0), ("fast", 400.0))),
            "mttr": TableEffect("level",
                                (("basic", Duration.hours(24)),
                                 ("fast", Duration.hours(4)))),
        })
    box = ComponentType(
        "box",
        cost=CostSchedule(inactive=500.0, active=1000.0),
        failure_modes=(
            FailureMode("hard", Duration.days(365),
                        MechanismRef("contract"),
                        detect_time=Duration.minutes(1)),
            FailureMode("glitch", Duration.days(30), Duration.ZERO),
        ))
    os_type = ComponentType(
        "os",
        cost=CostSchedule.flat(0.0),
        failure_modes=(
            FailureMode("crash", Duration.days(60), Duration.ZERO),))
    resource = ResourceType(
        "node",
        slots=(ComponentSlot("box", None, Duration.minutes(1)),
               ComponentSlot("os", "box", Duration.minutes(2))),
        reconfig_time=Duration.seconds(30))
    infrastructure = InfrastructureModel(
        components=[box, os_type], mechanisms=[contract],
        resources=[resource])
    option = ResourceOption(
        "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
        ArithmeticRange(1, 100, 1),
        ExpressionPerformance("100*n"))
    service = ServiceModel("svc", [Tier("web", [option])])
    return write_infrastructure(infrastructure), write_service(service)


def default_payload(plan: LoadPlan) -> Dict[str, Any]:
    infrastructure, service = tiny_specs()
    payload: Dict[str, Any] = {
        "infrastructure": infrastructure,
        "service": service,
        "requirements": {
            "kind": "service",
            "throughput": 150.0,
            "max_annual_downtime_minutes": 1000.0,
        },
    }
    if plan.deadline_seconds is not None:
        payload["deadline_seconds"] = plan.deadline_seconds
    if plan.delay_seconds > 0:
        payload["test_fault"] = {"delay_seconds": plan.delay_seconds}
    return payload


# ----------------------------------------------------------------------
# The client
# ----------------------------------------------------------------------

def _schedule(plan: LoadPlan, faults: ClientFaultPlan) \
        -> List[Dict[str, Any]]:
    """Precompute every per-request decision from the seed."""
    rng = random.Random(plan.seed)
    decisions = []
    for index in range(plan.requests):
        in_storm = (plan.storm_at is not None
                    and plan.storm_at <= index
                    < plan.storm_at + plan.storm_size)
        decisions.append({
            "index": index,
            "gap": 0.0 if in_storm else plan.interval,
            "slow": rng.random() < faults.slow_rate,
            "kill": rng.random() < faults.kill_rate,
        })
    return decisions


def _send(host: str, port: int, body: bytes, decision: Dict[str, Any],
          faults: ClientFaultPlan, timeout: float,
          report: LoadReport) -> None:
    connection = http.client.HTTPConnection(host, port,
                                            timeout=timeout)
    try:
        connection.putrequest("POST", "/v1/jobs")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", str(len(body)))
        connection.endheaders()
        half = len(body) // 2
        if decision["kill"]:
            # Mid-request abort: half a body, then a dead socket.
            connection.send(body[:half])
            report.killed += 1
            return
        if decision["slow"]:
            connection.send(body[:half])
            report.slowed += 1
            time.sleep(faults.slow_seconds)
            connection.send(body[half:])
        else:
            connection.send(body)
        response = connection.getresponse()
        raw = response.read()
        if response.status == 202:
            report.accepted.append(json.loads(raw)["id"])
        elif response.status == 429:
            report.shed += 1
            reason = json.loads(raw).get("reason", "unknown")
            report.shed_reasons[reason] = \
                report.shed_reasons.get(reason, 0) + 1
        else:
            report.client_errors += 1
    except (OSError, http.client.HTTPException, ValueError, KeyError):
        report.client_errors += 1
    finally:
        connection.close()


def _poll(host: str, port: int, report: LoadReport,
          budget: float, timeout: float) -> None:
    """Poll accepted jobs until terminal (or the budget runs out)."""
    deadline = time.monotonic() + budget
    pending = list(report.accepted)
    while pending and time.monotonic() < deadline:
        still = []
        for job_id in pending:
            left = deadline - time.monotonic()
            if left <= 0:
                still.extend(pending[pending.index(job_id):])
                break
            wait = max(0.1, min(left, 5.0))
            try:
                connection = http.client.HTTPConnection(
                    host, port, timeout=wait + timeout)
                connection.request(
                    "GET", "/v1/jobs/%s?wait=%.1f" % (job_id, wait))
                response = connection.getresponse()
                job = json.loads(response.read())
                connection.close()
            except (OSError, http.client.HTTPException, ValueError):
                still.append(job_id)
                continue
            state = job.get("state")
            if state in ("completed", "failed", "cancelled"):
                report.outcomes[job_id] = state
            else:
                still.append(job_id)
        pending = still


def run(base_url: str, plan: LoadPlan,
        faults: Optional[ClientFaultPlan] = None,
        timeout: float = 10.0) -> LoadReport:
    """Execute ``plan`` against the daemon at ``base_url``."""
    faults = faults or ClientFaultPlan()
    parts = urlsplit(base_url)
    host, port = parts.hostname, parts.port
    if host is None or port is None:
        raise ServeError("base_url must include host and port, got %r"
                         % base_url)
    body = json.dumps(default_payload(plan)).encode("utf-8")
    report = LoadReport()
    for decision in _schedule(plan, faults):
        if decision["gap"] > 0 and decision["index"] > 0:
            time.sleep(decision["gap"])
        report.sent += 1
        _send(host, port, body, decision, faults, timeout, report)
    if plan.wait_seconds > 0 and report.accepted:
        _poll(host, port, report, plan.wait_seconds, timeout)
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _resolve_url(args: argparse.Namespace) -> str:
    if args.url:
        return args.url
    if args.endpoint_file:
        with open(args.endpoint_file, encoding="utf-8") as handle:
            return json.load(handle)["url"]
    raise ServeError("provide --url or --endpoint-file")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-loadgen",
        description="Seeded load/chaos client for `repro serve`.")
    parser.add_argument("--url", help="daemon base URL")
    parser.add_argument("--endpoint-file",
                        help="endpoint.json written by the daemon")
    parser.add_argument("--requests", type=int, default=10)
    parser.add_argument("--interval", type=float, default=0.05,
                        help="seconds between arrivals")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--storm-at", type=int, default=None,
                        help="request index where the storm starts")
    parser.add_argument("--storm-size", type=int, default=0)
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-job deadline_seconds")
    parser.add_argument("--delay", type=float, default=0.0,
                        help="per-job test_fault delay (needs "
                             "--allow-test-faults on the daemon)")
    parser.add_argument("--slow-rate", type=float, default=0.0)
    parser.add_argument("--slow-seconds", type=float, default=0.5)
    parser.add_argument("--kill-rate", type=float, default=0.0)
    parser.add_argument("--wait", type=float, default=0.0,
                        help="seconds to poll accepted jobs for "
                             "terminal states")
    args = parser.parse_args(argv)
    try:
        url = _resolve_url(args)
        plan = LoadPlan(requests=args.requests, interval=args.interval,
                        seed=args.seed, storm_at=args.storm_at,
                        storm_size=args.storm_size,
                        deadline_seconds=args.deadline,
                        delay_seconds=args.delay,
                        wait_seconds=args.wait)
        faults = ClientFaultPlan(slow_rate=args.slow_rate,
                                 slow_seconds=args.slow_seconds,
                                 kill_rate=args.kill_rate)
        report = run(url, plan, faults)
    except (ServeError, OSError, ValueError) as exc:
        print("loadgen: %s" % exc, file=sys.stderr)
        return 1
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())


__all__ = ["ClientFaultPlan", "LoadPlan", "LoadReport", "run",
           "tiny_specs", "default_payload", "main"]
