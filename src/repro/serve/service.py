"""The design service: workers, recovery, deadlines, and drain.

:class:`DesignService` is the daemon's engine room, independent of
HTTP: it owns the job store (journal), the admission queue, a pool of
worker threads, one shared poison quarantine, and its own metrics
registry.  Each accepted job runs a full :class:`repro.core.Aved`
design with serve-specific wiring:

* a **per-job checkpoint** (``checkpoints/<id>.json``) so a killed or
  drained daemon resumes the search instead of restarting it;
* a **per-job resilient engine** whose
  :meth:`~repro.resilience.FallbackPolicy.with_budget` deadline is the
  request's remaining time, so the evaluation runtime itself enforces
  the request deadline;
* a **cancel check** threaded into the supervised evaluation runtime,
  so deadline expiry, client cancellation, and drain all stop the
  search at the next candidate boundary.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import AvedError, InfeasibleError, ServeError
from ..model import (JobRequirements, ServiceRequirements)
from ..obs.metrics import MetricsRegistry
from ..parallel import PoisonQuarantine, make_runtime
from ..resilience import FallbackEngine, SearchCheckpoint
from ..resilience.policy import DEFAULT_CHAIN, FallbackPolicy
from ..units import Duration
from .admission import AdmissionController, ShedDecision
from .config import ServeConfig
from .deadline import (REASON_CLIENT, REASON_DEADLINE, REASON_DRAIN,
                       CancelToken, JobCancelled, make_cancel_check,
                       remaining_budget)
from .jobstore import Job, JobStore


def parse_requirements(data: Any):
    """Requirements from a job payload dict (serve's wire format)."""
    if not isinstance(data, dict):
        raise ServeError("requirements must be an object")
    kind = data.get("kind", "service")
    try:
        if kind == "service":
            return ServiceRequirements(
                float(data["throughput"]),
                Duration.minutes(
                    float(data["max_annual_downtime_minutes"])))
        if kind == "job":
            return JobRequirements(
                Duration.minutes(float(data["max_execution_minutes"])))
    except KeyError as exc:
        raise ServeError("requirements missing field %s" % exc) from exc
    except (TypeError, ValueError) as exc:
        raise ServeError("bad requirements value: %s" % exc) from exc
    except AvedError as exc:
        raise ServeError("bad requirements: %s" % exc) from exc
    raise ServeError("requirements kind must be 'service' or 'job', "
                     "got %r" % kind)


class DesignService:
    """Job execution behind the HTTP front end."""

    def __init__(self, config: ServeConfig,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.clock = clock
        os.makedirs(config.data_dir, exist_ok=True)
        os.makedirs(config.checkpoint_dir, exist_ok=True)
        self.metrics = MetricsRegistry()
        self.store = JobStore(config.journal_path, fsync=config.fsync)
        self.admission = AdmissionController(
            config.queue_limit, config.wait_budget,
            config.initial_service_estimate, workers=config.workers)
        #: One quarantine across all jobs: a candidate that crashed
        #: workers in job A stays quarantined for job B.
        self.quarantine = PoisonQuarantine()
        #: One shared tier-evaluation store across all jobs and
        #: workers (thread-safe); repeat requirements reuse solves
        #: across jobs and daemon restarts.
        self.cache_store = None
        if config.cache_dir:
            from ..cache import TierEvaluationStore
            self.cache_store = TierEvaluationStore(config.cache_dir)
            if config.cache_verify \
                    and self.cache_store.verify_sample <= 0:
                self.cache_store.verify_sample = 8
        #: Precomputed requirement-space map (repro.grid) served at
        #: GET /v1/map; the file may not exist yet at boot.
        self.map_service = None
        if config.map_path:
            from ..grid import MapService
            self.map_service = MapService(config.map_path)
        #: Background drift reconciler (repro.watch); only the watch
        #: thread touches it -- health() reads the cached status dict.
        self.watcher = None
        self._watch_thread: Optional[threading.Thread] = None
        self._watch_status: Optional[Dict[str, Any]] = None
        if config.watch_telemetry:
            self.watcher = self._make_watcher()
        self._tokens: Dict[str, CancelToken] = {}
        self._tokens_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._draining = threading.Event()
        self._drained = False
        self._last_breakers: Dict[str, str] = {}
        self._last_pool: Optional[Dict[str, Any]] = None
        if self.store.torn_lines:
            self.metrics.counter("serve.journal_torn_lines") \
                .inc(self.store.torn_lines)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Recover interrupted jobs, then start the worker threads."""
        recovered = self.store.recoverable()
        for job in recovered:
            self.admission.requeue(job)
        if recovered:
            self.metrics.counter("serve.recovered").inc(len(recovered))
        self._set_depth_gauge()
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker, name="serve-worker-%d" % index,
                daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.watcher is not None:
            self._watch_thread = threading.Thread(
                target=self._watch_loop, name="serve-watch", daemon=True)
            self._watch_thread.start()

    def drain(self, grace: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, checkpoint, park, flush.

        Returns True when every worker finished inside the grace
        budget.  Safe to call twice (the second call is a no-op).
        """
        if self._drained:
            return True
        grace = self.config.drain_grace if grace is None else grace
        started = self.clock()
        self._draining.set()
        self.admission.close()
        with self._tokens_lock:
            for token in self._tokens.values():
                token.cancel(REASON_DRAIN)
        # Jobs still queued stay 'queued' in the journal (they were
        # journaled at acceptance); the next boot re-queues them.
        self.admission.drain_pending()
        clean = True
        for thread in self._threads:
            left = grace - (self.clock() - started)
            thread.join(max(left, 0.05))
            if thread.is_alive():
                clean = False
        if self._watch_thread is not None:
            # The reconciler's journal makes a hard cut safe: an
            # interrupted redesign resumes exactly once on next boot.
            left = grace - (self.clock() - started)
            self._watch_thread.join(max(left, 0.05))
            if self._watch_thread.is_alive():
                clean = False
        self.store.close()
        self._drained = True
        elapsed = self.clock() - started
        self.metrics.gauge("serve.drain_seconds").set(elapsed)
        self.metrics.counter("serve.drains").inc()
        return clean

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- submission / queries ------------------------------------------

    def submit(self, payload: Any) \
            -> "tuple[Optional[Job], Optional[ShedDecision]]":
        """Validate, then admit or shed.  Raises ServeError on a bad
        payload (the HTTP layer maps that to 400)."""
        normalized = self._validate(payload)
        job, shed = self.admission.offer(
            lambda: self.store.submit(normalized))
        if shed is not None:
            self.metrics.counter("serve.shed").inc()
            self.metrics.counter("serve.shed.%s" % shed.reason).inc()
        else:
            self.metrics.counter("serve.accepted").inc()
        self._set_depth_gauge()
        return job, shed

    def get(self, job_id: str) -> Optional[Job]:
        return self.store.get(job_id)

    def wait(self, job_id: str, timeout: float) -> Optional[Job]:
        return self.store.wait(job_id, timeout)

    def jobs(self) -> List[Job]:
        return self.store.jobs()

    def cancel(self, job_id: str) -> str:
        """Cancel a job: 'unknown' | 'terminal' | 'cancelling' |
        'cancelled'."""
        job = self.store.get(job_id)
        if job is None:
            return "unknown"
        if job.terminal:
            return "terminal"
        with self._tokens_lock:
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel(REASON_CLIENT)
            return "cancelling"
        self.store.mark_cancelled(job_id, REASON_CLIENT)
        self.metrics.counter("serve.cancelled").inc()
        return "cancelled"

    # -- health --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        with self._tokens_lock:
            running = len(self._tokens)
        return {
            "status": "draining" if self.draining else "ok",
            "accepting": not self.admission.closed,
            "queue_depth": self.admission.depth,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "running": running,
            "jobs": self.store.counts(),
            "quarantined": len(self.quarantine),
            "breakers": dict(self._last_breakers),
            "pool": self._last_pool,
            "service_estimate_seconds":
                round(self.admission.service_estimate, 3),
            "cache": (self.cache_store.snapshot()
                      if self.cache_store is not None else None),
            "watch": self._watch_status,
            "map": self.map_status(),
        }

    def map_status(self) -> Optional[Dict[str, Any]]:
        """MAP_STATUS_SCHEMA document for /healthz, or None when no
        map is configured.  A corrupt map file must not take down
        health reporting, so that case degrades to state 'missing'
        with the error attached."""
        if self.map_service is None:
            return None
        try:
            return self.map_service.status()
        except AvedError as exc:
            return {"tier": "unknown", "state": "missing",
                    "coverage": 0.0, "loads_total": 0,
                    "loads_built": 0,
                    "shards": {"total": 0, "done": 0, "pending": 0},
                    "journal": {"enabled": False, "degraded": False,
                                "appends": 0},
                    "map_path": self.config.map_path,
                    "error": str(exc)}

    def ready(self) -> bool:
        """May a load balancer send more work here?

        Not while draining, not with a full queue, and not while the
        last job's engine left *every* breaker in its chain open
        (evaluation is then running on no engine at all).
        """
        if self.draining or self._drained:
            return False
        if self.admission.depth >= self.config.queue_limit:
            return False
        if self._last_breakers and all(
                state == "open"
                for state in self._last_breakers.values()):
            return False
        return True

    # -- the drift reconciler ------------------------------------------

    def _make_watcher(self):
        from ..core import DesignEvaluator
        from ..watch import JsonlTailReader, Watcher, WatchSpec
        config = self.config
        if config.watch_paper:
            from ..spec.paper import (ecommerce_service,
                                      paper_infrastructure)
            infrastructure = paper_infrastructure()
            service = ecommerce_service()
        else:
            from ..spec import parse_infrastructure, parse_service
            with open(config.watch_infrastructure) as handle:
                infrastructure = parse_infrastructure(handle.read())
            with open(config.watch_service) as handle:
                service = parse_service(handle.read())
        evaluator = DesignEvaluator(infrastructure, service,
                                    FallbackEngine(seed=config.seed))
        spec = WatchSpec(
            config.watch_tier, config.watch_load,
            Duration.minutes(config.watch_downtime_minutes))
        # The shared cache_dir is safe to attach twice (here and per
        # job): the tier-evaluation store is multi-writer by design.
        return Watcher(
            evaluator, spec,
            readers=[JsonlTailReader(path)
                     for path in config.watch_telemetry],
            journal_path=config.watch_journal_path,
            checkpoint_path=config.watch_checkpoint_path,
            cache_dir=config.cache_dir)

    def _watch_loop(self) -> None:
        """Poll telemetry until drain; the daemon survives any watch
        failure (the reconciler is an optimization, not a dependency)."""
        try:
            self.watcher.start()
            self._watch_status = self.watcher.status()
        except Exception:   # noqa: BLE001 - reconciler must not kill us
            self.metrics.counter("serve.watch_errors").inc()
        while not self._draining.wait(self.config.watch_interval):
            try:
                self._watch_status = self.watcher.poll()
                self.metrics.counter("serve.watch_polls").inc()
            except Exception:   # noqa: BLE001
                self.metrics.counter("serve.watch_errors").inc()
        try:
            self._watch_status = self.watcher.status()
        except Exception:   # noqa: BLE001
            self.metrics.counter("serve.watch_errors").inc()

    # -- validation ----------------------------------------------------

    def _validate(self, payload: Any) -> Dict[str, Any]:
        from ..spec import parse_infrastructure, parse_service
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        for key in ("infrastructure", "service"):
            text = payload.get(key)
            if not isinstance(text, str) or not text.strip():
                raise ServeError("%r must be a non-empty spec string"
                                 % key)
        try:
            infrastructure = parse_infrastructure(
                payload["infrastructure"])
            service = parse_service(payload["service"])
            from ..model import validate_pair
            validate_pair(infrastructure, service)
        except AvedError as exc:
            raise ServeError("bad model spec: %s" % exc) from exc
        parse_requirements(payload.get("requirements"))
        deadline = payload.get("deadline_seconds",
                               self.config.default_deadline)
        try:
            deadline = float(deadline)
        except (TypeError, ValueError) as exc:
            raise ServeError("deadline_seconds must be a number") \
                from exc
        if deadline <= 0:
            raise ServeError("deadline_seconds must be positive")
        deadline = min(deadline, self.config.max_deadline)
        fault = payload.get("test_fault")
        if fault is not None and not self.config.allow_test_faults:
            raise ServeError("test_fault requires the daemon to run "
                             "with --allow-test-faults")
        if fault is not None and not isinstance(fault, dict):
            raise ServeError("test_fault must be an object")
        normalized = dict(payload)
        normalized["deadline_seconds"] = deadline
        return normalized

    # -- execution -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self.admission.take(timeout=0.2)
            if job is None:
                if self.admission.closed:
                    return
                continue
            self._set_depth_gauge()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        if job.terminal:        # cancelled while still queued
            return
        if not self.store.mark_started(job.id):
            return
        token = CancelToken()
        with self._tokens_lock:
            self._tokens[job.id] = token
        if self.draining:
            # Drain raced us between take() and token registration.
            token.cancel(REASON_DRAIN)
        started = self.clock()
        deadline_at = started + float(job.payload["deadline_seconds"])
        check = make_cancel_check(token, deadline_at, self.clock)
        try:
            result = self._execute(job, check, deadline_at)
        except JobCancelled as exc:
            self._finish_cancelled(job, exc)
        except InfeasibleError as exc:
            self.store.mark_failed(job.id, {"kind": "infeasible",
                                            "message": str(exc)})
            self.metrics.counter("serve.failed").inc()
        except AvedError as exc:
            self.store.mark_failed(
                job.id, {"kind": "error",
                         "type": type(exc).__name__,
                         "message": str(exc)})
            self.metrics.counter("serve.failed").inc()
        except Exception as exc:   # noqa: BLE001 - worker must survive
            self.store.mark_failed(
                job.id, {"kind": "internal",
                         "type": type(exc).__name__,
                         "message": str(exc)})
            self.metrics.counter("serve.failed").inc()
        else:
            if self.store.mark_completed(job.id, result):
                self.metrics.counter("serve.completed").inc()
            self._discard_checkpoint(job.id)
        finally:
            with self._tokens_lock:
                self._tokens.pop(job.id, None)
            elapsed = self.clock() - started
            self.admission.record_service_time(elapsed)
            self.metrics.histogram("serve.job_seconds").observe(elapsed)

    def _finish_cancelled(self, job: Job, exc: JobCancelled) -> None:
        if exc.reason == REASON_DRAIN:
            # The search checkpointed (Aved flushes on the way out);
            # park the job for the next boot.
            self.store.mark_requeued(job.id, REASON_DRAIN)
            self.metrics.counter("serve.requeued").inc()
        elif exc.reason == REASON_CLIENT:
            self.store.mark_cancelled(job.id, REASON_CLIENT)
            self.metrics.counter("serve.cancelled").inc()
        else:
            self.store.mark_failed(job.id, {"kind": "deadline",
                                            "message": str(exc)})
            self.metrics.counter("serve.deadline_misses").inc()
            self.metrics.counter("serve.failed").inc()

    def _execute(self, job: Job, check: Callable[[], None],
                 deadline_at: float) -> Dict[str, Any]:
        from ..core import Aved
        from ..spec import parse_infrastructure, parse_service
        payload = job.payload
        self._chaos_delay(payload, check)
        check()
        infrastructure = parse_infrastructure(payload["infrastructure"])
        service = parse_service(payload["service"])
        requirements = parse_requirements(payload["requirements"])
        remaining = remaining_budget(deadline_at, self.clock)
        if remaining is not None and remaining <= 0:
            raise JobCancelled(REASON_DEADLINE)
        engine = self._make_engine(remaining)
        if self.cache_store is not None:
            # Wrap cacheable rungs *before* the runtime is built so a
            # fanned-out pool ships cached engines to its workers.
            # Aved's own attach is a no-op on already wrapped rungs.
            from ..cache import attach_cache
            engine = attach_cache(engine, self.cache_store)
        checkpoint = self._make_checkpoint(job.id)
        runtime = make_runtime(engine, self.config.jobs,
                               task_timeout=self.config.task_timeout,
                               seed=self.config.seed,
                               cancel_check=check,
                               quarantine=self.quarantine)
        aved = Aved(infrastructure, service,
                    availability_engine=engine,
                    lint="off", checkpoint=checkpoint,
                    parallel=runtime,
                    cache=self.cache_store,
                    cache_verify=self.config.cache_verify)
        try:
            outcome = aved.design(requirements)
        finally:
            self._last_breakers = {
                name: breaker.state
                for name, breaker in engine.breakers.items()}
            if runtime is not None:
                self._last_pool = runtime.health()
                runtime.close()
        return self._result_dict(outcome)

    def _chaos_delay(self, payload: Dict[str, Any],
                     check: Callable[[], None]) -> None:
        """The loadgen's artificial slowness, cancellation-aware."""
        fault = payload.get("test_fault") or {}
        try:
            delay = float(fault.get("delay_seconds", 0) or 0)
        except (TypeError, ValueError):
            delay = 0.0
        if delay <= 0 or not self.config.allow_test_faults:
            return
        end = self.clock() + delay
        while self.clock() < end:
            check()
            time.sleep(0.05)

    def _make_engine(self, remaining: Optional[float]) -> FallbackEngine:
        chain = (DEFAULT_CHAIN if self.config.engine == "fallback"
                 else (self.config.engine,))
        policy = FallbackPolicy(chain=chain).with_budget(remaining)
        return FallbackEngine(policy=policy, seed=self.config.seed)

    def _make_checkpoint(self, job_id: str) -> SearchCheckpoint:
        path = self.config.checkpoint_path(job_id)
        if os.path.exists(path):
            return SearchCheckpoint.load(
                path, interval=self.config.checkpoint_interval)
        return SearchCheckpoint(
            path, interval=self.config.checkpoint_interval)

    def _discard_checkpoint(self, job_id: str) -> None:
        try:
            os.remove(self.config.checkpoint_path(job_id))
        except OSError:
            pass

    @staticmethod
    def _result_dict(outcome: Any) -> Dict[str, Any]:
        from ..core.serialize import evaluation_to_dict
        result: Dict[str, Any] = {
            "evaluation": evaluation_to_dict(outcome.evaluation),
            "annual_cost": outcome.annual_cost,
            "downtime_minutes": outcome.downtime_minutes,
            "degraded": outcome.degraded,
        }
        if outcome.degradation is not None and len(outcome.degradation):
            result["degradation"] = [
                diagnostic.format()
                for diagnostic in outcome.degradation]
        if outcome.cache is not None:
            result["cache"] = dict(outcome.cache)
        return result

    def _set_depth_gauge(self) -> None:
        self.metrics.gauge("serve.queue_depth") \
            .set(float(self.admission.depth))


__all__ = ["DesignService", "parse_requirements"]
