"""Crash-safe job persistence: an append-only JSONL journal.

Every state transition a job takes is one fsync'd JSON line in
``jobs.jsonl``.  Crash safety falls out of three properties:

* **append-only writes** -- a ``kill -9`` can at worst tear the final
  line, never corrupt history; replay ignores a torn tail;
* **first-terminal-wins** -- ``completed``/``failed``/``cancelled``
  for an already-terminal job is refused at the API *and* ignored at
  replay, which is what makes re-running a recovered job exactly-once
  in the journal even if two histories overlap after a crash;
* **startup compaction** -- replay rebuilds current state, then
  atomically (temp file + fsync + rename) rewrites the journal to one
  ``accepted`` line per job plus its terminal line, so the journal
  stays bounded across restarts.

Jobs that replay as ``queued`` or ``running`` are *recoverable*: the
service re-queues them on boot (a ``running`` job whose daemon died
never journaled a terminal event, so re-running it cannot double a
result).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import ServeError

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})


class Job:
    """One design request and everything the journal knows about it."""

    __slots__ = ("id", "payload", "state", "result", "error",
                 "attempts", "cancel_reason")

    def __init__(self, job_id: str, payload: Dict[str, Any],
                 attempts: int = 0):
        self.id = job_id
        self.payload = payload
        self.state = QUEUED
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, Any]] = None
        self.attempts = attempts
        self.cancel_reason: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_payload: bool = False) -> Dict[str, Any]:
        view: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "attempts": self.attempts,
        }
        if self.result is not None:
            view["result"] = self.result
        if self.error is not None:
            view["error"] = self.error
        if self.cancel_reason is not None:
            view["cancel_reason"] = self.cancel_reason
        if include_payload:
            view["payload"] = self.payload
        return view


class JobStore:
    """The journal plus an in-memory index over it, thread-safe."""

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._sequence = 0
        self._torn_lines = 0
        self._lock = threading.RLock()
        self._terminal = threading.Condition(self._lock)
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise ServeError("cannot create job store directory %r: %s"
                             % (directory, exc)) from exc
        self._replay()
        self._compact()
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- journal mechanics ---------------------------------------------

    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    # A torn tail from a crash mid-append.  Anything
                    # after the first unparseable line is untrusted.
                    self._torn_lines += 1
                    break
                self._apply(event)

    def _apply(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        job_id = event.get("id")
        if not isinstance(job_id, str) or not isinstance(kind, str):
            self._torn_lines += 1
            return
        if kind == "accepted":
            if job_id not in self._jobs:
                job = Job(job_id, event.get("payload") or {},
                          attempts=int(event.get("attempts", 0)))
                self._jobs[job_id] = job
                self._order.append(job_id)
                self._bump_sequence(job_id)
            return
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return
        if kind == "started":
            job.state = RUNNING
            job.attempts += 1
        elif kind == "requeued":
            job.state = QUEUED
        elif kind == "completed":
            job.state = COMPLETED
            job.result = event.get("result")
        elif kind == "failed":
            job.state = FAILED
            job.error = event.get("error")
        elif kind == "cancelled":
            job.state = CANCELLED
            job.cancel_reason = event.get("reason")

    def _bump_sequence(self, job_id: str) -> None:
        try:
            number = int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            return
        if number >= self._sequence:
            self._sequence = number + 1

    def _compact(self) -> None:
        """Atomically rewrite the journal from current state."""
        if not self._jobs and not os.path.exists(self.path):
            return
        temp = self.path + ".compact"
        with open(temp, "w", encoding="utf-8") as handle:
            for job_id in self._order:
                job = self._jobs[job_id]
                handle.write(json.dumps(
                    {"event": "accepted", "id": job.id,
                     "payload": job.payload,
                     "attempts": job.attempts},
                    sort_keys=True) + "\n")
                if job.state == COMPLETED:
                    handle.write(json.dumps(
                        {"event": "completed", "id": job.id,
                         "result": job.result}, sort_keys=True) + "\n")
                elif job.state == FAILED:
                    handle.write(json.dumps(
                        {"event": "failed", "id": job.id,
                         "error": job.error}, sort_keys=True) + "\n")
                elif job.state == CANCELLED:
                    handle.write(json.dumps(
                        {"event": "cancelled", "id": job.id,
                         "reason": job.cancel_reason},
                        sort_keys=True) + "\n")
                # RUNNING compacts back to accepted: the job never
                # finished, so after restart it is simply queued again.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    def _append(self, event: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # -- API -----------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Job:
        with self._lock:
            job_id = "job-%06d" % self._sequence
            self._sequence += 1
            job = Job(job_id, payload)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._append({"event": "accepted", "id": job_id,
                          "payload": payload, "attempts": 0})
            return job

    def mark_started(self, job_id: str) -> bool:
        with self._lock:
            job = self._require(job_id)
            if job.terminal:
                return False
            job.state = RUNNING
            job.attempts += 1
            self._append({"event": "started", "id": job_id,
                          "attempt": job.attempts})
            return True

    def mark_completed(self, job_id: str,
                       result: Dict[str, Any]) -> bool:
        return self._terminate(job_id, COMPLETED,
                               {"event": "completed", "id": job_id,
                                "result": result})

    def mark_failed(self, job_id: str, error: Dict[str, Any]) -> bool:
        return self._terminate(job_id, FAILED,
                               {"event": "failed", "id": job_id,
                                "error": error})

    def mark_cancelled(self, job_id: str, reason: str) -> bool:
        return self._terminate(job_id, CANCELLED,
                               {"event": "cancelled", "id": job_id,
                                "reason": reason})

    def mark_requeued(self, job_id: str, reason: str) -> bool:
        with self._lock:
            job = self._require(job_id)
            if job.terminal:
                return False
            job.state = QUEUED
            self._append({"event": "requeued", "id": job_id,
                          "reason": reason})
            return True

    def _terminate(self, job_id: str, state: str,
                   event: Dict[str, Any]) -> bool:
        with self._lock:
            job = self._require(job_id)
            if job.terminal:
                # First terminal event wins; never journal a second.
                return False
            job.state = state
            if state == COMPLETED:
                job.result = event.get("result")
            elif state == FAILED:
                job.error = event.get("error")
            elif state == CANCELLED:
                job.cancel_reason = event.get("reason")
            self._append(event)
            self._terminal.notify_all()
            return True

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError("unknown job %r" % job_id)
        return job

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def recoverable(self) -> List[Job]:
        """Non-terminal jobs, in submission order (for boot re-queue)."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order
                    if not self._jobs[job_id].terminal]

    def wait(self, job_id: str, timeout: float,
             clock: Optional[Callable[[], float]] = None) \
            -> Optional[Job]:
        """Block until ``job_id`` is terminal (or ``timeout`` elapses)."""
        now = clock or time.monotonic
        deadline = now() + timeout
        with self._terminal:
            job = self._jobs.get(job_id)
            while job is not None and not job.terminal:
                left = deadline - now()
                if left <= 0:
                    break
                self._terminal.wait(left)
                job = self._jobs.get(job_id)
            return job

    @property
    def torn_lines(self) -> int:
        """Journal lines dropped at replay (crash-tear evidence)."""
        return self._torn_lines

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
                self._handle.close()


__all__ = ["Job", "JobStore", "QUEUED", "RUNNING", "COMPLETED",
           "FAILED", "CANCELLED", "TERMINAL_STATES"]
