"""Per-request deadlines and cooperative cancellation.

A running design search cannot be preempted mid-solve; what the
service *can* do is refuse to start the next candidate.  Each job gets
a :class:`CancelToken`; the service threads it into the supervised
evaluation runtime as a ``cancel_check`` callable (called by
:class:`repro.parallel.SupervisedExecutor` before every candidate,
outside its fault-supervision blocks), so a cancelled or past-deadline
job stops at the next candidate boundary with its checkpoint intact.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import ServeError

#: Why a job was cancelled -- drives terminal state and HTTP mapping.
REASON_DEADLINE = "deadline"
REASON_DRAIN = "drain"
REASON_CLIENT = "client-cancel"


class JobCancelled(ServeError):
    """A job's search was cancelled cooperatively.

    ``reason`` is one of :data:`REASON_DEADLINE` (budget exhausted ->
    the job fails), :data:`REASON_DRAIN` (daemon shutting down -> the
    job is requeued for the next boot), or :data:`REASON_CLIENT`
    (explicit DELETE -> the job is marked cancelled).
    """

    def __init__(self, reason: str, message: str = ""):
        self.reason = reason
        super().__init__(message or "job cancelled (%s)" % reason)


class CancelToken:
    """A one-shot, thread-safe cancellation flag with a reason."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self._lock = threading.Lock()

    def cancel(self, reason: str) -> None:
        """First cancel wins; later reasons are ignored."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)


def make_cancel_check(token: CancelToken,
                      deadline_at: Optional[float] = None,
                      clock: Callable[[], float] = time.monotonic) \
        -> Callable[[], None]:
    """Build the zero-arg hook the evaluation runtime calls per candidate.

    Raises :class:`JobCancelled` when the token fires or the absolute
    ``deadline_at`` (on ``clock``'s timeline) has passed.  The deadline
    check also *fires the token*, so everything else watching the job
    (the HTTP layer, chaos delays) observes the same cancellation.
    """
    def check() -> None:
        if token.cancelled:
            raise JobCancelled(token.reason or REASON_CLIENT)
        if deadline_at is not None and clock() >= deadline_at:
            token.cancel(REASON_DEADLINE)
            raise JobCancelled(REASON_DEADLINE)
    return check


def remaining_budget(deadline_at: Optional[float],
                     clock: Callable[[], float] = time.monotonic) \
        -> Optional[float]:
    """Seconds left until ``deadline_at``; None when no deadline."""
    if deadline_at is None:
        return None
    return deadline_at - clock()


__all__ = ["CancelToken", "JobCancelled", "make_cancel_check",
           "remaining_budget", "REASON_DEADLINE", "REASON_DRAIN",
           "REASON_CLIENT"]
