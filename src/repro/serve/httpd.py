"""The HTTP front end and daemon lifecycle.

Zero dependencies beyond the stdlib: a
:class:`http.server.ThreadingHTTPServer` whose handler maps a small
JSON API onto :class:`~repro.serve.DesignService`:

========================  =======================================
``POST /v1/jobs``         submit spec + requirements; 202 with the
                          job id, or 429 + ``Retry-After`` when shed
``GET /v1/jobs``          list all jobs (summaries)
``GET /v1/map``           requirement lookup from the precomputed map
                          (``?load=&downtime_minutes=``); 503 with
                          coverage when the region is unbuilt
``GET /v1/jobs/<id>``     one job; ``?wait=S`` blocks until terminal
``DELETE /v1/jobs/<id>``  cancel (cooperative when running)
``GET /healthz``          liveness: always 200 with the health dict
``GET /readyz``           readiness: 200 or 503 (drain, full queue,
                          all engine breakers open)
``GET /metricz``          the ``serve.*`` metrics snapshot
``POST /v1/drain``        ask the daemon to drain and exit
========================  =======================================

:class:`DesignDaemon` owns the server + service pair: it binds the
socket (port 0 picks an ephemeral port, advertised in
``<data_dir>/endpoint.json``), installs SIGTERM/SIGINT handlers that
trigger a graceful drain (stop admitting, cancel running searches at
the next candidate boundary so they checkpoint, flush the journal,
exit 0), and runs until stopped.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ServeError
from .config import ServeConfig
from .service import DesignService

#: Cap on ``?wait=`` long-polls, seconds (clients should re-poll).
MAX_WAIT_SECONDS = 60.0


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the service; one thread per connection."""

    server_version = "repro-serve/1"
    # HTTP/1.0 (the default): every response closes its connection,
    # so slow or killed clients can never pin a handler thread beyond
    # one request + the socket timeout.

    def setup(self) -> None:
        self.request.settimeout(self.server.config.io_timeout)
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        pass    # the daemon's journal and metrics are the record

    # -- plumbing ------------------------------------------------------

    @property
    def service(self) -> DesignService:
        return self.server.service

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Optional[Any]:
        """Parse the request body; responds (and returns None) on error."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return None
        if length > self.server.config.max_body_bytes:
            self._send_json(413, {"error": "request body too large"})
            return None
        try:
            raw = self.rfile.read(length)
        except (OSError, socket.timeout):
            # Slow or vanished client: nothing was admitted, nothing
            # to clean up -- drop the connection.
            self.close_connection = True
            return None
        if len(raw) < length:
            self.close_connection = True
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return None

    # -- routes --------------------------------------------------------

    def do_POST(self) -> None:   # noqa: N802 - stdlib API
        path = urlsplit(self.path).path
        if path == "/v1/jobs":
            self._post_job()
        elif path == "/v1/drain":
            self.server.request_stop()
            self._send_json(202, {"draining": True})
        else:
            self._send_json(404, {"error": "no such endpoint"})

    def do_GET(self) -> None:    # noqa: N802 - stdlib API
        split = urlsplit(self.path)
        path = split.path
        if path == "/healthz":
            self._send_json(200, self.service.health())
        elif path == "/readyz":
            ready = self.service.ready()
            payload = {"ready": ready}
            payload.update(self.service.health())
            self._send_json(200 if ready else 503, payload)
        elif path == "/metricz":
            self._send_json(200, self.service.metrics.snapshot())
        elif path == "/v1/map":
            self._get_map(split.query)
        elif path == "/v1/jobs":
            self._send_json(200, {"jobs": [job.to_dict()
                                           for job in
                                           self.service.jobs()]})
        elif path.startswith("/v1/jobs/"):
            self._get_job(path[len("/v1/jobs/"):], split.query)
        else:
            self._send_json(404, {"error": "no such endpoint"})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib API
        path = urlsplit(self.path).path
        if not path.startswith("/v1/jobs/"):
            self._send_json(404, {"error": "no such endpoint"})
            return
        job_id = path[len("/v1/jobs/"):]
        status = self.service.cancel(job_id)
        if status == "unknown":
            self._send_json(404, {"error": "unknown job %r" % job_id})
        elif status == "terminal":
            self._send_json(409, {"error": "job already finished"})
        else:
            self._send_json(202, {"id": job_id, "status": status})

    def _post_job(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        try:
            job, shed = self.service.submit(payload)
        except ServeError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if shed is not None:
            self._send_json(429, shed.to_dict(),
                            headers=(("Retry-After",
                                      str(shed.retry_after)),))
            return
        self._send_json(202, {"id": job.id, "state": job.state})

    def _get_map(self, query: str) -> None:
        """``GET /v1/map?load=X&downtime_minutes=Y``.

        200 with the answer ("ok" or the definitive "infeasible"),
        503 when the queried region is genuinely unbuilt (partial
        map, missing file, load beyond the grid), 404 when the daemon
        has no map configured at all, 400 on bad parameters.  Never
        triggers a search.
        """
        service = self.service.map_service
        if service is None:
            self._send_json(404, {"error": "no map configured (start "
                                           "the daemon with --map)"})
            return
        params = parse_qs(query)
        try:
            load = float(params["load"][0])
            downtime = float(params["downtime_minutes"][0])
            if load <= 0 or downtime <= 0:
                raise ValueError("must be positive")
        except (KeyError, IndexError, ValueError):
            self._send_json(400, {"error": "load and downtime_minutes "
                                           "query parameters must be "
                                           "positive numbers"})
            return
        from ..errors import AvedError
        from ..units import Duration
        try:
            answer = service.lookup(load, Duration.minutes(downtime))
        except AvedError as exc:
            # A corrupt/unreadable map file: honest unavailability.
            self._send_json(503, {"error": str(exc)})
            return
        status = 503 if answer["answer"] == "unbuilt" else 200
        self._send_json(status, answer)

    def _get_job(self, job_id: str, query: str) -> None:
        wait = 0.0
        values = parse_qs(query).get("wait")
        if values:
            try:
                wait = float(values[0])
            except ValueError:
                self._send_json(400, {"error": "wait must be a number"})
                return
        wait = max(0.0, min(wait, MAX_WAIT_SECONDS))
        if wait > 0:
            job = self.service.wait(job_id, wait)
        else:
            job = self.service.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown job %r" % job_id})
            return
        self._send_json(200, job.to_dict())


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: DesignService, config: ServeConfig,
                 request_stop: Callable[[], None]):
        self.service = service
        self.config = config
        self.request_stop = request_stop
        super().__init__(address, _Handler)


class DesignDaemon:
    """Service + HTTP server + signal-driven graceful drain."""

    def __init__(self, config: ServeConfig,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.service = DesignService(config, clock=clock)
        self._stop = threading.Event()
        self._server = _Server((config.host, config.port),
                               self.service, config, self.request_stop)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._shut_down = False

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start workers and the HTTP loop (non-blocking; for tests
        and :meth:`run`)."""
        self.service.start()
        self._write_endpoint()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http", daemon=True)
        self._thread.start()

    def request_stop(self) -> None:
        """Ask the daemon to drain and exit (signal/drain endpoint)."""
        self._stop.set()

    def shutdown(self) -> bool:
        """Stop accepting, drain the service, close the socket."""
        if self._shut_down:
            return True
        self._shut_down = True
        self._server.shutdown()
        clean = self.service.drain()
        self._server.server_close()
        try:
            os.remove(self.config.endpoint_path)
        except OSError:
            pass
        return clean

    def run(self, install_signals: bool = True) -> int:
        """Serve until SIGTERM/SIGINT (or ``POST /v1/drain``).

        Returns the process exit code: 0 for a clean drain (running
        searches checkpointed and parked, journal flushed), 1 when a
        worker had to be abandoned past the grace budget.
        """
        if install_signals:
            def _on_signal(signum: int, frame: Any) -> None:
                self.request_stop()
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self.start()
        self._stop.wait()
        return 0 if self.shutdown() else 1

    # -- discovery -----------------------------------------------------

    def _write_endpoint(self) -> None:
        """Advertise the bound address (atomically -- watchers may
        race the daemon's boot)."""
        record = {"host": self.host, "port": self.port,
                  "pid": os.getpid(), "url": self.url}
        temp = self.config.endpoint_path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.config.endpoint_path)


__all__ = ["DesignDaemon", "MAX_WAIT_SECONDS"]
