"""Configuration for the design service daemon.

A :class:`ServeConfig` is pure data: every operational knob of the
``repro serve`` daemon in one frozen dataclass, so a daemon's whole
behavior is reproducible from its config (plus the seed).  Validation
happens at construction -- a daemon never boots with an incoherent
config and discovers it under load.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ServeError

#: Engines the daemon will build per job.  ``fallback`` wraps the full
#: markov -> analytic -> simulation degradation chain.
ENGINE_CHOICES: Tuple[str, ...] = ("markov", "analytic", "simulation",
                                   "fallback")


@dataclass(frozen=True)
class ServeConfig:
    """Operational knobs for :class:`~repro.serve.DesignService`.

    ``queue_limit`` and ``wait_budget`` drive admission control: a
    request is shed with 429 when the queue is full *or* when its
    estimated queueing delay (EWMA of recent service times times the
    queue depth) exceeds ``wait_budget`` seconds.

    ``default_deadline``/``max_deadline`` bound per-request deadlines
    in seconds; the effective deadline propagates into the resilience
    policy's evaluation budget and cancels the search cooperatively.

    ``drain_grace`` is how long a SIGTERM'd daemon waits for running
    jobs to checkpoint and park before exiting anyway.

    ``allow_test_faults`` gates the ``test_fault`` payload field used
    by the chaos load generator (artificial per-job delays); it must
    never be on in real deployments, hence an explicit opt-in.

    ``cache_dir`` attaches one shared persistent tier-evaluation
    store (:mod:`repro.cache`) to every design job the daemon runs --
    repeat requirements then reuse solves across jobs, workers, and
    daemon restarts.  ``cache_verify`` re-solves a seeded sample of
    hits after each job and quarantines the store on divergence.

    ``map_path`` mounts a precomputed requirement-space map (built by
    ``repro map build``, :mod:`repro.grid`) at ``GET /v1/map``: the
    daemon answers (load, downtime) lookups from the map file without
    running a search, reloads it when a rebuild replaces the file, and
    reports its coverage in ``/healthz``.  The file may not exist yet
    at boot -- lookups then answer 503 until a build lands.

    ``watch_telemetry`` (one or more JSONL stream paths) turns on the
    background drift reconciler (:mod:`repro.watch`): the daemon then
    also tails telemetry for ``watch_tier``, re-estimates its
    MTTF/MTTR/load, and re-searches the tier design when observation
    statistically contradicts the ``watch_load`` /
    ``watch_downtime_minutes`` spec.  The watched model comes from
    ``watch_infrastructure``/``watch_service`` spec files, or the
    paper's e-commerce model when ``watch_paper`` is set.  Watch state
    (journal, checkpoint) lives under ``data_dir`` so a killed daemon
    resumes an interrupted redesign exactly once.
    """

    data_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_limit: int = 16
    wait_budget: float = 30.0
    initial_service_estimate: float = 2.0
    default_deadline: float = 120.0
    max_deadline: float = 600.0
    engine: str = "fallback"
    jobs: int = 1
    task_timeout: Optional[float] = None
    drain_grace: float = 30.0
    io_timeout: float = 10.0
    max_body_bytes: int = 1024 * 1024
    fsync: bool = True
    allow_test_faults: bool = False
    cache_dir: Optional[str] = None
    cache_verify: bool = False
    seed: int = 1
    checkpoint_interval: int = 10
    watch_telemetry: Tuple[str, ...] = ()
    watch_tier: Optional[str] = None
    watch_load: Optional[float] = None
    watch_downtime_minutes: Optional[float] = None
    watch_interval: float = 5.0
    watch_infrastructure: Optional[str] = None
    watch_service: Optional[str] = None
    watch_paper: bool = False
    map_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.data_dir:
            raise ServeError("data_dir is required")
        if self.workers < 1:
            raise ServeError("workers must be >= 1")
        if self.queue_limit < 1:
            raise ServeError("queue_limit must be >= 1")
        if self.wait_budget <= 0:
            raise ServeError("wait_budget must be positive")
        if self.initial_service_estimate <= 0:
            raise ServeError("initial_service_estimate must be positive")
        if self.default_deadline <= 0 or self.max_deadline <= 0:
            raise ServeError("deadlines must be positive")
        if self.default_deadline > self.max_deadline:
            raise ServeError("default_deadline exceeds max_deadline")
        if self.engine not in ENGINE_CHOICES:
            raise ServeError("engine must be one of %s, got %r"
                             % (", ".join(ENGINE_CHOICES), self.engine))
        if self.jobs < 1:
            raise ServeError("jobs must be >= 1")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ServeError("task_timeout must be positive or None")
        if self.drain_grace <= 0:
            raise ServeError("drain_grace must be positive")
        if self.io_timeout <= 0:
            raise ServeError("io_timeout must be positive")
        if self.max_body_bytes < 1024:
            raise ServeError("max_body_bytes must be >= 1024")
        if self.checkpoint_interval < 1:
            raise ServeError("checkpoint_interval must be >= 1")
        if self.cache_verify and not self.cache_dir:
            raise ServeError("cache_verify requires cache_dir")
        if not 0 <= self.port <= 65535:
            raise ServeError("port must be in [0, 65535]")
        if self.watch_telemetry:
            if not self.watch_tier:
                raise ServeError("watch_telemetry requires watch_tier")
            if self.watch_load is None or self.watch_load <= 0:
                raise ServeError(
                    "watch_telemetry requires a positive watch_load")
            if self.watch_downtime_minutes is None \
                    or self.watch_downtime_minutes <= 0:
                raise ServeError("watch_telemetry requires a positive "
                                 "watch_downtime_minutes")
            if self.watch_interval <= 0:
                raise ServeError("watch_interval must be positive")
            if not self.watch_paper and not (
                    self.watch_infrastructure and self.watch_service):
                raise ServeError(
                    "watch_telemetry requires watch_infrastructure and "
                    "watch_service spec files, or watch_paper")

    # -- derived paths -------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.data_dir, "jobs.jsonl")

    @property
    def checkpoint_dir(self) -> str:
        return os.path.join(self.data_dir, "checkpoints")

    @property
    def endpoint_path(self) -> str:
        """Where the daemon advertises its bound address (JSON)."""
        return os.path.join(self.data_dir, "endpoint.json")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.checkpoint_dir, "%s.json" % job_id)

    @property
    def watch_journal_path(self) -> str:
        return os.path.join(self.data_dir, "watch-journal.jsonl")

    @property
    def watch_checkpoint_path(self) -> str:
        return os.path.join(self.data_dir, "watch-checkpoint.json")


__all__ = ["ServeConfig", "ENGINE_CHOICES"]
