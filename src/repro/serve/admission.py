"""Admission control: the bounded queue that sheds load.

The daemon protects itself with one mechanism, applied twice: a hard
cap on queue depth (memory safety) and a soft cap on *estimated wait*
(latency safety).  The wait estimate is an EWMA of recent service
times multiplied by how many jobs are already ahead; a request whose
estimate exceeds the configured budget is shed with HTTP 429 and a
``Retry-After`` derived from the same estimate -- honest backpressure
instead of a queue that accepts work it cannot finish in time.

``offer`` takes a *factory* rather than a job so the admission
decision and the journal append happen under one lock: a request is
never journaled and then shed, and two racing requests cannot both
squeeze into the last queue slot.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

#: Shed reasons, surfaced in the 429 body and ``serve.shed.*`` counters.
SHED_QUEUE_FULL = "queue-full"
SHED_OVER_BUDGET = "over-budget"
SHED_DRAINING = "draining"

#: EWMA smoothing for the service-time estimate.
_ALPHA = 0.3

#: Retry-After clamp, in seconds.
_RETRY_MIN = 1
_RETRY_MAX = 120


class ShedDecision:
    """Why a request was refused, plus what to tell the client."""

    __slots__ = ("reason", "retry_after", "queue_depth",
                 "estimated_wait")

    def __init__(self, reason: str, retry_after: int,
                 queue_depth: int, estimated_wait: float):
        self.reason = reason
        self.retry_after = retry_after
        self.queue_depth = queue_depth
        self.estimated_wait = estimated_wait

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shed": True,
            "reason": self.reason,
            "retry_after": self.retry_after,
            "queue_depth": self.queue_depth,
            "estimated_wait_seconds": round(self.estimated_wait, 3),
        }


class AdmissionController:
    """Bounded FIFO with load-shedding and drain support."""

    def __init__(self, queue_limit: int, wait_budget: float,
                 initial_estimate: float, workers: int = 1):
        self.queue_limit = queue_limit
        self.wait_budget = wait_budget
        self.workers = max(workers, 1)
        self._estimate = initial_estimate
        self._queue: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # -- producer side -------------------------------------------------

    def offer(self, factory: Callable[[], Any]) \
            -> Tuple[Optional[Any], Optional[ShedDecision]]:
        """Admit (building the job via ``factory``) or shed.

        Returns ``(job, None)`` on admission, ``(None, decision)`` on
        shed.  The factory runs under the admission lock, so
        journaling the acceptance and claiming the queue slot are one
        atomic step.
        """
        with self._lock:
            depth = len(self._queue)
            wait = self._estimated_wait(depth)
            if self._closed:
                decision = ShedDecision(SHED_DRAINING,
                                        self._retry_after(wait),
                                        depth, wait)
                return None, decision
            if depth >= self.queue_limit:
                decision = ShedDecision(SHED_QUEUE_FULL,
                                        self._retry_after(wait),
                                        depth, wait)
                return None, decision
            if wait > self.wait_budget:
                decision = ShedDecision(SHED_OVER_BUDGET,
                                        self._retry_after(wait),
                                        depth, wait)
                return None, decision
            job = factory()
            self._queue.append(job)
            self._available.notify()
            return job, None

    def requeue(self, job: Any, front: bool = False) -> None:
        """Put a recovered job back without an admission decision.

        Boot-time recovery and drain re-queues bypass shedding: the
        job was *already accepted* (journaled), so refusing it now
        would break the exactly-once promise.
        """
        with self._lock:
            if front:
                self._queue.appendleft(job)
            else:
                self._queue.append(job)
            self._available.notify()

    # -- consumer side -------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next job FIFO; None on timeout or once draining started.

        A closed controller returns None even while jobs remain
        queued: drain must not *start* work, and whatever is left in
        the queue is re-journaled by :meth:`drain_pending`.
        """
        with self._lock:
            while not self._queue:
                if self._closed:
                    return None
                if not self._available.wait(timeout):
                    return None
            if self._closed:
                return None
            return self._queue.popleft()

    def record_service_time(self, seconds: float) -> None:
        if seconds < 0 or not math.isfinite(seconds):
            return
        with self._lock:
            self._estimate = ((1.0 - _ALPHA) * self._estimate
                              + _ALPHA * seconds)

    # -- drain ---------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake every blocked worker."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def drain_pending(self) -> list:
        """Remove and return everything still queued (for re-journal)."""
        with self._lock:
            pending = list(self._queue)
            self._queue.clear()
            return pending

    # -- introspection -------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def service_estimate(self) -> float:
        with self._lock:
            return self._estimate

    def _estimated_wait(self, depth: int) -> float:
        """Expected queueing delay for a request arriving now."""
        return (depth + 1) * self._estimate / self.workers

    @staticmethod
    def _retry_after(wait: float) -> int:
        return max(_RETRY_MIN, min(_RETRY_MAX, int(math.ceil(wait))))


__all__ = ["AdmissionController", "ShedDecision", "SHED_QUEUE_FULL",
           "SHED_OVER_BUDGET", "SHED_DRAINING"]
