"""repro.serve: a crash-safe concurrent design service.

The daemon behind ``repro serve``: accept design requests over a tiny
JSON HTTP API, run them through the fault-tolerant engine stack
(:mod:`repro.resilience` + :mod:`repro.parallel`), and survive
overload, deadlines, crashes, and shutdowns without ever losing or
double-completing an accepted job.

Layering (no HTTP below :mod:`repro.serve.httpd`):

* :mod:`~repro.serve.config` -- :class:`ServeConfig`, all knobs;
* :mod:`~repro.serve.jobstore` -- append-only fsync'd journal with
  replay, compaction, and first-terminal-wins semantics;
* :mod:`~repro.serve.admission` -- bounded queue + load shedding with
  honest ``Retry-After``;
* :mod:`~repro.serve.deadline` -- cancel tokens and per-request
  deadlines that propagate into the evaluation runtime;
* :mod:`~repro.serve.service` -- worker threads, per-job checkpoints
  and budgeted engines, recovery, graceful drain;
* :mod:`~repro.serve.httpd` -- the HTTP front end and signal-driven
  daemon lifecycle;
* :mod:`~repro.serve.loadgen` -- the seeded load/chaos client used by
  the soak tests and CI.

``docs/SERVING.md`` is the operator-facing guide.
"""

from .admission import AdmissionController, ShedDecision
from .config import ServeConfig
from .deadline import CancelToken, JobCancelled, make_cancel_check
from .httpd import DesignDaemon
from .jobstore import Job, JobStore
from .loadgen import ClientFaultPlan, LoadPlan, LoadReport
from .service import DesignService

__all__ = [
    "AdmissionController",
    "CancelToken",
    "ClientFaultPlan",
    "DesignDaemon",
    "DesignService",
    "Job",
    "JobCancelled",
    "JobStore",
    "LoadPlan",
    "LoadReport",
    "ServeConfig",
    "ShedDecision",
    "make_cancel_check",
]
