"""repro: a reproduction of "Automated System Design for Availability".

(Janakiraman, Santos & Turner, HP Labs / DSN 2004 -- the "Aved" engine.)

The package automates the design of clustered systems: given an
infrastructure model (components, failure modes, availability
mechanisms, resources), a service model (tiers and their parallelism/
performance behavior) and high-level requirements (throughput + annual
downtime, or expected job completion time), it searches the design
space and returns the minimum-cost design that satisfies them.

Quickstart::

    from repro import Aved, ServiceRequirements, Duration
    from repro.spec.paper import paper_infrastructure, ecommerce_service

    engine = Aved(paper_infrastructure(), ecommerce_service())
    outcome = engine.design(ServiceRequirements(
        throughput=1000, max_annual_downtime=Duration.minutes(100)))
    print(outcome.summary())
"""

from .core import (Aved, Design, DesignOutcome, JobSearch, SearchLimits,
                   TierDesign, TierSearch, build_requirement_map)
from .errors import (AvedError, EvaluationError, ExpressionError,
                     InfeasibleError, ModelError, SearchError, SpecError,
                     UnitError)
from .model import (AvailabilityMechanism, ComponentType,
                    InfrastructureModel, JobRequirements, ResourceType,
                    ServiceModel, ServiceRequirements)
from .units import Duration, WorkAmount

__version__ = "1.0.0"

__all__ = [
    "Aved", "DesignOutcome", "Design", "TierDesign",
    "TierSearch", "JobSearch", "SearchLimits", "build_requirement_map",
    "InfrastructureModel", "ServiceModel", "ComponentType", "ResourceType",
    "AvailabilityMechanism",
    "ServiceRequirements", "JobRequirements", "Duration",
    "WorkAmount",
    "AvedError", "UnitError", "ExpressionError", "SpecError", "ModelError",
    "EvaluationError", "SearchError", "InfeasibleError",
    "__version__",
]
