"""Cost evaluation of designs (paper section 4.2, cost half)."""

from .model import ZERO_COST, CostBreakdown, tier_cost

__all__ = ["CostBreakdown", "tier_cost", "ZERO_COST"]
