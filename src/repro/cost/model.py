"""Design cost evaluation (paper section 4.2).

"The cost of a design is simply calculated as the sum of the cost of
all components at their selected operational mode (active or inactive)
and the cost of the availability mechanisms for the selected values of
their parameters."

Mechanism cost accounting follows the paper's discussion of maintenance
contracts ("the cost of a maintenance contract is proportional to the
number of machines it covers", section 5.1): a mechanism configuration
is charged once per component instance that defers an attribute to it
-- active and spare instances alike, since spares need coverage to be
repairable after they take over.  Mechanisms nobody defers to but which
are listed in the tier's service model (e.g. checkpointing that only
affects loss windows already counted via a component) are charged once
per tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import EvaluationError
from ..model import (InfrastructureModel, MechanismConfig, OperationalMode,
                     ResourceType)


@dataclass(frozen=True)
class CostBreakdown:
    """Annual cost of one tier design, itemized."""

    active_components: float
    spare_components: float
    mechanisms: float

    @property
    def total(self) -> float:
        return (self.active_components + self.spare_components
                + self.mechanisms)

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.active_components + other.active_components,
            self.spare_components + other.spare_components,
            self.mechanisms + other.mechanisms)


ZERO_COST = CostBreakdown(0.0, 0.0, 0.0)


def tier_cost(infrastructure: InfrastructureModel,
              resource: ResourceType,
              n_active: int,
              n_spare: int,
              spare_modes: Mapping[str, OperationalMode],
              mechanism_configs: Tuple[MechanismConfig, ...]) \
        -> CostBreakdown:
    """Annual cost of a tier design.

    ``spare_modes`` maps each component of the resource to its
    operational mode in spare instances.
    """
    if n_active < 1:
        raise EvaluationError("tier needs at least one active resource")
    if n_spare < 0:
        raise EvaluationError("spare count cannot be negative")

    active_unit = 0.0
    spare_unit = 0.0
    for slot in resource.slots:
        component = infrastructure.component(slot.component)
        active_unit += component.cost.for_mode(OperationalMode.ACTIVE)
        mode = spare_modes.get(slot.component, OperationalMode.INACTIVE)
        spare_unit += component.cost.for_mode(mode)

    mechanisms = _mechanism_cost(infrastructure, resource,
                                 n_active + n_spare, mechanism_configs)
    return CostBreakdown(active_components=n_active * active_unit,
                         spare_components=n_spare * spare_unit,
                         mechanisms=mechanisms)


def _mechanism_cost(infrastructure: InfrastructureModel,
                    resource: ResourceType,
                    total_resources: int,
                    configs: Tuple[MechanismConfig, ...]) -> float:
    """Charge each configured mechanism per deferring component instance.

    Each resource instance contains one instance of each component; the
    number of component instances deferring to mechanism M is therefore
    ``total_resources`` times the number of the resource's components
    that reference M.
    """
    reference_counts: Dict[str, int] = {}
    for slot in resource.slots:
        component = infrastructure.component(slot.component)
        for name in component.mechanism_references():
            reference_counts[name] = reference_counts.get(name, 0) + 1

    total = 0.0
    for config in configs:
        multiplier = reference_counts.get(config.name, 0) * total_resources
        if multiplier == 0:
            multiplier = 1  # tier-level mechanism (e.g. checkpointing)
        total += multiplier * config.cost()
    return total
