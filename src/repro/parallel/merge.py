"""Deterministic merge of out-of-order parallel results.

Workers finish in whatever order the scheduler pleases; everything the
search *observes* must not.  The merge layer restores submission order
before results touch the availability cache or the checkpoint, which
is what makes ``--jobs 1`` and ``--jobs N`` produce bit-identical
:class:`~repro.core.DesignOutcome` objects: the search's decision
logic only ever sees candidate values in the same order a serial run
would have produced them, and the values themselves are computed by
the same code on the same inputs.

The merge also cross-checks duplicate submissions of the same
structure key: two workers disagreeing on one candidate's
unavailability means the evaluation is not a pure function of its
inputs, and the merge refuses to pick a winner silently.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..errors import SearchError


def merge_results(tasks: Sequence[Any],
                  results_by_id: Dict[int, float]) \
        -> List[Tuple[tuple, float]]:
    """Order completed results by submission, drop unresolved tasks.

    ``tasks`` are task records carrying ``task_id`` (the global
    submission counter) and ``key`` (the search structure key);
    ``results_by_id`` maps task ids to computed unavailabilities.
    Tasks with no result (quarantined or abandoned) are skipped --
    the caller decides how absence is handled.

    Raises :class:`~repro.errors.SearchError` when two results for the
    same key disagree (a non-deterministic evaluation is a bug, never
    something to merge over).
    """
    merged: List[Tuple[tuple, float]] = []
    seen: Dict[tuple, float] = {}
    for task in sorted(tasks, key=lambda item: item.task_id):
        if task.task_id not in results_by_id:
            continue
        value = results_by_id[task.task_id]
        previous = seen.get(task.key)
        if previous is not None:
            if previous != value:
                raise SearchError(
                    "non-deterministic evaluation: structure %r "
                    "produced %r and %r in one batch"
                    % (task.key, previous, value))
            continue
        seen[task.key] = value
        merged.append((task.key, value))
    return merged


__all__ = ["merge_results"]
