"""Supervised multi-process candidate evaluation for the design search.

The availability searches (:class:`~repro.core.TierSearch`,
:class:`~repro.core.JobSearch`) spend nearly all their time in
independent per-candidate availability solves, which makes them
embarrassingly parallel -- but a naive ``ProcessPoolExecutor`` would
let one crashed or hung worker kill an hours-long search.  This
package provides the supervision layer:

* :class:`SupervisedExecutor` -- per-candidate wall-clock timeouts,
  bounded retry with jittered backoff (sharing
  :mod:`repro.resilience.policy`), and a blame model that restarts the
  pool on worker crashes without falsely convicting innocent
  candidates;
* :class:`PoisonQuarantine` -- candidates that repeatedly kill or
  hang workers are skipped and surfaced as ``AVD402`` diagnostics
  instead of aborting the search;
* :func:`merge_results` -- results are merged in submission order, so
  ``--jobs N`` produces the same
  :class:`~repro.core.DesignOutcome` (design, cost, provenance,
  diagnostics) as ``--jobs 1``;
* :class:`PoolSupervisor` -- pool liveness probing, bounded restarts,
  and graceful degradation to serial (``AVD401``) when multiprocessing
  is unavailable;
* :class:`ParallelEvaluationRuntime` -- the facade the searches hold;
  built by ``Aved(..., jobs=N)`` or ``repro design --jobs N``.

Degradation events surface through the same
:class:`~repro.resilience.DegradationLog` -> :mod:`repro.lint`
pipeline as engine fallbacks, as the ``AVD4xx`` diagnostic family.
"""

from .executor import ParallelPolicy, SupervisedExecutor
from .merge import merge_results
from .quarantine import PoisonQuarantine, QuarantinedCandidate
from .runtime import ParallelEvaluationRuntime, make_runtime
from .supervisor import PoolSupervisor

__all__ = [
    "ParallelEvaluationRuntime", "make_runtime",
    "SupervisedExecutor", "ParallelPolicy",
    "PoolSupervisor",
    "PoisonQuarantine", "QuarantinedCandidate",
    "merge_results",
]
