"""The search-facing facade over the supervised executor.

:class:`ParallelEvaluationRuntime` is what
:class:`~repro.core.TierSearch` and :class:`~repro.core.JobSearch`
actually hold.  It narrows the machinery in
:mod:`repro.parallel.executor` to three operations the search needs:

* :meth:`evaluate_candidate` -- one supervised solve, in-process
  (the ``jobs=1`` path, and cache misses under ``jobs>1``);
* :meth:`evaluate_batch` -- a prefetch batch fanned out across the
  pool (``jobs>1``), returned as deterministically merged
  ``(key, unavailability)`` pairs;
* :meth:`drain_log` -- the accumulated AVD4xx degradation events,
  consumed by :meth:`repro.core.Aved._degradation_report`.

Both evaluate methods return ``None`` for (or silently omit)
quarantined candidates; the search treats those candidates as
infeasible and moves on.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..obs import current as _obs_current
from ..resilience.chaos import WorkerFaultPlan
from ..resilience.events import DegradationLog
from .executor import ParallelPolicy, SupervisedExecutor
from .quarantine import PoisonQuarantine


class ParallelEvaluationRuntime:
    """Supervised candidate evaluation for the design search."""

    def __init__(self, engine: Any, jobs: int = 1,
                 policy: Optional[ParallelPolicy] = None,
                 worker_plan: Optional[WorkerFaultPlan] = None,
                 seed: int = 1,
                 pool_factory: Any = None):
        self.jobs = jobs
        self.log = DegradationLog()
        self.executor = SupervisedExecutor(
            engine, jobs=jobs, policy=policy, worker_plan=worker_plan,
            log=self.log, seed=seed, pool_factory=pool_factory)
        #: Batches dispatched through :meth:`evaluate_batch`.
        self.batches = 0

    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while evaluation may actually fan out across workers."""
        return self.executor.parallel

    @property
    def quarantine(self) -> PoisonQuarantine:
        return self.executor.quarantine

    @property
    def policy(self) -> ParallelPolicy:
        return self.executor.policy

    def is_quarantined(self, key: tuple) -> bool:
        return key in self.executor.quarantine

    # ------------------------------------------------------------------

    def evaluate_candidate(self, key: tuple,
                           model: Any) -> Optional[float]:
        """One candidate, supervised, in-process.

        Returns its unavailability, or None when the candidate is (or
        just became) quarantined.
        """
        return self.executor.evaluate_inline(key, model)

    def evaluate_batch(self, tasks: Sequence[Tuple[tuple, Any]]) \
            -> List[Tuple[tuple, float]]:
        """Fan a ``[(key, model), ...]`` batch out across the pool.

        Results come back merged in submission order (bit-identical
        regardless of worker scheduling); quarantined candidates are
        omitted.  With ``jobs=1`` (or a degraded pool) the batch runs
        serially in-process through the same supervision.
        """
        if not tasks:
            return []
        self.batches += 1
        obs = _obs_current()
        if not obs.enabled:
            return self.executor.run_batch(tasks)
        with obs.span("parallel-batch", tasks=len(tasks),
                      jobs=self.jobs):
            merged = self.executor.run_batch(tasks)
            # Spans recorded inside traced workers come back as dicts;
            # re-parent them (in submission order) under this batch
            # span so the trace shows one tree across processes.
            for span in self.executor.drain_worker_spans():
                obs.tracer.attach(span, worker=True)
            obs.inc("parallel.batches")
        return merged

    # ------------------------------------------------------------------

    def drain_log(self) -> DegradationLog:
        """Hand over (and reset) the accumulated AVD4xx events."""
        drained = self.log
        self.log = DegradationLog()
        self.executor.log = self.log
        if self.executor.supervisor is not None:
            self.executor.supervisor.log = self.log
        return drained

    def close(self) -> None:
        self.executor.close()


def make_runtime(engine: Any, jobs: Optional[int],
                 task_timeout: Optional[float] = None,
                 worker_plan: Optional[WorkerFaultPlan] = None,
                 seed: int = 1) -> Optional[ParallelEvaluationRuntime]:
    """The constructor convention used by Aved/controller/CLI.

    ``jobs=None`` means "no runtime at all" (the legacy serial path,
    byte-for-byte unchanged); otherwise a runtime with ``jobs``
    workers and an optional per-candidate wall-clock timeout.
    """
    if jobs is None:
        return None
    policy = ParallelPolicy(task_timeout=task_timeout)
    return ParallelEvaluationRuntime(engine, jobs=jobs, policy=policy,
                                     worker_plan=worker_plan, seed=seed)


__all__ = ["ParallelEvaluationRuntime", "make_runtime"]
