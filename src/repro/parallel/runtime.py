"""The search-facing facade over the supervised executor.

:class:`ParallelEvaluationRuntime` is what
:class:`~repro.core.TierSearch` and :class:`~repro.core.JobSearch`
actually hold.  It narrows the machinery in
:mod:`repro.parallel.executor` to three operations the search needs:

* :meth:`evaluate_candidate` -- one supervised solve, in-process
  (the ``jobs=1`` path, and cache misses under ``jobs>1``);
* :meth:`evaluate_batch` -- a prefetch batch fanned out across the
  pool (``jobs>1``), returned as deterministically merged
  ``(key, unavailability)`` pairs;
* :meth:`drain_log` -- the accumulated AVD4xx degradation events,
  consumed by :meth:`repro.core.Aved._degradation_report`.

Both evaluate methods return ``None`` for (or silently omit)
quarantined candidates; the search treats those candidates as
infeasible and moves on.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..obs import current as _obs_current
from ..resilience.chaos import WorkerFaultPlan
from ..resilience.events import DegradationLog
from .executor import ParallelPolicy, SupervisedExecutor
from .quarantine import PoisonQuarantine


class ParallelEvaluationRuntime:
    """Supervised candidate evaluation for the design search."""

    def __init__(self, engine: Any, jobs: int = 1,
                 policy: Optional[ParallelPolicy] = None,
                 worker_plan: Optional[WorkerFaultPlan] = None,
                 seed: int = 1,
                 pool_factory: Any = None,
                 cancel_check: Any = None,
                 quarantine: Any = None):
        self.jobs = jobs
        self.log = DegradationLog()
        self.executor = SupervisedExecutor(
            engine, jobs=jobs, policy=policy, worker_plan=worker_plan,
            log=self.log, quarantine=quarantine, seed=seed,
            pool_factory=pool_factory, cancel_check=cancel_check)
        #: Batches dispatched through :meth:`evaluate_batch`.
        self.batches = 0

    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while evaluation may actually fan out across workers."""
        return self.executor.parallel

    @property
    def quarantine(self) -> PoisonQuarantine:
        return self.executor.quarantine

    @property
    def policy(self) -> ParallelPolicy:
        return self.executor.policy

    def is_quarantined(self, key: tuple) -> bool:
        return key in self.executor.quarantine

    # ------------------------------------------------------------------

    def evaluate_candidate(self, key: tuple,
                           model: Any) -> Optional[float]:
        """One candidate, supervised, in-process.

        Returns its unavailability, or None when the candidate is (or
        just became) quarantined.
        """
        return self.executor.evaluate_inline(key, model)

    def evaluate_batch(self, tasks: Sequence[Tuple[tuple, Any]],
                       grouper: Any = None) \
            -> List[Tuple[tuple, float]]:
        """Fan a ``[(key, model), ...]`` batch out across the pool.

        Results come back merged in submission order (bit-identical
        regardless of worker scheduling); quarantined candidates are
        omitted.  With ``jobs=1`` (or a degraded pool) the batch runs
        serially in-process through the same supervision.

        ``grouper`` (``model -> hashable``, optional) enables
        shape-chunked dispatch: same-group tasks travel to one worker
        as a chunk the worker solves through the vectorized batch core
        (see :meth:`SupervisedExecutor.run_batch`).
        """
        if not tasks:
            return []
        self.batches += 1
        obs = _obs_current()
        if not obs.enabled:
            return self.executor.run_batch(tasks, grouper=grouper)
        with obs.span("parallel-batch", tasks=len(tasks),
                      jobs=self.jobs):
            merged = self.executor.run_batch(tasks, grouper=grouper)
            # Spans recorded inside traced workers come back as dicts;
            # re-parent them (in submission order) under this batch
            # span so the trace shows one tree across processes.
            for span in self.executor.drain_worker_spans():
                obs.tracer.attach(span, worker=True)
            obs.inc("parallel.batches")
        return merged

    # ------------------------------------------------------------------

    def health(self) -> dict:
        """A point-in-time health view of the evaluation runtime.

        Consumed by the serving layer's readiness endpoint: whether
        candidate evaluation can still fan out, whether the pool
        supervisor has degraded to serial, how many restarts it has
        paid, and how much poison the quarantine holds.
        """
        supervisor = self.executor.supervisor
        return {
            "jobs": self.jobs,
            "parallel": self.parallel,
            "pool_degraded": bool(supervisor is not None
                                  and supervisor.degraded),
            "pool_restarts": (supervisor.restarts
                              if supervisor is not None else 0),
            "quarantined": len(self.quarantine),
            "batches": self.batches,
            "counters": dict(self.executor.counters),
        }

    def drain_log(self) -> DegradationLog:
        """Hand over (and reset) the accumulated AVD4xx events."""
        drained = self.log
        self.log = DegradationLog()
        self.executor.log = self.log
        if self.executor.supervisor is not None:
            self.executor.supervisor.log = self.log
        return drained

    def close(self) -> None:
        self.executor.close()


def make_runtime(engine: Any, jobs: Optional[int],
                 task_timeout: Optional[float] = None,
                 worker_plan: Optional[WorkerFaultPlan] = None,
                 seed: int = 1,
                 cancel_check: Any = None,
                 quarantine: Any = None) \
        -> Optional[ParallelEvaluationRuntime]:
    """The constructor convention used by Aved/controller/CLI/serve.

    ``jobs=None`` means "no runtime at all" (the legacy serial path,
    byte-for-byte unchanged); otherwise a runtime with ``jobs``
    workers and an optional per-candidate wall-clock timeout.
    ``cancel_check`` (a zero-arg callable that raises to abort) and
    ``quarantine`` (a shared :class:`PoisonQuarantine`) let a
    long-lived caller -- the ``repro serve`` daemon -- cancel
    searches cooperatively and keep poison knowledge across runs.
    """
    if jobs is None:
        return None
    policy = ParallelPolicy(task_timeout=task_timeout)
    return ParallelEvaluationRuntime(engine, jobs=jobs, policy=policy,
                                     worker_plan=worker_plan, seed=seed,
                                     cancel_check=cancel_check,
                                     quarantine=quarantine)


__all__ = ["ParallelEvaluationRuntime", "make_runtime"]
