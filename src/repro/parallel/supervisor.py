"""Worker-pool supervision: creation, liveness, restart, degradation.

:class:`PoolSupervisor` owns a ``ProcessPoolExecutor`` on behalf of
the supervised executor and makes three promises:

* a pool handed out by :meth:`pool` has answered a **liveness probe**
  (a trivial round-trip task), so a pool that cannot even spawn or
  initialize workers is caught before any real work is queued;
* a crashed or hung pool can be **restarted** a bounded number of
  times per batch, with jittered exponential backoff between restarts
  (reusing :meth:`repro.resilience.FallbackPolicy.backoff_delay`);
* when the pool cannot be created at all, or the restart budget runs
  out, the supervisor **degrades**: it records an ``AVD401`` event and
  from then on reports no pool, which the executor answers by
  evaluating the remaining candidates serially in-process.  The
  search never dies because multiprocessing did.

Hung workers cannot be cancelled through ``concurrent.futures`` (a
running task is not interruptible), so :meth:`kill` terminates the
worker processes directly before discarding the executor object.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, Optional, Tuple

from ..resilience.events import POOL_DEGRADED, POOL_RESTART, DegradationLog
from ..resilience.policy import FallbackPolicy, RetrySchedule


def _default_pool_factory(jobs: int, initializer: Callable,
                          initargs: Tuple) -> Executor:
    """A ProcessPoolExecutor on the cheapest available start method.

    ``fork`` (where supported) starts workers in milliseconds and
    inherits the engine without pickling; other platforms fall back to
    the default start method.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None
    if context is not None:
        return ProcessPoolExecutor(max_workers=jobs, mp_context=context,
                                   initializer=initializer,
                                   initargs=initargs)
    return ProcessPoolExecutor(max_workers=jobs, initializer=initializer,
                               initargs=initargs)


class PoolSupervisor:
    """Creates, probes, restarts, and (when it must) buries the pool."""

    def __init__(self, jobs: int, initializer: Callable, initargs: Tuple,
                 ping: Callable[[], str],
                 log: DegradationLog,
                 backoff: Optional[FallbackPolicy] = None,
                 max_restarts_per_batch: int = 50,
                 startup_timeout: float = 60.0,
                 seed: int = 1,
                 pool_factory: Optional[Callable] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.jobs = jobs
        self.log = log
        self.backoff = backoff
        self.startup_timeout = startup_timeout
        self.max_restarts_per_batch = max_restarts_per_batch
        self._initializer = initializer
        self._initargs = initargs
        self._ping = ping
        self._factory = pool_factory or _default_pool_factory
        self._sleep = sleep
        self._rng = random.Random(seed)
        # Restart backoff is capped at attempt 8 so a long fault storm
        # cannot grow the delay without bound.
        self._backoff_schedule = (
            None if backoff is None
            else RetrySchedule(backoff, rng=self._rng, sleep=sleep,
                               max_attempt=8))
        self._pool: Optional[Executor] = None
        self._degraded = False
        #: Lifetime restart count (all batches).
        self.restarts = 0
        self._restarts_this_batch = 0

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the supervisor has given up on multiprocessing."""
        return self._degraded

    def begin_batch(self) -> None:
        """Reset the per-batch restart budget."""
        self._restarts_this_batch = 0

    def pool(self) -> Optional[Executor]:
        """A live, probed pool -- or None when degraded to serial."""
        if self._degraded:
            return None
        if self._pool is None:
            self._pool = self._create()
        return self._pool

    # ------------------------------------------------------------------

    def _create(self) -> Optional[Executor]:
        """Build a pool and prove it alive; degrade on any failure."""
        try:
            pool = self._factory(self.jobs, self._initializer,
                                 self._initargs)
            # Liveness probe: a worker must spawn, run the initializer,
            # and answer within the startup timeout.
            probe = pool.submit(self._ping)
            if probe.result(timeout=self.startup_timeout) != "pong":
                raise RuntimeError("worker liveness probe returned "
                                   "garbage")
        except BaseException as exc:
            self._degrade("cannot start a %d-worker pool: %s: %s"
                          % (self.jobs, type(exc).__name__, exc))
            return None
        return pool

    def _degrade(self, detail: str) -> None:
        self._degraded = True
        if self._pool is not None:
            self.kill()
        self.log.add(POOL_DEGRADED, detail=detail)

    # ------------------------------------------------------------------

    def kill(self) -> None:
        """Terminate worker processes and discard the executor.

        ``shutdown()`` alone would block on (or leak) a worker stuck
        in a hung solve; terminating the processes first makes the
        teardown prompt regardless of worker state.
        """
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def restart(self, reason: str) -> bool:
        """Kill and re-create the pool; False when budget is exhausted.

        The next :meth:`pool` call performs the actual re-creation
        (and liveness probe); this method only accounts for the
        restart and applies the backoff delay.
        """
        self.kill()
        if self._restarts_this_batch >= self.max_restarts_per_batch:
            self._degrade("restart budget exhausted (%d this batch); "
                          "last cause: %s"
                          % (self._restarts_this_batch, reason))
            return False
        self.restarts += 1
        self._restarts_this_batch += 1
        self.log.add(POOL_RESTART, detail="%s (restart %d this batch)"
                     % (reason, self._restarts_this_batch))
        if self._backoff_schedule is not None:
            self._backoff_schedule.pause(self._restarts_this_batch)
        return True

    def close(self) -> None:
        """Shut the pool down; a later :meth:`pool` call may reopen it.

        Degradation is *not* sticky across closes: a fresh search gets
        a fresh chance at multiprocessing.
        """
        self.kill()
        self._degraded = False


__all__ = ["PoolSupervisor"]
